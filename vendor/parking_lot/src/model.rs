//! A deterministic virtual scheduler and bounded-DFS interleaving
//! explorer (CHESS-style stateless model checking).
//!
//! [`explore`] runs a scenario closure repeatedly, once per schedule.
//! Each run executes on real OS threads, but every thread registered
//! with the exploration is serialised: exactly one runs at a time, and
//! whenever the running thread reaches a *blocking* operation — mutex
//! acquire, condvar wait, join, or its own start — it parks and hands
//! control back to the scheduler, which picks the next thread to run
//! from the enabled set. The sequence of picks is driven by a DFS stack,
//! so successive runs enumerate every schedule (up to the configured
//! bounds) instead of sampling them.
//!
//! Non-blocking operations (release, notify, spawn, traced data
//! accesses) do not yield: they are recorded and the thread keeps
//! running. This is sound for exploration because their effects are
//! visible to every other thread no later than the running thread's
//! next blocking operation, at which point the scheduler reconsiders
//! the full enabled set.
//!
//! Every run produces a [`Trace`] — the interleaved event sequence plus
//! the lock/condvar names — which the caller can fold into
//! happens-before analyses (see `ncdrf-analyze`). A run that deadlocks,
//! exceeds the step bound, or panics on a model thread ends the
//! exploration with a [`Counterexample`] carrying the offending trace.
//!
//! Determinism contract: the scenario must behave identically when its
//! scheduling decisions are replayed (no wall-clock reads, no
//! randomness, no iteration over randomly-seeded hash maps that feeds
//! back into synchronisation behaviour). Replay divergence is detected
//! and reported by panicking with `nondeterministic scenario`.
//!
//! Blocked threads of an abandoned run (deadlock/step-limit) are leaked
//! deliberately: they hold stack frames of the scenario and cannot be
//! unwound without running `Drop` code that would itself block. The
//! exploration stops at its first counterexample, so the leak is one
//! scenario instance.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};

/// Identifies a thread within one exploration run (dense, root = 0).
pub type Tid = usize;

/// One recorded synchronisation or data event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// The thread's first scheduling point, before any user code.
    Begin,
    /// The thread was granted `lock`.
    Acquire { lock: usize },
    /// The thread released `lock`.
    Release { lock: usize },
    /// The thread released `lock` and joined `cv`'s wait queue.
    Wait { cv: usize, lock: usize },
    /// The thread woke from `cv` and was re-granted `lock`.
    Wake { cv: usize, lock: usize },
    /// The thread notified one waiter of `cv` (`woken`, if any).
    NotifyOne { cv: usize, woken: Option<Tid> },
    /// The thread notified all `woken` waiters of `cv`.
    NotifyAll { cv: usize, woken: usize },
    /// The thread spawned `child`.
    Spawn { child: Tid },
    /// The thread joined `child` (which had exited).
    Join { child: Tid },
    /// The thread finished (`panicked` if it unwound).
    Exit { panicked: bool },
    /// A traced data access (`trace_access`).
    Access {
        addr: usize,
        write: bool,
        label: &'static str,
    },
}

/// An [`Op`] attributed to the thread that performed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub tid: Tid,
    pub op: Op,
}

/// The full record of one schedule: every event in execution order,
/// the diagnostic names of the locks/condvars touched, and the raw
/// scheduling decisions (one chosen thread per blocking point).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub events: Vec<Event>,
    pub names: BTreeMap<usize, String>,
    pub schedule: Vec<Tid>,
}

impl Trace {
    /// The diagnostic name of a lock/condvar key, falling back to the
    /// raw key for objects never named.
    pub fn name_of(&self, key: usize) -> String {
        self.names
            .get(&key)
            .cloned()
            .unwrap_or_else(|| format!("obj#{key:x}"))
    }
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of schedules to run before giving up
    /// (`complete = false`).
    pub max_schedules: usize,
    /// Maximum events per schedule; exceeding it is reported as a
    /// [`CxKind::StepLimit`] counterexample (livelock suspect).
    pub max_steps: usize,
    /// If set, bounds the number of preemptions per schedule (a
    /// preemption is scheduling away from a thread that could have
    /// continued). `None` explores the full schedule space.
    pub preemption_bound: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 200_000,
            max_steps: 20_000,
            preemption_bound: None,
        }
    }
}

/// The outcome of an [`explore`] call.
#[derive(Debug)]
pub struct Exploration {
    /// Schedules actually run.
    pub schedules: usize,
    /// The DFS exhausted the (bounded) schedule space.
    pub complete: bool,
    /// The first deadlock / panic / step-limit hit, if any; its
    /// presence ends the exploration immediately.
    pub counterexample: Option<Counterexample>,
}

/// A failing schedule.
#[derive(Debug)]
pub struct Counterexample {
    pub kind: CxKind,
    pub trace: Trace,
}

/// What went wrong on a counterexample schedule.
#[derive(Debug)]
pub enum CxKind {
    /// A model thread panicked (invariant assertion, index out of
    /// bounds, ...).
    Panic { tid: Tid, message: String },
    /// No runnable thread remained while some were still blocked.
    Deadlock { blocked: Vec<Tid> },
    /// The schedule exceeded [`Config::max_steps`].
    StepLimit,
}

// ---------------------------------------------------------------------
// Scheduler state shared between the explorer and the model threads.
// ---------------------------------------------------------------------

/// What a parked thread is waiting to do.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pending {
    Begin,
    Acquire {
        lock: usize,
    },
    Reacquire {
        cv: usize,
        lock: usize,
        notified: bool,
    },
    Join {
        child: Tid,
    },
}

#[derive(Debug, Default)]
struct ThreadSlot {
    pending: Option<Pending>,
    done: bool,
    panicked: Option<String>,
}

#[derive(Debug, Default)]
struct Shared {
    /// The one thread currently allowed to run user code.
    granted: Option<Tid>,
    threads: Vec<ThreadSlot>,
    /// Lock key → current virtual holder.
    locks: BTreeMap<usize, Option<Tid>>,
    /// Condvar key → FIFO of un-notified waiters.
    waiters: BTreeMap<usize, VecDeque<Tid>>,
    trace: Trace,
    /// Counter for fallback names of unnamed locks/condvars.
    anon_seq: usize,
    /// Set when the run is abandoned (deadlock/step limit): no further
    /// grants are issued and parked threads are leaked.
    abandoned: bool,
}

struct Ctl {
    mx: StdMutex<Shared>,
    /// Model threads → scheduler: "I parked / exited".
    to_sched: StdCondvar,
    /// Scheduler → model threads: "a grant was issued" (broadcast;
    /// threads re-check `granted`).
    to_threads: StdCondvar,
    /// Real handles of every spawned model thread, joined when a run
    /// completes (leaked when it is abandoned).
    reals: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Ctl {
    fn new() -> Self {
        Ctl {
            mx: StdMutex::new(Shared::default()),
            to_sched: StdCondvar::new(),
            to_threads: StdCondvar::new(),
            reals: StdMutex::new(Vec::new()),
        }
    }

    fn shared(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    /// Set on threads belonging to an active exploration run.
    static CURRENT: std::cell::RefCell<Option<(Arc<Ctl>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// True when the calling thread belongs to an active exploration.
pub fn active() -> bool {
    CURRENT
        .try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(false))
        .unwrap_or(false)
}

fn with_current<R>(f: impl FnOnce(&Arc<Ctl>, Tid) -> R) -> Option<R> {
    CURRENT
        .try_with(|c| {
            let borrow = c.try_borrow().ok()?;
            let (ctl, tid) = borrow.as_ref()?;
            Some(f(ctl, *tid))
        })
        .ok()
        .flatten()
}

fn register_name(sh: &mut Shared, key: usize, name: Option<&'static str>, kind: &str) {
    if !sh.trace.names.contains_key(&key) {
        let resolved = match name {
            Some(n) => n.to_owned(),
            None => {
                sh.anon_seq += 1;
                format!("{kind}#{}", sh.anon_seq)
            }
        };
        sh.trace.names.insert(key, resolved);
    }
}

/// Parks the calling thread with `sh` held until the scheduler grants
/// it. Consumes and re-takes the shared lock across waits.
fn park_until_granted<'a>(
    ctl: &'a Ctl,
    mut sh: std::sync::MutexGuard<'a, Shared>,
    tid: Tid,
) -> std::sync::MutexGuard<'a, Shared> {
    if sh.granted == Some(tid) {
        sh.granted = None;
    }
    ctl.to_sched.notify_all();
    while sh.granted != Some(tid) {
        // An abandoned run never grants again: the wait below is the
        // deliberate leak of a deadlocked/over-budget schedule.
        sh = ctl.to_threads.wait(sh).unwrap_or_else(|e| e.into_inner());
    }
    sh
}

// ---------------------------------------------------------------------
// Hooks, called from the shim types in lib.rs.
// ---------------------------------------------------------------------

/// Virtual mutex acquire. Returns `true` when handled by an active
/// exploration (the caller's matching release must then be reported).
pub(crate) fn hook_acquire(lock: usize, name: Option<&'static str>) -> bool {
    with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        register_name(&mut sh, lock, name, "mutex");
        sh.locks.entry(lock).or_insert(None);
        sh.threads[tid].pending = Some(Pending::Acquire { lock });
        let sh = park_until_granted(ctl, sh, tid);
        // The grant applied the acquisition (holder = tid, event
        // recorded); nothing left to do.
        drop(sh);
    })
    .is_some()
}

/// Virtual mutex release (non-blocking: the thread keeps running).
pub(crate) fn hook_release(lock: usize) {
    with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        let holder = sh.locks.get_mut(&lock).expect("released lock is known");
        debug_assert_eq!(*holder, Some(tid), "release by virtual holder");
        *holder = None;
        sh.trace.events.push(Event {
            tid,
            op: Op::Release { lock },
        });
    });
}

/// Virtual condvar wait: releases `lock`, parks on `cv`'s FIFO queue,
/// returns once notified *and* re-granted the lock.
pub(crate) fn hook_wait(cv: usize, name: Option<&'static str>, lock: usize) {
    with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        register_name(&mut sh, cv, name, "condvar");
        let holder = sh.locks.get_mut(&lock).expect("waited lock is known");
        debug_assert_eq!(*holder, Some(tid), "wait by virtual holder");
        *holder = None;
        sh.trace.events.push(Event {
            tid,
            op: Op::Wait { cv, lock },
        });
        sh.waiters.entry(cv).or_default().push_back(tid);
        sh.threads[tid].pending = Some(Pending::Reacquire {
            cv,
            lock,
            notified: false,
        });
        let sh = park_until_granted(ctl, sh, tid);
        drop(sh);
    });
}

/// Virtual notify. Returns `true` when handled by an active
/// exploration (no real notification needed: virtual waiters park in
/// the scheduler, not on the real condvar).
pub(crate) fn hook_notify(cv: usize, name: Option<&'static str>, all: bool) -> bool {
    with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        register_name(&mut sh, cv, name, "condvar");
        let queue = sh.waiters.entry(cv).or_default();
        let woken: Vec<Tid> = if all {
            queue.drain(..).collect()
        } else {
            queue.pop_front().into_iter().collect()
        };
        for &w in &woken {
            match sh.threads[w].pending {
                Some(Pending::Reacquire {
                    ref mut notified, ..
                }) => *notified = true,
                ref other => unreachable!("cv waiter {w} pending {other:?}"),
            }
        }
        let op = if all {
            Op::NotifyAll {
                cv,
                woken: woken.len(),
            }
        } else {
            Op::NotifyOne {
                cv,
                woken: woken.first().copied(),
            }
        };
        sh.trace.events.push(Event { tid, op });
    })
    .is_some()
}

/// A traced data access (non-blocking).
pub(crate) fn hook_access(addr: usize, write: bool, label: &'static str) {
    with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        sh.trace.events.push(Event {
            tid,
            op: Op::Access { addr, write, label },
        });
    });
}

/// Handle to a thread spawned inside an exploration.
#[derive(Debug)]
pub struct ModelJoin<T> {
    tid: Tid,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

impl<T> ModelJoin<T> {
    /// Virtually joins the child: blocks (as a scheduling decision)
    /// until the child exited, then returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        with_current(|ctl, tid| {
            let mut sh = ctl.shared();
            sh.threads[tid].pending = Some(Pending::Join { child: self.tid });
            let sh = park_until_granted(ctl, sh, tid);
            drop(sh);
        })
        .expect("ModelJoin::join called on a model thread");
        let result = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
        result.expect("joined child published its result")
    }
}

/// Spawns a child model thread. Caller must be a model thread.
pub(crate) fn hook_spawn<F, T>(f: F) -> ModelJoin<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (ctl, child) = with_current(|ctl, tid| {
        let mut sh = ctl.shared();
        sh.threads.push(ThreadSlot::default());
        let child = sh.threads.len() - 1;
        sh.trace.events.push(Event {
            tid,
            op: Op::Spawn { child },
        });
        (Arc::clone(ctl), child)
    })
    .expect("hook_spawn called on a model thread");
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let ctl2 = Arc::clone(&ctl);
    let real = std::thread::spawn(move || run_model_thread(ctl2, child, slot, f));
    ctl.reals
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(real);
    ModelJoin { tid: child, result }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Body of every model thread (root and spawned): register, park at
/// `Begin`, run the closure panic-caught, publish the result, exit.
fn run_model_thread<T>(
    ctl: Arc<Ctl>,
    tid: Tid,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    f: impl FnOnce() -> T,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctl), tid)));
    {
        let mut sh = ctl.shared();
        sh.threads[tid].pending = Some(Pending::Begin);
        let sh = park_until_granted(&ctl, sh, tid);
        drop(sh);
    }
    let out = catch_unwind(AssertUnwindSafe(f));
    let (panicked, message) = match &out {
        Ok(_) => (false, None),
        Err(payload) => (true, Some(panic_message(payload.as_ref()))),
    };
    *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    let mut sh = ctl.shared();
    sh.threads[tid].done = true;
    sh.threads[tid].panicked = message;
    sh.trace.events.push(Event {
        tid,
        op: Op::Exit { panicked },
    });
    sh.granted = None;
    ctl.to_sched.notify_all();
    drop(sh);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// The explorer.
// ---------------------------------------------------------------------

/// One decision point on the DFS stack.
#[derive(Debug)]
struct Level {
    /// Enabled threads at this point, previously-running thread first.
    enabled: Vec<Tid>,
    /// Index into `enabled` taken on the current schedule.
    choice: usize,
    /// The previously-running thread was enabled here, so any non-zero
    /// choice is a preemption.
    prev_enabled: bool,
    /// Preemptions accumulated strictly before this level.
    preemptions_before: usize,
}

impl Level {
    fn preemptions_through(&self) -> usize {
        self.preemptions_before + usize::from(self.prev_enabled && self.choice > 0)
    }
}

enum RunEnd {
    /// Completed schedule, plus any model-thread panics (tid, message).
    Done(Trace, Vec<(Tid, String)>),
    Deadlock(Trace, Vec<Tid>),
    StepLimit(Trace),
}

fn enabled_set(sh: &Shared) -> Vec<Tid> {
    sh.threads
        .iter()
        .enumerate()
        .filter_map(|(tid, slot)| {
            if slot.done {
                return None;
            }
            let runnable = match slot.pending.as_ref()? {
                Pending::Begin => true,
                Pending::Acquire { lock } => sh.locks[lock].is_none(),
                Pending::Reacquire { lock, notified, .. } => *notified && sh.locks[lock].is_none(),
                Pending::Join { child } => sh.threads[*child].done,
            };
            runnable.then_some(tid)
        })
        .collect()
}

/// Applies the granted thread's pending operation and records it.
fn grant(sh: &mut Shared, tid: Tid) {
    let pending = sh.threads[tid]
        .pending
        .take()
        .expect("granted thread is parked");
    let op = match pending {
        Pending::Begin => Op::Begin,
        Pending::Acquire { lock } => {
            let holder = sh.locks.get_mut(&lock).expect("known lock");
            debug_assert!(holder.is_none(), "granted lock is free");
            *holder = Some(tid);
            Op::Acquire { lock }
        }
        Pending::Reacquire { cv, lock, notified } => {
            debug_assert!(notified, "granted waiter was notified");
            let holder = sh.locks.get_mut(&lock).expect("known lock");
            debug_assert!(holder.is_none(), "granted lock is free");
            *holder = Some(tid);
            Op::Wake { cv, lock }
        }
        Pending::Join { child } => Op::Join { child },
    };
    sh.trace.schedule.push(tid);
    sh.trace.events.push(Event { tid, op });
    sh.granted = Some(tid);
}

/// Runs one schedule: replays the decisions on `stack`, extending it
/// with first-choices past the replayed prefix.
fn run_one<S: Fn() + Send + Sync + 'static>(
    config: &Config,
    scenario: &Arc<S>,
    stack: &mut Vec<Level>,
) -> RunEnd {
    let ctl = Arc::new(Ctl::new());
    ctl.shared().threads.push(ThreadSlot::default());
    let root_result = Arc::new(StdMutex::new(None));
    let ctl2 = Arc::clone(&ctl);
    let slot = Arc::clone(&root_result);
    let sc = Arc::clone(scenario);
    let real_root = std::thread::spawn(move || run_model_thread(ctl2, 0, slot, move || sc()));
    ctl.reals
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(real_root);

    let mut depth = 0usize;
    let end = loop {
        let mut sh = ctl.shared();
        // Quiescence barrier: wait until no thread runs and every live
        // thread is parked with a pending request (freshly spawned
        // threads may still be racing to their Begin park).
        loop {
            let quiescent =
                sh.granted.is_none() && sh.threads.iter().all(|t| t.done || t.pending.is_some());
            if quiescent {
                break;
            }
            sh = ctl.to_sched.wait(sh).unwrap_or_else(|e| e.into_inner());
        }
        if sh.trace.events.len() > config.max_steps {
            sh.abandoned = true;
            break RunEnd::StepLimit(std::mem::take(&mut sh.trace));
        }
        let enabled = enabled_set(&sh);
        if enabled.is_empty() {
            let blocked: Vec<Tid> = sh
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .map(|(tid, _)| tid)
                .collect();
            let trace = std::mem::take(&mut sh.trace);
            if blocked.is_empty() {
                let panics = sh
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, t)| t.panicked.clone().map(|m| (tid, m)))
                    .collect();
                break RunEnd::Done(trace, panics);
            }
            sh.abandoned = true;
            break RunEnd::Deadlock(trace, blocked);
        }
        // Order the choices previously-running-thread-first, so choice
        // 0 is always "continue" and every other choice at a
        // prev-enabled level is a preemption.
        let prev = sh.trace.schedule.last().copied();
        let mut ordered = enabled;
        if let Some(p) = prev {
            if let Some(pos) = ordered.iter().position(|&t| t == p) {
                ordered.remove(pos);
                ordered.insert(0, p);
            }
        }
        let choice = if depth < stack.len() {
            assert_eq!(
                stack[depth].enabled, ordered,
                "nondeterministic scenario: replay diverged at decision {depth}"
            );
            stack[depth].choice
        } else {
            let preemptions_before = stack.last().map(Level::preemptions_through).unwrap_or(0);
            let prev_enabled = prev.is_some() && ordered.first().copied() == prev;
            stack.push(Level {
                enabled: ordered,
                choice: 0,
                prev_enabled,
                preemptions_before,
            });
            0
        };
        let chosen = stack[depth].enabled[choice];
        depth += 1;
        grant(&mut sh, chosen);
        drop(sh);
        ctl.to_threads.notify_all();
    };
    if matches!(end, RunEnd::Done(..)) {
        for real in ctl
            .reals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = real.join();
        }
    }
    // Abandoned runs keep their (parked) real threads and their Ctl
    // alive forever — see the module docs on the deliberate leak.
    end
}

/// Advances the DFS stack to the next unexplored schedule. Returns
/// `false` when the space is exhausted.
fn advance(stack: &mut Vec<Level>, config: &Config) -> bool {
    while let Some(top) = stack.last_mut() {
        top.choice += 1;
        let over_bound = match config.preemption_bound {
            Some(bound) => top.prev_enabled && top.preemptions_before + 1 > bound,
            None => false,
        };
        if top.choice < top.enabled.len() && !over_bound {
            return true;
        }
        stack.pop();
    }
    false
}

fn install_panic_filter() {
    static FILTER: Once = Once::new();
    FILTER.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Panics on model threads are expected counterexamples,
            // captured (with payload) by the explorer; keep them off
            // stderr. Everything else keeps the default behaviour.
            if !active() {
                prev(info);
            }
        }));
    });
}

/// Explores the schedules of `scenario` by bounded DFS.
///
/// `scenario` is run once per schedule on a fresh root model thread; it
/// may spawn further threads through the shim's [`crate::thread`]
/// module and synchronise through shim [`crate::Mutex`]/
/// [`crate::Condvar`] objects. `on_trace` is invoked with the trace of
/// every schedule that ran to completion (counterexample traces are
/// returned in the [`Exploration`] instead).
///
/// # Panics
///
/// When the scenario is scheduling-nondeterministic (replaying a
/// decision prefix yields a different enabled set).
pub fn explore<S, F>(config: &Config, scenario: S, mut on_trace: F) -> Exploration
where
    S: Fn() + Send + Sync + 'static,
    F: FnMut(&Trace),
{
    install_panic_filter();
    let scenario = Arc::new(scenario);
    let mut stack: Vec<Level> = Vec::new();
    let mut schedules = 0usize;
    loop {
        if schedules >= config.max_schedules {
            return Exploration {
                schedules,
                complete: false,
                counterexample: None,
            };
        }
        schedules += 1;
        match run_one(config, &scenario, &mut stack) {
            RunEnd::Done(trace, panics) => {
                if let Some((tid, message)) = panics.into_iter().next() {
                    return Exploration {
                        schedules,
                        complete: false,
                        counterexample: Some(Counterexample {
                            kind: CxKind::Panic { tid, message },
                            trace,
                        }),
                    };
                }
                on_trace(&trace);
            }
            RunEnd::Deadlock(trace, blocked) => {
                return Exploration {
                    schedules,
                    complete: false,
                    counterexample: Some(Counterexample {
                        kind: CxKind::Deadlock { blocked },
                        trace,
                    }),
                };
            }
            RunEnd::StepLimit(trace) => {
                return Exploration {
                    schedules,
                    complete: false,
                    counterexample: Some(Counterexample {
                        kind: CxKind::StepLimit,
                        trace,
                    }),
                };
            }
        }
        if !advance(&mut stack, config) {
            return Exploration {
                schedules,
                complete: true,
                counterexample: None,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{thread as shim_thread, Condvar, Mutex};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn counter_increments_survive_every_schedule() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let exploration = explore(
            &Config::default(),
            move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                let counter = Arc::new(Mutex::new(0u32));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&counter);
                        shim_thread::spawn(move || *c.lock() += 1)
                    })
                    .collect();
                for h in handles {
                    h.join().expect("incrementer");
                }
                assert_eq!(*counter.lock(), 2);
            },
            |_| {},
        );
        assert!(exploration.complete, "DFS exhausts the space");
        assert!(exploration.counterexample.is_none());
        assert!(
            exploration.schedules > 1,
            "two unordered acquires give multiple schedules, got {}",
            exploration.schedules
        );
        assert_eq!(runs.load(Ordering::SeqCst), exploration.schedules);
    }

    #[test]
    fn ab_ba_lock_order_deadlocks() {
        let exploration = explore(
            &Config::default(),
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                crate::name_mutex(&a, "lock.a");
                crate::name_mutex(&b, "lock.b");
                let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = shim_thread::spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = shim_thread::spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
                let _ = t1.join();
                let _ = t2.join();
            },
            |_| {},
        );
        let cx = exploration.counterexample.expect("AB-BA deadlock found");
        match cx.kind {
            CxKind::Deadlock { blocked } => {
                assert!(blocked.len() >= 2, "both lockers blocked: {blocked:?}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        let names: Vec<&str> = cx.trace.names.values().map(String::as_str).collect();
        assert!(names.contains(&"lock.a") && names.contains(&"lock.b"));
    }

    #[test]
    fn condvar_handoff_completes_without_lost_wakeups() {
        let exploration = explore(
            &Config::default(),
            || {
                let shared = Arc::new((Mutex::new(0u32), Condvar::new()));
                let s2 = Arc::clone(&shared);
                let consumer = shim_thread::spawn(move || {
                    let (m, cv) = &*s2;
                    let mut v = m.lock();
                    while *v < 2 {
                        cv.wait(&mut v);
                    }
                    *v
                });
                let s3 = Arc::clone(&shared);
                let producer = shim_thread::spawn(move || {
                    let (m, cv) = &*s3;
                    for _ in 0..2 {
                        *m.lock() += 1;
                        cv.notify_all();
                    }
                });
                producer.join().expect("producer");
                let seen = consumer.join().expect("consumer");
                assert_eq!(seen, 2);
            },
            |_| {},
        );
        assert!(exploration.complete);
        assert!(
            exploration.counterexample.is_none(),
            "{:?}",
            exploration.counterexample
        );
    }

    #[test]
    fn an_invariant_panic_surfaces_as_a_counterexample() {
        let exploration = explore(
            &Config::default(),
            || {
                let flag = Arc::new(Mutex::new(false));
                let f2 = Arc::clone(&flag);
                let t = shim_thread::spawn(move || *f2.lock() = true);
                // Buggy assertion: races with the child on purpose.
                assert!(*flag.lock(), "flag not yet set");
                let _ = t.join();
            },
            |_| {},
        );
        let cx = exploration.counterexample.expect("some schedule panics");
        match cx.kind {
            CxKind::Panic { message, .. } => assert!(message.contains("flag not yet set")),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn preemption_bound_prunes_the_space() {
        let scenario = || {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    shim_thread::spawn(move || *c.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join().expect("incrementer");
            }
        };
        let full = explore(&Config::default(), scenario, |_| {});
        let bounded = explore(
            &Config {
                preemption_bound: Some(0),
                ..Config::default()
            },
            scenario,
            |_| {},
        );
        assert!(full.complete && bounded.complete);
        assert!(
            bounded.schedules < full.schedules,
            "bound 0: {} vs full: {}",
            bounded.schedules,
            full.schedules
        );
    }

    #[test]
    fn traces_record_accesses_and_schedules() {
        let mut traced = 0usize;
        let exploration = explore(
            &Config::default(),
            || {
                let m = Arc::new(Mutex::new(0u8));
                let m2 = Arc::clone(&m);
                let t = shim_thread::spawn(move || {
                    let mut g = m2.lock();
                    crate::trace_access(&*g as *const u8 as usize, true, "cell");
                    *g = 7;
                });
                t.join().expect("writer");
                assert_eq!(*m.lock(), 7);
            },
            |trace| {
                if trace.events.iter().any(|e| {
                    matches!(
                        e.op,
                        Op::Access {
                            label: "cell",
                            write: true,
                            ..
                        }
                    )
                }) {
                    traced += 1;
                }
                assert!(!trace.schedule.is_empty());
            },
        );
        assert!(exploration.complete && exploration.counterexample.is_none());
        assert_eq!(traced, exploration.schedules, "every trace has the access");
    }
}
