//! Offline stand-in for `parking_lot`: the `Mutex` API the workspace
//! uses, implemented over `std::sync::Mutex` with parking_lot's
//! poison-free ergonomics (`lock()` returns the guard directly).

use std::sync::MutexGuard as StdGuard;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock (a
    /// panicking holder) is treated as released, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
