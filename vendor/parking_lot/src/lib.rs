//! Offline stand-in for `parking_lot`: the `Mutex`/`Condvar` API the
//! workspace uses, implemented over `std::sync` with parking_lot's
//! poison-free ergonomics (`lock()` returns the guard directly,
//! `Condvar::wait` takes `&mut MutexGuard`).
//!
//! # Instrumentable sync shim
//!
//! With the `model-check` feature the crate doubles as the sync shim of
//! the `ncdrf-analyze` model checker: every `Mutex`/`Condvar`/thread
//! operation performed on a thread *registered with an active
//! exploration* (see [`model::explore`]) is routed through a
//! deterministic virtual scheduler, which serialises the program onto
//! one running thread at a time and enumerates the scheduling decisions
//! by bounded DFS. Threads outside an exploration — which is every
//! thread of a production build, and every test that does not call
//! `explore` — take the plain `std::sync` path; the only cost of the
//! feature is a thread-local check per operation.
//!
//! The instrumented surface:
//!
//! * [`Mutex::lock`] / guard drop — virtual acquire/release,
//! * [`Condvar::wait`] / [`Condvar::notify_one`] /
//!   [`Condvar::notify_all`] — virtual wait queues (FIFO, no spurious
//!   wakeups),
//! * [`thread::spawn`] / [`thread::JoinHandle::join`] — virtual thread
//!   creation and join edges,
//! * [`trace_access`] — a data-access annotation hook for the
//!   happens-before race analysis (a no-op outside explorations).
//!
//! Locks and condvars can carry a diagnostic name ([`name_mutex`],
//! [`name_condvar`]) which the scheduler embeds in traces so race and
//! lock-order reports read `pool.state`, not a bare address. Naming is
//! address-independent (the name travels with the object, set through a
//! `OnceLock` field), so constructors may name a lock before the owning
//! struct is moved.

use std::sync::MutexGuard as StdGuard;
use std::sync::OnceLock;

#[cfg(feature = "model-check")]
pub mod model;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    name: OnceLock<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Releases the lock — real and,
/// under an exploration, virtual — on drop.
#[derive(Debug)]
#[cfg_attr(not(feature = "model-check"), allow(dead_code))]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `None` only transiently, inside [`Condvar::wait`].
    inner: Option<StdGuard<'a, T>>,
    /// The guard was acquired on a registered model thread; its release
    /// must be reported to the virtual scheduler.
    virt: bool,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            name: OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock (a
    /// panicking holder) is treated as released, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model-check")]
        let virt = model::hook_acquire(self.key(), self.name.get().copied());
        #[cfg(not(feature = "model-check"))]
        let virt = false;
        // Under the virtual scheduler the real acquisition below never
        // contends: virtual ownership is exclusive and the previous
        // holder released the real lock before its virtual release was
        // published.
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            lock: self,
            inner: Some(inner),
            virt,
        }
    }

    /// The identity of this lock in scheduler traces.
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    fn key(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real release first, virtual release second: once the virtual
        // scheduler grants the lock to another thread, that thread's
        // real acquisition must already be able to succeed.
        let released = self.inner.take().is_some();
        #[cfg(feature = "model-check")]
        if self.virt && released {
            model::hook_release(self.lock.key());
        }
        #[cfg(not(feature = "model-check"))]
        let _ = released;
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` shape.
#[derive(Debug, Default)]
pub struct Condvar {
    name: OnceLock<&'static str>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, releasing `guard`'s lock while waiting
    /// and reacquiring it before returning. Like any condvar wait this
    /// may wake spuriously; callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "model-check")]
        if guard.virt {
            // Virtual wait: drop the real lock, park in the scheduler's
            // wait queue (it reacquires the lock virtually on wake),
            // then re-take the real lock — uncontended, see `lock`.
            drop(guard.inner.take());
            model::hook_wait(self.key(), self.name.get().copied(), guard.lock.key());
            let inner = guard.lock.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.inner = Some(inner);
            return;
        }
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter, if any. Under an exploration the wait queue is
    /// FIFO, so the woken thread is deterministic.
    pub fn notify_one(&self) {
        #[cfg(feature = "model-check")]
        if model::hook_notify(self.key(), self.name.get().copied(), false) {
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        #[cfg(feature = "model-check")]
        if model::hook_notify(self.key(), self.name.get().copied(), true) {
            return;
        }
        self.inner.notify_all();
    }

    /// The identity of this condvar in scheduler traces.
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    fn key(&self) -> usize {
        self as *const Condvar as *const () as usize
    }
}

/// Attaches a diagnostic name to a mutex, used by scheduler traces and
/// the lock-order/race reports. First caller wins; later calls (and
/// calls after a move — the name travels with the object) are no-ops.
pub fn name_mutex<T: ?Sized>(mutex: &Mutex<T>, name: &'static str) {
    let _ = mutex.name.set(name);
}

/// Attaches a diagnostic name to a condvar. First caller wins.
pub fn name_condvar(condvar: &Condvar, name: &'static str) {
    let _ = condvar.name.set(name);
}

/// Reports a data access (`addr` identifies the location, `label` names
/// it in reports) to the active exploration's happens-before analysis.
/// Outside an exploration — including every production build — this is
/// a no-op.
pub fn trace_access(addr: usize, write: bool, label: &'static str) {
    #[cfg(feature = "model-check")]
    model::hook_access(addr, write, label);
    #[cfg(not(feature = "model-check"))]
    let _ = (addr, write, label);
}

/// Thread spawn/join with the same shape as `std::thread`, routed
/// through the virtual scheduler when the spawning thread belongs to an
/// exploration.
pub mod thread {
    /// A handle joining a thread spawned by [`spawn`].
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    #[derive(Debug)]
    enum Inner<T> {
        Real(std::thread::JoinHandle<T>),
        #[cfg(feature = "model-check")]
        Model(crate::model::ModelJoin<T>),
    }

    /// Spawns a thread. On a registered model thread the child joins
    /// the exploration (its sync operations are scheduled virtually);
    /// everywhere else this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "model-check")]
        if crate::model::active() {
            return JoinHandle {
                inner: Inner::Model(crate::model::hook_spawn(f)),
            };
        }
        JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Real(handle) => handle.join(),
                #[cfg(feature = "model-check")]
                Inner::Model(handle) => handle.join(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_and_notify_pass_through() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = std::sync::Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().expect("notifier thread");
    }

    #[test]
    fn names_survive_moves() {
        let m = Mutex::new(0u8);
        name_mutex(&m, "moved.lock");
        let boxed = Box::new(m);
        assert_eq!(boxed.name.get().copied(), Some("moved.lock"));
    }
}
