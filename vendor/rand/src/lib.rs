//! Offline stand-in for `rand`: `StdRng`, `SeedableRng` and the
//! `Rng::{gen_range, gen_bool}` subset the corpus generator uses.
//!
//! The generator backing [`rngs::StdRng`] is SplitMix64 — deterministic
//! for a given seed, statistically solid for corpus synthesis. The stream
//! differs from real `rand`'s ChaCha-based `StdRng`; the workspace only
//! relies on *seeded determinism*, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core uniform source: a 64-bit generator.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one add +
            // two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
