//! Offline stand-in for `serde_json`: the subset this workspace uses.
//!
//! The real `serde_json` deserializes through `serde::Deserialize` impls;
//! our vendored `serde` is a no-op derive stub, so this stand-in provides
//! the other half of the story instead: a self-describing [`Value`] tree
//! plus a strict parser ([`from_str`]). Callers (the `ncdrf::report`
//! parser) walk the tree by hand.
//!
//! Two fidelity guarantees matter for bit-identical report merging and
//! are upheld here:
//!
//! * **integers are exact** — number tokens without a fraction or
//!   exponent are kept as `u128`/`i128`, never routed through `f64`
//!   (sweep cycle counters legitimately exceed 2^53);
//! * **floats round-trip** — fractional tokens are parsed with
//!   [`str::parse::<f64>`], which is correctly rounded, so the shortest
//!   representation emitted by Rust's `{}` formatting parses back to the
//!   identical bit pattern.

#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`Number`] for the integer/float split).
    Number(Number),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with member order preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept exact when the token is an integer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer token.
    PosInt(u128),
    /// A negative integer token.
    NegInt(i128),
    /// A token with a fraction or exponent part.
    Float(f64),
}

impl Value {
    /// Member lookup on an object (first match wins, like `serde_json`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric payload as `f64` (integers convert; may round above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Exact `u128` payload: only integer tokens in range qualify.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Exact `u64` payload: only integer tokens in range qualify.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// Exact `u32` payload: only integer tokens in range qualify.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u128().and_then(|v| u32::try_from(v).ok())
    }

    /// Exact `i128` payload: integer tokens of either sign.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::PosInt(v)) => i128::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u16::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer tokens too large even for u128/i128 (Rust formats huge
        // floats like `1e300` as long digit strings) degrade to Float.
        let float = || -> Result<Number, Error> {
            Ok(Number::Float(
                token.parse().map_err(|_| self.err("invalid number"))?,
            ))
        };
        let number = if integral {
            if let Some(mag) = token.strip_prefix('-') {
                match mag.parse::<i128>() {
                    Ok(v) => Number::NegInt(-v),
                    Err(_) => float()?,
                }
            } else {
                match token.parse() {
                    Ok(v) => Number::PosInt(v),
                    Err(_) => float()?,
                }
            }
        } else {
            float()?
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = from_str(r#"{"a": [1, -2, 3.5, true, null], "b": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i128(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_bool(), Some(true));
        assert!(a[4].is_null());
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = u128::MAX - 1;
        let v = from_str(&format!("[{big}]")).unwrap();
        assert_eq!(v.as_array().unwrap()[0].as_u128(), Some(big));
        // And through f64 they would not have been exact:
        assert_ne!((big as f64) as u128, big);
    }

    #[test]
    fn floats_round_trip_shortest_repr() {
        for f in [0.1, 87.65432109876, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let s = format!("{f}");
            let v = from_str(&s).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn string_escapes_decode() {
        let v = from_str(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = from_str("[1, ]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("01").is_ok()); // lenient on leading zeros, by design
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = from_str(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
