//! Offline stand-in for `criterion`: measures wall time, prints
//! `name  time: [min median max]`, and writes
//! `target/criterion/<id>/new/estimates.json` so tooling that scrapes
//! criterion's output layout keeps working.
//!
//! Methodology: one warm-up call calibrates an iteration count that puts
//! each sample near [`TARGET_SAMPLE`]; every sample then times that many
//! calls and reports the per-call average. No outlier analysis.

// A benchmark harness measures wall time by definition.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Hard cap on a single benchmark's total measuring time.
const MAX_TOTAL: Duration = Duration::from_secs(10);

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call one
    /// of its `iter*` methods.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            per_call_ns: Vec::new(),
        };
        f(&mut b);
        report(id, &b.per_call_ns);
        self
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    per_call_ns: Vec<f64>,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batching is always per-sample here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: one call, untimed in the report.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            ((TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)) as usize).clamp(1, 1_000_000);
        let budget = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.per_call_ns
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
            if budget.elapsed() > MAX_TOTAL {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let budget = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_call_ns.push(t.elapsed().as_nanos() as f64);
            if budget.elapsed() > MAX_TOTAL {
                break;
            }
        }
    }
}

fn report(id: &str, per_call_ns: &[f64]) {
    if per_call_ns.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut sorted = per_call_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{:<40} time:   [{} {} {}]",
        id,
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    write_estimates(id, mean, median);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors criterion's on-disk layout: `target/criterion/<id>/new/estimates.json`
/// with `mean`/`median` point estimates in nanoseconds.
fn write_estimates(id: &str, mean_ns: f64, median_ns: f64) {
    let safe: String = id.chars().map(|c| if c == ' ' { '_' } else { c }).collect();
    let dir = std::path::Path::new("target/criterion")
        .join(safe)
        .join("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\"mean\":{{\"point_estimate\":{mean_ns}}},\"median\":{{\"point_estimate\":{median_ns}}}}}"
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("stub/iter", |b| b.iter(|| black_box(2u64 + 2)));
        c.bench_function("stub/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
