//! Offline stand-in for `proptest`: the strategy/assertion subset the
//! workspace's property tests use, with deterministic sampling.
//!
//! Differences from real proptest, by design:
//!
//! * sampling is seeded from the test name, so every run explores the
//!   same cases (reproducible CI);
//! * no shrinking — a failing case reports its index and message only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (produced by the `prop_assert*` macros or by `?`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The sampling source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator seeded from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (see `prop_oneof!`).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.0.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )+};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Uniform choice between strategies of one concrete type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 1u32..5, pair in (0usize..3, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn oneof_picks_listed_values(v in prop_oneof![Just(3u32), Just(6u32)]) {
            prop_assert!(v == 3 || v == 6);
            prop_assert_eq!(v % 3, 0);
        }

        #[test]
        fn question_mark_propagates_cleanly(_x in 0u32..1) {
            let r: Result<(), String> = Ok(());
            r.map_err(TestCaseError::fail)?;
        }
    }
}
