//! Offline stand-in for `crossbeam`: the scoped-thread API the workspace
//! uses (`crossbeam::thread::scope` + `Scope::spawn`), implemented over
//! `std::thread::scope`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// returning. `std::thread::scope` propagates panics from spawned
    /// threads directly, so — unlike real crossbeam — the `Err` arm is
    /// never produced; the `Result` exists for signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
