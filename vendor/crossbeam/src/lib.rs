//! Offline stand-in for `crossbeam`: the scoped-thread API
//! (`crossbeam::thread::scope` + `Scope::spawn`) implemented over
//! `std::thread::scope`, plus the work-stealing deque API
//! (`crossbeam::deque::{Worker, Stealer, Injector, Steal}`) implemented
//! over locked ring buffers. The deque stand-in keeps crossbeam's
//! semantics (LIFO/FIFO locals, FIFO stealing from the opposite end,
//! `Steal::Retry` in the contract even though the lock-based
//! implementation never produces it) so switching back to the real crate
//! is a manifest-only change.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// returning. `std::thread::scope` propagates panics from spawned
    /// threads directly, so — unlike real crossbeam — the `Err` arm is
    /// never produced; the `Result` exists for signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques, mirroring `crossbeam-deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried. The lock-based
        /// stand-in never returns this; it exists for API compatibility.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    #[derive(Debug)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A worker-owned deque. The owner pushes and pops at one end;
    /// [`Stealer`]s take from the other.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A FIFO worker queue (owner pops oldest first).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A LIFO worker queue (owner pops newest first).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// The number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }

        /// A stealer handle onto this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals from the opposite end of a [`Worker`]'s queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owner's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A global FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steals the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// The number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_worker_pops_newest_stealer_takes_oldest() {
            let w = Worker::new_lifo();
            w.push(1);
            w.push(2);
            w.push(3);
            let s = w.stealer();
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn fifo_worker_pops_oldest() {
            let w: Worker<u32> = Worker::new_fifo();
            w.push(1);
            w.push(2);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.len(), 1);
        }

        #[test]
        fn injector_is_fifo_and_shared() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success("a"));
            assert_eq!(inj.steal(), Steal::Success("b"));
            assert!(inj.steal().is_empty());
        }
    }
}
