//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-compatible annotations — no code path requires the trait
//! bounds (JSON output is rendered by `ncdrf`'s own `Render` backend).
//! The derives therefore expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
