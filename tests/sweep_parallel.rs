//! Executor stress tests: the work-stealing `(machine, loop)` grid of
//! [`Sweep::run`] must be bit-identical to the sequential reference for
//! any worker count, schedule each pair exactly once, and degrade
//! per-pair (not per-run) under failures and panics.

use ncdrf::corpus::{kernels, Corpus};
use ncdrf::machine::{FuClass, FuGroup, Machine};
use ncdrf::{Model, PipelineStage, Sweep};

/// The acceptance stress test: a multi-machine × multi-budget sweep over
/// `Corpus::small()`, parallel vs sequential, bit-identical results and
/// exactly `machines × loops` scheduling runs.
#[test]
fn stress_multi_machine_grid_is_bit_identical_and_schedules_once_per_pair() {
    let corpus = Corpus::small();
    let machines = 2u64;
    let sweep = Sweep::new(&corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .budgets([24, 48])
        .workers(4);

    let par = sweep.run().expect("small corpus always schedules");
    let seq = sweep
        .run_sequential()
        .expect("small corpus always schedules");

    assert_eq!(par, seq, "parallel grid must match the sequential path");
    assert_eq!(
        par.scheduling.misses,
        machines * corpus.len() as u64,
        "each (machine, loop) pair is scheduled exactly once"
    );
    assert_eq!(par.outcomes.len(), 2 * 2 * Model::all().len());
    // Order stability: outcomes are machine-major, budget-middle,
    // model-minor — exactly the documented report layout.
    assert_eq!(par.outcomes[0].config, "C2L3");
    assert_eq!(par.outcomes.last().unwrap().config, "C2L6");
}

/// Worker count must never change results (stealing reshuffles execution
/// order, not the report).
#[test]
fn every_worker_count_produces_the_same_report() {
    let corpus = Corpus::small().take(12);
    let sweep = Sweep::new(&corpus)
        .clustered_latencies([3])
        .models(Model::finite())
        .points([16, 32, 64])
        .budget(16);
    let reference = sweep.run_sequential().unwrap();
    for workers in [1, 2, 3, 8] {
        let report = sweep.clone().workers(workers).run().unwrap();
        assert_eq!(report, reference, "with {workers} workers");
    }
}

/// One unschedulable `(machine, loop)` pair must not discard the rest of
/// the grid: `run_partial` returns every other result and names the
/// failure.
#[test]
fn one_unschedulable_pair_keeps_every_other_result() {
    // A machine without a multiplier cannot serve `vscale`; every
    // mul-free loop and the full clustered machine still succeed.
    let no_mul = Machine::new(
        "NOMUL",
        vec![
            FuGroup::unified(FuClass::Adder, 3, 2),
            FuGroup::unified(FuClass::MemPort, 1, 2),
        ],
        1,
    )
    .unwrap();
    let corpus = Corpus::from_loops(
        "mixed",
        vec![
            kernels::blas::vadd(),
            kernels::blas::vscale(),
            kernels::blas::vsum(),
        ],
    );
    let partial = Sweep::new(&corpus)
        .machines([no_mul, Machine::clustered(3, 1)])
        .models(Model::all())
        .budgets([8, 32])
        .workers(4)
        .run_partial();

    assert_eq!(partial.errors.len(), 1, "{:?}", partial.errors);
    assert_eq!(partial.errors[0].loop_name, "vscale");
    assert!(matches!(
        partial.errors[0].stage,
        PipelineStage::Schedule(_)
    ));

    // Every (machine, budget, model) series is still present.
    assert_eq!(partial.report.outcomes.len(), 2 * 2 * Model::all().len());
    // The machine that lost no loops matches a clean single-machine run.
    let clean = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models(Model::all())
        .budgets([8, 32])
        .run_sequential()
        .unwrap();
    for (got, want) in partial
        .report
        .outcomes
        .iter()
        .filter(|o| o.config == "C2L3")
        .zip(&clean.outcomes)
    {
        assert_eq!(got, want);
    }
    // And `into_result` restores the all-or-nothing contract.
    assert!(partial.into_result().is_err());
}
