//! The §5.4 spiller: convergence, accounting and monotonicity across
//! budgets and models, driven through a `Session` so every budget reuses
//! one base schedule.

use ncdrf::corpus::{kernels, Corpus};
use ncdrf::machine::Machine;
use ncdrf::{Model, Session};

#[test]
fn spiller_fits_all_small_budgets() {
    let session = Session::new(Machine::clustered(6, 1));
    for l in Corpus::small().take(40).iter() {
        for budget in [16, 24, 32] {
            let e = session.evaluate(l, Model::Unified, budget).unwrap();
            // 16 registers sits above every loop's post-spill floor on
            // this corpus (the worst fully-spilled loop still keeps ~14
            // values in flight at latency 6); the paper's own budgets are
            // 32 and 64.
            assert!(e.fits, "{} at {budget}: regs {}", l.name(), e.regs);
            assert!(e.regs <= budget);
        }
    }
}

#[test]
fn spilling_monotone_in_budget() {
    // Looser budgets never cost more spills or cycles.
    let session = Session::new(Machine::clustered(6, 1));
    for l in [
        kernels::recurrences::chain8(),
        kernels::recurrences::wide8(),
        kernels::stencils::stencil5(),
        kernels::livermore::state(),
    ] {
        let mut last_spills = usize::MAX;
        for budget in [6, 12, 24, 48] {
            let e = session.evaluate(&l, Model::Unified, budget).unwrap();
            assert!(
                e.spilled <= last_spills,
                "{}: budget {budget} spilled {} > previous {}",
                l.name(),
                e.spilled,
                last_spills
            );
            last_spills = e.spilled;
        }
    }
}

#[test]
fn spill_traffic_shows_up_in_memory_ops() {
    let session = Session::new(Machine::clustered(6, 1));
    let l = kernels::livermore::state();
    let free = session.evaluate(&l, Model::Unified, 256).unwrap();
    let tight = session.evaluate(&l, Model::Unified, 8).unwrap();
    assert_eq!(free.spilled, 0);
    if tight.spilled > 0 {
        assert!(tight.mem_ops > free.mem_ops);
        // Spill code can only lengthen the II (more memory work per
        // iteration) and add traffic.
        assert!(tight.ii >= free.ii);
    }
}

#[test]
fn dual_models_spill_less_than_unified() {
    // The headline claim: with a finite file, the dual organisation needs
    // less spill code across the corpus.
    let session = Session::new(Machine::clustered(6, 1));
    let corpus = Corpus::small().take(60);
    let spills = |model: Model| -> usize {
        session
            .evaluate_corpus(&corpus, model, 16)
            .unwrap()
            .iter()
            .map(|e| e.spilled)
            .sum()
    };
    let uni = spills(Model::Unified);
    let part = spills(Model::Partitioned);
    assert!(
        part <= uni,
        "partitioned should spill no more than unified ({part} vs {uni})"
    );
    // Both sweeps shared one scheduling run per loop.
    assert_eq!(session.cache_stats().misses, corpus.len() as u64);
}

#[test]
fn ideal_never_spills() {
    let session = Session::new(Machine::clustered(6, 1));
    for l in Corpus::small().take(20).iter() {
        let e = session.evaluate(l, Model::Ideal, 1).unwrap();
        assert!(e.fits);
        assert_eq!(e.spilled, 0);
    }
}
