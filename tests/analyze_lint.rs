//! The repo-invariant lint, run two ways: over the real workspace tree
//! (which must be clean) and over seeded violation trees (each of which
//! must fail with the right rule).

use ncdrf_analyze::lint::{lint_source, lint_tree};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn the_workspace_tree_is_clean() {
    let findings = lint_tree(&workspace_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "the tree must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_tree_refuses_a_non_workspace_root() {
    assert!(lint_tree(&std::env::temp_dir()).is_err());
}

/// Each seeded violation, planted in a scratch tree at the path its
/// rule watches, must be reported — by rule, file and line.
#[test]
fn seeded_violations_fail_the_tree() {
    let root = std::env::temp_dir().join(format!("ncdrf-lint-seeded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let plant = |rel: &str, source: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, source).expect("write fixture");
    };
    // wall-clock: a raw SystemTime::now outside the allowlist — the
    // exact shape of the bug the worker-clock satellite fixed.
    plant(
        "crates/farm/src/worker.rs",
        "pub fn now_millis() -> u64 {\n    std::time::SystemTime::now()\n        .duration_since(std::time::UNIX_EPOCH).unwrap().as_millis() as u64\n}\n",
    );
    // float-format: a float spec inside a JSON-building literal.
    plant(
        "crates/farm/src/json.rs",
        "pub fn mean(v: f64) -> String { format!(\"\\\"mean\\\":{:.6}\", v) }\n",
    );
    // daemon-unwrap: a panic path in request handling.
    plant(
        "crates/farm/src/api.rs",
        "pub fn route(body: &str) -> u64 { body.parse().unwrap() }\n",
    );
    // version-literal: a bare wire version.
    plant(
        "crates/core/src/report.rs",
        "pub fn render(o: &mut Vec<String>) { o.push(format!(\"{} {}\", \"version\", 0)); fn g(o: &mut O) { o.integer(\"version\", 3); } }\n",
    );
    // model-name-literal: a wire name hardcoded outside the registry.
    plant(
        "crates/core/src/sweep.rs",
        "pub fn default_model() -> &'static str { \"unified\" }\n",
    );
    // truncating-cast: a bare narrow in the spill crate, outside any
    // sanctioned index constructor.
    plant(
        "crates/spill/src/rewrite.rs",
        "pub fn slot(i: usize) -> u32 { i as u32 }\n",
    );

    let findings = lint_tree(&root).expect("lint runs on the seeded tree");
    let has = |rule: &str, file: &str| {
        findings
            .iter()
            .any(|f| f.rule == rule && f.path.ends_with(file))
    };
    assert!(
        has("wall-clock", "crates/farm/src/worker.rs"),
        "{findings:?}"
    );
    assert!(
        has("float-format", "crates/farm/src/json.rs"),
        "{findings:?}"
    );
    assert!(
        has("daemon-unwrap", "crates/farm/src/api.rs"),
        "{findings:?}"
    );
    assert!(
        has("version-literal", "crates/core/src/report.rs"),
        "{findings:?}"
    );
    assert!(
        has("model-name-literal", "crates/core/src/sweep.rs"),
        "{findings:?}"
    );
    assert!(
        has("truncating-cast", "crates/spill/src/rewrite.rs"),
        "{findings:?}"
    );
    // The scratch tree lacks nearly every allowlisted path, so the
    // dead-allowlist rule must fire — pointing at the lint's own source
    // — for at least the wall-clock table and a sanctioned-cast entry.
    let dead: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "dead-allowlist")
        .collect();
    assert!(
        dead.iter()
            .all(|f| f.path.ends_with("crates/analyze/src/lint.rs")),
        "{dead:?}"
    );
    assert!(
        dead.iter().any(|f| f.detail.contains("WALL_CLOCK_ALLOW")),
        "{dead:?}"
    );
    assert!(
        dead.iter().any(|f| f.detail.contains("CAST_SANCTIONED")),
        "{dead:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// The rule that bit in PR 6: `crates/farm/src/worker.rs` reading the
/// wall clock directly. The fixed file (clock injection) passes; the
/// old shape fails.
#[test]
fn the_worker_clock_fix_is_pinned() {
    let fixed = std::fs::read_to_string(workspace_root().join("crates/farm/src/worker.rs"))
        .expect("worker.rs reads");
    assert!(
        lint_source("crates/farm/src/worker.rs", &fixed).is_empty(),
        "worker.rs must stay on the injected clock"
    );
    let regressed = "pub fn now_millis() -> u64 { SystemTime::now().elapsed().as_millis() as u64 }";
    let findings = lint_source("crates/farm/src/worker.rs", regressed);
    assert!(findings.iter().any(|f| f.rule == "wall-clock"));
}
