//! Failure injection: every checker in the stack must actually *catch*
//! corrupted artifacts — a verifier that never fires is worse than none.

use ncdrf::corpus::kernels;
use ncdrf::machine::{Machine, UnitRef};
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, verify_dual, verify_unified,
};
use ncdrf::sched::{modulo_schedule, verify, Schedule, VerifyError};
use ncdrf::vliw::{check_equivalence, Binding, EquivError};

fn setup() -> (ncdrf::ddg::Loop, Machine, Schedule) {
    let l = kernels::livermore::hydro();
    let machine = Machine::clustered(3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    (l, machine, sched)
}

/// Rebuilds a schedule with one op's start cycle shifted by `delta`.
fn shift_start(
    l: &ncdrf::ddg::Loop,
    machine: &Machine,
    sched: &Schedule,
    op: usize,
    delta: i64,
) -> Schedule {
    let n = l.ops().len();
    let starts: Vec<u32> = (0..n)
        .map(|i| {
            let s = sched.start(ncdrf::ddg::OpId::from_index(i)) as i64;
            if i == op {
                (s + delta).max(0) as u32
            } else {
                s as u32
            }
        })
        .collect();
    let units: Vec<UnitRef> = (0..n)
        .map(|i| sched.unit(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    Schedule::from_parts(l, machine, sched.ii(), starts, units)
}

#[test]
fn schedule_verifier_catches_dependence_violations() {
    let (l, machine, sched) = setup();
    // Pull every non-source op one cycle earlier; at least one dependence
    // must break, and verify must say so.
    let mut caught = 0;
    for op in 0..l.ops().len() {
        if sched.start(ncdrf::ddg::OpId::from_index(op)) == 0 {
            continue;
        }
        let bad = shift_start(&l, &machine, &sched, op, -1);
        if matches!(
            verify(&l, &machine, &bad),
            Err(VerifyError::Dependence { .. }) | Err(VerifyError::ResourceConflict { .. })
        ) {
            caught += 1;
        }
    }
    assert!(caught > 0, "no corruption was detectable?");
}

#[test]
fn schedule_verifier_catches_resource_conflicts() {
    let (l, machine, sched) = setup();
    // Force two same-group ops onto the same instance and slot.
    let ids: Vec<_> = l
        .iter_ops()
        .map(|(id, _)| id)
        .filter(|&id| l.op(id).kind() == ncdrf::ddg::OpKind::Load)
        .collect();
    assert!(ids.len() >= 2);
    let n = l.ops().len();
    let mut starts: Vec<u32> = (0..n)
        .map(|i| sched.start(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    let mut units: Vec<UnitRef> = (0..n)
        .map(|i| sched.unit(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    // Same unit, same kernel slot for the two loads.
    units[ids[1].index()] = units[ids[0].index()];
    starts[ids[1].index()] = starts[ids[0].index()];
    let bad = Schedule::from_parts(&l, &machine, sched.ii(), starts, units);
    assert!(matches!(
        verify(&l, &machine, &bad),
        Err(VerifyError::ResourceConflict { .. })
    ));
}

#[test]
fn unified_verifier_catches_offset_corruption() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut alloc = allocate_unified(&lts, sched.ii());
    if alloc.regs < 2 {
        return;
    }
    // Collapse every offset onto 0: some pair must now clash.
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    assert!(verify_unified(&lts, sched.ii(), &alloc).is_err());
}

#[test]
fn dual_verifier_catches_offset_corruption() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let classes = classify(&l, &machine, &sched, &lts);
    let mut alloc = allocate_dual(&lts, &classes, sched.ii());
    if alloc.regs < 2 {
        return;
    }
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    assert!(verify_dual(&lts, sched.ii(), &alloc).is_err());
}

#[test]
fn executor_oracle_catches_wrong_class() {
    // Misclassify a global value as local: one cluster reads a stale
    // register, and the memory comparison must fail.
    use ncdrf::machine::ClusterId;
    use ncdrf::regalloc::ValueClass;
    let l = kernels::blas::sqdist();
    let machine = Machine::clustered(3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut classes = classify(&l, &machine, &sched, &lts);
    let Some(gi) = classes.iter().position(|c| *c == ValueClass::Global) else {
        return; // schedule happened to localise everything: nothing to corrupt
    };
    classes[gi] = ValueClass::Only(ClusterId::LEFT);
    let alloc = allocate_dual(&lts, &classes, sched.ii());
    let r = check_equivalence(&l, &machine, &sched, &Binding::dual(&lts, &alloc), 20);
    assert!(
        matches!(r, Err(EquivError::Mismatch { .. })),
        "misclassification must corrupt execution"
    );
}

#[test]
fn executor_oracle_catches_undersized_file() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut alloc = allocate_unified(&lts, sched.ii());
    if alloc.regs < 3 {
        return;
    }
    // Shrink the file without re-packing: rotation now wraps values onto
    // each other.
    alloc.regs -= 2;
    for o in alloc.offsets.iter_mut() {
        *o %= alloc.regs;
    }
    let r = check_equivalence(&l, &machine, &sched, &Binding::unified(&lts, &alloc), 30);
    assert!(matches!(r, Err(EquivError::Mismatch { .. })));
}

/// A spill failure at one budget must not poison the cached trajectory:
/// budgets the committed prefix already serves keep working (and keep
/// matching the fresh pipeline), other models evaluate untouched, and
/// the failure itself is deterministic.
///
/// The injected fault: cap the scheduler's II search (`max_ii`) at the
/// II of an early spill checkpoint. Spilling adds memory traffic, so on
/// a one-port-per-cluster machine a deeper rewrite needs a larger II —
/// the capped reschedule then fails with `NoSchedule` exactly at that
/// step, while every earlier step (and the base schedule) is untouched.
#[test]
fn spill_failure_at_one_budget_does_not_poison_the_trajectory_cache() {
    use ncdrf::spill::{requirement_unified, SpillOptions, SpillTrajectory};
    use ncdrf::{evaluate, Model, PipelineOptions, PipelineStage, Session};

    let l = kernels::blas::axpby();
    let machine = Machine::clustered(6, 1);

    // Probe the unrestricted descent for a step `fail_at` whose II
    // exceeds every II before it, with at least one requirement-lowering
    // step in front — capping `max_ii` just below `fail_at`'s II then
    // reproduces the healthy prefix exactly and fails exactly there.
    let base = modulo_schedule(&l, &machine).unwrap();
    let mut probe = SpillTrajectory::from_base(
        &l,
        &machine,
        base,
        &mut requirement_unified,
        SpillOptions::default(),
    )
    .unwrap();
    probe
        .evaluate(&machine, 2, &mut requirement_unified)
        .unwrap();
    let cps = probe.checkpoints();
    let iis: Vec<u32> = cps.iter().map(|c| c.ii).collect();
    let (fail_at, cap) = (2..cps.len())
        .find_map(|k| {
            let cap = *iis[..k].iter().max().unwrap();
            let healthy = cps[1..k].iter().any(|c| c.regs < cps[0].regs);
            (iis[k] > cap && healthy).then_some((k, cap))
        })
        .expect("spilling a mem-bound loop must grow the II past a healthy prefix");
    // A budget the healthy prefix serves, and one that needs the
    // now-impossible step.
    let good = cps[1..fail_at].iter().map(|c| c.regs).min().unwrap();
    assert!(
        good < cps[0].regs,
        "the good budget must force real spilling"
    );
    let bad = cps[..fail_at].iter().map(|c| c.regs).min().unwrap() - 1;

    let mut opts = PipelineOptions::default();
    opts.spill.scheduler.max_ii = Some(cap);
    let session = Session::new(machine.clone()).options(opts);

    // Healthy prefix first; then the poisoned budget fails...
    let before = session.evaluate(&l, Model::Unified, good).unwrap();
    assert_eq!(
        before,
        evaluate(&l, &machine, Model::Unified, good, &opts).unwrap()
    );
    let err = session.evaluate(&l, Model::Unified, bad).unwrap_err();
    assert_eq!(err.loop_name, l.name());
    assert!(matches!(err.stage, PipelineStage::Spill(_)), "{err}");
    // ...exactly like the uncached pipeline fails.
    let fresh_err = evaluate(&l, &machine, Model::Unified, bad, &opts).unwrap_err();
    assert_eq!(
        err, fresh_err,
        "the injected fault must be path-independent"
    );

    // The committed prefix still serves its budgets, bit-identically,
    // and as a cache *hit* (nothing was recomputed, nothing discarded).
    let hits_before = session.cache_stats().traj_hits;
    let after = session.evaluate(&l, Model::Unified, good).unwrap();
    assert_eq!(after, before);
    assert_eq!(session.cache_stats().traj_hits, hits_before + 1);

    // Other models are untouched by the unified failure...
    let other = session
        .evaluate(&l, Model::Partitioned, cps[0].regs)
        .unwrap();
    assert_eq!(
        other,
        evaluate(&l, &machine, Model::Partitioned, cps[0].regs, &opts).unwrap()
    );
    // ...and the failure stays deterministic on retry.
    assert_eq!(session.evaluate(&l, Model::Unified, bad).unwrap_err(), err);
}

/// The heal pipeline end to end, in process: a 4-way sharded run with
/// injected per-cell failures, healed by `Sweep::reissue` +
/// `SweepShard::merge`, must produce a report **byte-identical** to the
/// sequential reference — results, failure list (empty) and summed
/// `CacheStats` alike. The injected cells contribute zero counters and
/// their heal replacements contribute exactly what the sequential run
/// attributes to those cells, so no double counting can hide in the
/// sums.
#[test]
fn injected_cell_failures_heal_to_the_sequential_reference() {
    use ncdrf::corpus::Corpus;
    use ncdrf::{parse_sweep_shard, Model, Render, ReportFormat, ShardRole, Sweep, SweepShard};

    let corpus = Corpus::small().take(8);
    let sweep = Sweep::new(&corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .points([16, 32])
        .budgets([32, 12]);
    let seq = sweep.run_sequential().unwrap();

    // Four shards over the 16-cell grid, four cells injected to fail
    // (spread over several shards; round-robin puts task t in shard
    // t % 4). The same fault list goes to every runner — cells outside
    // a runner's shard are ignored.
    let faults = [1u64, 6, 11, 12];
    let shards: Vec<SweepShard> = (0..4)
        .map(|i| sweep.shard_with_faults(i, 4, &faults).unwrap())
        .collect();
    let injected: usize = shards.iter().map(SweepShard::failure_count).sum();
    assert_eq!(injected, faults.len(), "every fault lands in one shard");

    // The faulted merge reports the failures (and is NOT the reference).
    let broken = SweepShard::merge(&shards).unwrap();
    assert_eq!(broken.errors.len(), faults.len());
    assert_ne!(broken.report, seq);

    // `unresolved` names exactly the injected cells; `reissue` re-runs
    // them as a heal artifact.
    let missing = SweepShard::unresolved(&shards).unwrap();
    assert_eq!(missing, faults);
    let heal = sweep.reissue(&missing, &shards).unwrap();
    assert_eq!(heal.role(), ShardRole::Heal);
    assert_eq!(heal.cell_count(), faults.len());
    assert_eq!(heal.failure_count(), 0);

    // Healed merge: byte-identical to the sequential reference,
    // including the summed cache counters.
    let mut all = shards.clone();
    all.push(heal);
    let healed = SweepShard::merge(&all).unwrap();
    assert!(healed.is_complete());
    assert_eq!(healed.report, seq);
    assert_eq!(
        healed.report.render(ReportFormat::Json),
        seq.render(ReportFormat::Json),
        "healed merge must be byte-identical, counters included"
    );
    assert!(SweepShard::unresolved(&all).unwrap().is_empty());

    // And the same holds across the artifact JSON round trip (the
    // cross-process path the CI heal-verify job drives). Failure-free
    // artifacts round-trip to equality; faulted ones differ only in
    // the error's stage representation (structured `Panic` becomes
    // text-verbatim `Remote`), which the healed merge drops anyway.
    let parsed: Vec<SweepShard> = all
        .iter()
        .map(|s| {
            let round = parse_sweep_shard(&s.render(ReportFormat::Json)).unwrap();
            if s.failure_count() == 0 {
                assert_eq!(&round, s);
            }
            round
        })
        .collect();
    assert_eq!(
        SweepShard::merge(&parsed)
            .unwrap()
            .report
            .render(ReportFormat::Json),
        seq.render(ReportFormat::Json)
    );

    // A consolidated artifact stands in for the original set: healing
    // it gives the same bytes (this is what `shard_runner merge
    // --out-artifact` + `reissue --from MERGED.json` do).
    let consolidated = SweepShard::consolidate(&shards).unwrap();
    let missing = SweepShard::unresolved(std::slice::from_ref(&consolidated)).unwrap();
    assert_eq!(missing, faults);
    let heal2 = sweep
        .reissue(&missing, std::slice::from_ref(&consolidated))
        .unwrap();
    let healed2 = SweepShard::merge(&[consolidated, heal2]).unwrap();
    assert_eq!(
        healed2.report.render(ReportFormat::Json),
        seq.render(ReportFormat::Json)
    );
}

/// A reissue of an already-evaluated grid at a **smaller budget**
/// resumes the trajectories the artifact persisted: the results are
/// identical to a from-scratch run, but the recorded descent prefix is
/// never respilled — counter-asserted as `traj_resumes > 0` and fewer
/// `spill_steps` than the sequential reference pays.
#[test]
fn reissue_at_a_smaller_budget_resumes_persisted_trajectories() {
    use ncdrf::corpus::Corpus;
    use ncdrf::{parse_sweep_shard, Model, Render, ReportFormat, Session, Sweep, SweepShard};

    let corpus = Corpus::from_loops(
        "pressured",
        vec![
            kernels::recurrences::chain8(),
            kernels::recurrences::wide8(),
        ],
    );
    let machine = Machine::clustered(6, 1);
    let free = corpus
        .iter()
        .map(|l| {
            Session::new(machine.clone())
                .analyze(l, Model::Unified)
                .unwrap()
                .regs
        })
        .min()
        .unwrap();
    assert!(free > 5, "the corpus must be register-pressured");

    // First run: budget just under the requirement, descents persisted
    // into the artifact (and through its JSON round trip).
    let first = Sweep::new(&corpus)
        .machine(machine.clone())
        .models([Model::Unified])
        .budget(free - 1)
        .persist_trajectories(true);
    let artifact = first.shard(0, 1).unwrap();
    assert!(
        artifact.trajectory_count() > 0,
        "spilling cells must persist their descents"
    );
    let artifact = parse_sweep_shard(&artifact.render(ReportFormat::Json)).unwrap();

    // Second run, smaller budget: a different grid (budgets differ),
    // but resume-compatible (same corpus, machine, options). Reissue
    // the whole grid, seeding from the first artifact.
    let deeper = Sweep::new(&corpus)
        .machine(machine.clone())
        .models([Model::Unified])
        .budget(4);
    let seq = deeper.run_sequential().unwrap();
    let every_cell: Vec<u64> = (0..corpus.len() as u64).collect();
    let heal = deeper
        .reissue(&every_cell, std::slice::from_ref(&artifact))
        .unwrap();

    // Results identical to from-scratch...
    let healed = SweepShard::merge(std::slice::from_ref(&heal)).unwrap();
    assert!(healed.is_complete());
    assert_eq!(healed.report.outcomes, seq.outcomes);
    assert_eq!(healed.report.distributions, seq.distributions);

    // ...but the work is not: the persisted prefix was replayed, not
    // respilled, so only the extension's steps were computed.
    let resumed = heal.scheduling();
    assert!(resumed.traj_resumes > 0, "no descent resumed: {resumed:?}");
    assert!(
        resumed.spill_steps < seq.scheduling.spill_steps,
        "resume must cost fewer spill steps ({} vs {} from scratch)",
        resumed.spill_steps,
        seq.scheduling.spill_steps
    );

    // A reissue at the *recorded* budget is served from the checkpoint
    // record alone: zero spill steps, pure trajectory hits.
    let replay = Sweep::new(&corpus)
        .machine(machine)
        .models([Model::Unified])
        .budget(free - 1);
    let served = replay.reissue(&every_cell, &[artifact]).unwrap();
    assert_eq!(
        SweepShard::merge(std::slice::from_ref(&served))
            .unwrap()
            .report
            .outcomes,
        first.run_sequential().unwrap().outcomes
    );
    assert_eq!(served.scheduling().spill_steps, 0);
    assert!(served.scheduling().traj_hits > 0);
}

#[test]
fn multi_verifier_catches_corruption() {
    use ncdrf::regalloc::{allocate_multi, classify_multi, verify_multi};
    let l = kernels::spec::eos_heavy();
    let machine = Machine::clustered_n(4, 3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let sets = classify_multi(&l, &machine, &sched, &lts);
    let mut alloc = allocate_multi(&lts, &sets, sched.ii(), 4);
    assert!(verify_multi(&lts, sched.ii(), &alloc).is_ok());
    if alloc.regs < 2 {
        return;
    }
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    // All offsets collapsed: intersecting sets must clash somewhere.
    assert!(verify_multi(&lts, sched.ii(), &alloc).is_err());
}
