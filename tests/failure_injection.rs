//! Failure injection: every checker in the stack must actually *catch*
//! corrupted artifacts — a verifier that never fires is worse than none.

use ncdrf::corpus::kernels;
use ncdrf::machine::{Machine, UnitRef};
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, verify_dual, verify_unified,
};
use ncdrf::sched::{modulo_schedule, verify, Schedule, VerifyError};
use ncdrf::vliw::{check_equivalence, Binding, EquivError};

fn setup() -> (ncdrf::ddg::Loop, Machine, Schedule) {
    let l = kernels::livermore::hydro();
    let machine = Machine::clustered(3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    (l, machine, sched)
}

/// Rebuilds a schedule with one op's start cycle shifted by `delta`.
fn shift_start(
    l: &ncdrf::ddg::Loop,
    machine: &Machine,
    sched: &Schedule,
    op: usize,
    delta: i64,
) -> Schedule {
    let n = l.ops().len();
    let starts: Vec<u32> = (0..n)
        .map(|i| {
            let s = sched.start(ncdrf::ddg::OpId::from_index(i)) as i64;
            if i == op {
                (s + delta).max(0) as u32
            } else {
                s as u32
            }
        })
        .collect();
    let units: Vec<UnitRef> = (0..n)
        .map(|i| sched.unit(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    Schedule::from_parts(l, machine, sched.ii(), starts, units)
}

#[test]
fn schedule_verifier_catches_dependence_violations() {
    let (l, machine, sched) = setup();
    // Pull every non-source op one cycle earlier; at least one dependence
    // must break, and verify must say so.
    let mut caught = 0;
    for op in 0..l.ops().len() {
        if sched.start(ncdrf::ddg::OpId::from_index(op)) == 0 {
            continue;
        }
        let bad = shift_start(&l, &machine, &sched, op, -1);
        if matches!(
            verify(&l, &machine, &bad),
            Err(VerifyError::Dependence { .. }) | Err(VerifyError::ResourceConflict { .. })
        ) {
            caught += 1;
        }
    }
    assert!(caught > 0, "no corruption was detectable?");
}

#[test]
fn schedule_verifier_catches_resource_conflicts() {
    let (l, machine, sched) = setup();
    // Force two same-group ops onto the same instance and slot.
    let ids: Vec<_> = l
        .iter_ops()
        .map(|(id, _)| id)
        .filter(|&id| l.op(id).kind() == ncdrf::ddg::OpKind::Load)
        .collect();
    assert!(ids.len() >= 2);
    let n = l.ops().len();
    let mut starts: Vec<u32> = (0..n)
        .map(|i| sched.start(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    let mut units: Vec<UnitRef> = (0..n)
        .map(|i| sched.unit(ncdrf::ddg::OpId::from_index(i)))
        .collect();
    // Same unit, same kernel slot for the two loads.
    units[ids[1].index()] = units[ids[0].index()];
    starts[ids[1].index()] = starts[ids[0].index()];
    let bad = Schedule::from_parts(&l, &machine, sched.ii(), starts, units);
    assert!(matches!(
        verify(&l, &machine, &bad),
        Err(VerifyError::ResourceConflict { .. })
    ));
}

#[test]
fn unified_verifier_catches_offset_corruption() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut alloc = allocate_unified(&lts, sched.ii());
    if alloc.regs < 2 {
        return;
    }
    // Collapse every offset onto 0: some pair must now clash.
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    assert!(verify_unified(&lts, sched.ii(), &alloc).is_err());
}

#[test]
fn dual_verifier_catches_offset_corruption() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let classes = classify(&l, &machine, &sched, &lts);
    let mut alloc = allocate_dual(&lts, &classes, sched.ii());
    if alloc.regs < 2 {
        return;
    }
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    assert!(verify_dual(&lts, sched.ii(), &alloc).is_err());
}

#[test]
fn executor_oracle_catches_wrong_class() {
    // Misclassify a global value as local: one cluster reads a stale
    // register, and the memory comparison must fail.
    use ncdrf::machine::ClusterId;
    use ncdrf::regalloc::ValueClass;
    let l = kernels::blas::sqdist();
    let machine = Machine::clustered(3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut classes = classify(&l, &machine, &sched, &lts);
    let Some(gi) = classes.iter().position(|c| *c == ValueClass::Global) else {
        return; // schedule happened to localise everything: nothing to corrupt
    };
    classes[gi] = ValueClass::Only(ClusterId::LEFT);
    let alloc = allocate_dual(&lts, &classes, sched.ii());
    let r = check_equivalence(&l, &machine, &sched, &Binding::dual(&lts, &alloc), 20);
    assert!(
        matches!(r, Err(EquivError::Mismatch { .. })),
        "misclassification must corrupt execution"
    );
}

#[test]
fn executor_oracle_catches_undersized_file() {
    let (l, machine, sched) = setup();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let mut alloc = allocate_unified(&lts, sched.ii());
    if alloc.regs < 3 {
        return;
    }
    // Shrink the file without re-packing: rotation now wraps values onto
    // each other.
    alloc.regs -= 2;
    for o in alloc.offsets.iter_mut() {
        *o %= alloc.regs;
    }
    let r = check_equivalence(&l, &machine, &sched, &Binding::unified(&lts, &alloc), 30);
    assert!(matches!(r, Err(EquivError::Mismatch { .. })));
}

/// A spill failure at one budget must not poison the cached trajectory:
/// budgets the committed prefix already serves keep working (and keep
/// matching the fresh pipeline), other models evaluate untouched, and
/// the failure itself is deterministic.
///
/// The injected fault: cap the scheduler's II search (`max_ii`) at the
/// II of an early spill checkpoint. Spilling adds memory traffic, so on
/// a one-port-per-cluster machine a deeper rewrite needs a larger II —
/// the capped reschedule then fails with `NoSchedule` exactly at that
/// step, while every earlier step (and the base schedule) is untouched.
#[test]
fn spill_failure_at_one_budget_does_not_poison_the_trajectory_cache() {
    use ncdrf::spill::{requirement_unified, SpillOptions, SpillTrajectory};
    use ncdrf::{evaluate, Model, PipelineOptions, PipelineStage, Session};

    let l = kernels::blas::axpby();
    let machine = Machine::clustered(6, 1);

    // Probe the unrestricted descent for a step `fail_at` whose II
    // exceeds every II before it, with at least one requirement-lowering
    // step in front — capping `max_ii` just below `fail_at`'s II then
    // reproduces the healthy prefix exactly and fails exactly there.
    let base = modulo_schedule(&l, &machine).unwrap();
    let mut probe = SpillTrajectory::from_base(
        &l,
        &machine,
        base,
        &mut requirement_unified,
        SpillOptions::default(),
    )
    .unwrap();
    probe
        .evaluate(&machine, 2, &mut requirement_unified)
        .unwrap();
    let cps = probe.checkpoints();
    let iis: Vec<u32> = cps.iter().map(|c| c.sched.ii()).collect();
    let (fail_at, cap) = (2..cps.len())
        .find_map(|k| {
            let cap = *iis[..k].iter().max().unwrap();
            let healthy = cps[1..k].iter().any(|c| c.regs < cps[0].regs);
            (iis[k] > cap && healthy).then_some((k, cap))
        })
        .expect("spilling a mem-bound loop must grow the II past a healthy prefix");
    // A budget the healthy prefix serves, and one that needs the
    // now-impossible step.
    let good = cps[1..fail_at].iter().map(|c| c.regs).min().unwrap();
    assert!(
        good < cps[0].regs,
        "the good budget must force real spilling"
    );
    let bad = cps[..fail_at].iter().map(|c| c.regs).min().unwrap() - 1;

    let mut opts = PipelineOptions::default();
    opts.spill.scheduler.max_ii = Some(cap);
    let session = Session::new(machine.clone()).options(opts);

    // Healthy prefix first; then the poisoned budget fails...
    let before = session.evaluate(&l, Model::Unified, good).unwrap();
    assert_eq!(
        before,
        evaluate(&l, &machine, Model::Unified, good, &opts).unwrap()
    );
    let err = session.evaluate(&l, Model::Unified, bad).unwrap_err();
    assert_eq!(err.loop_name, l.name());
    assert!(matches!(err.stage, PipelineStage::Spill(_)), "{err}");
    // ...exactly like the uncached pipeline fails.
    let fresh_err = evaluate(&l, &machine, Model::Unified, bad, &opts).unwrap_err();
    assert_eq!(
        err, fresh_err,
        "the injected fault must be path-independent"
    );

    // The committed prefix still serves its budgets, bit-identically,
    // and as a cache *hit* (nothing was recomputed, nothing discarded).
    let hits_before = session.cache_stats().traj_hits;
    let after = session.evaluate(&l, Model::Unified, good).unwrap();
    assert_eq!(after, before);
    assert_eq!(session.cache_stats().traj_hits, hits_before + 1);

    // Other models are untouched by the unified failure...
    let other = session
        .evaluate(&l, Model::Partitioned, cps[0].regs)
        .unwrap();
    assert_eq!(
        other,
        evaluate(&l, &machine, Model::Partitioned, cps[0].regs, &opts).unwrap()
    );
    // ...and the failure stays deterministic on retry.
    assert_eq!(session.evaluate(&l, Model::Unified, bad).unwrap_err(), err);
}

#[test]
fn multi_verifier_catches_corruption() {
    use ncdrf::regalloc::{allocate_multi, classify_multi, verify_multi};
    let l = kernels::spec::eos_heavy();
    let machine = Machine::clustered_n(4, 3, 1);
    let sched = modulo_schedule(&l, &machine).unwrap();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let sets = classify_multi(&l, &machine, &sched, &lts);
    let mut alloc = allocate_multi(&lts, &sets, sched.ii(), 4);
    assert!(verify_multi(&lts, sched.ii(), &alloc).is_ok());
    if alloc.regs < 2 {
        return;
    }
    for o in alloc.offsets.iter_mut() {
        *o = 0;
    }
    // All offsets collapsed: intersecting sets must clash somewhere.
    assert!(verify_multi(&lts, sched.ii(), &alloc).is_err());
}
