//! End-to-end semantic validation: every stage of the pipeline (schedule,
//! classify, allocate, swap, spill) must leave the loop *executable* with
//! results bit-identical to the sequential reference. This is the oracle
//! the paper's numbers silently depend on.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, verify_dual, verify_unified,
};
use ncdrf::sched::{modulo_schedule, verify};
use ncdrf::spill::{requirement_unified, spill_until_fits, SpillOptions};
use ncdrf::swap::swap_pass;
use ncdrf::vliw::{check_equivalence, Binding};

const ITERATIONS: u64 = 20;

fn sample() -> Vec<ncdrf::ddg::Loop> {
    // Named kernels + a slice of generated loops.
    Corpus::small().take(60).loops().to_vec()
}

#[test]
fn unified_pipeline_is_semantically_correct() {
    for machine in [Machine::clustered(3, 1), Machine::clustered(6, 1)] {
        for l in sample() {
            let sched = modulo_schedule(&l, &machine).unwrap();
            verify(&l, &machine, &sched).unwrap();
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let alloc = allocate_unified(&lts, sched.ii());
            verify_unified(&lts, sched.ii(), &alloc)
                .unwrap_or_else(|(a, b)| panic!("{}: offsets {a} and {b} clash", l.name()));
            check_equivalence(
                &l,
                &machine,
                &sched,
                &Binding::unified(&lts, &alloc),
                ITERATIONS,
            )
            .unwrap_or_else(|e| panic!("{} (unified): {e}", l.name()));
        }
    }
}

#[test]
fn partitioned_pipeline_is_semantically_correct() {
    let machine = Machine::clustered(3, 1);
    for l in sample() {
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let classes = classify(&l, &machine, &sched, &lts);
        let alloc = allocate_dual(&lts, &classes, sched.ii());
        verify_dual(&lts, sched.ii(), &alloc)
            .unwrap_or_else(|(a, b)| panic!("{}: offsets {a} and {b} clash", l.name()));
        check_equivalence(
            &l,
            &machine,
            &sched,
            &Binding::dual(&lts, &alloc),
            ITERATIONS,
        )
        .unwrap_or_else(|e| panic!("{} (partitioned): {e}", l.name()));
    }
}

#[test]
fn swapped_pipeline_is_semantically_correct() {
    let machine = Machine::clustered(6, 1);
    for l in sample() {
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        swap_pass(&l, &machine, &mut sched).unwrap();
        verify(&l, &machine, &sched)
            .unwrap_or_else(|e| panic!("{}: swap broke the schedule: {e}", l.name()));
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let classes = classify(&l, &machine, &sched, &lts);
        let alloc = allocate_dual(&lts, &classes, sched.ii());
        check_equivalence(
            &l,
            &machine,
            &sched,
            &Binding::dual(&lts, &alloc),
            ITERATIONS,
        )
        .unwrap_or_else(|e| panic!("{} (swapped): {e}", l.name()));
    }
}

#[test]
fn spilled_loops_are_semantically_correct() {
    // Spill aggressively (tiny budget), then execute the *rewritten* loop
    // and compare against its own sequential reference.
    let machine = Machine::clustered(6, 1);
    for l in sample().into_iter().take(25) {
        let r = spill_until_fits(
            &l,
            &machine,
            6,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", l.name()));
        verify(&r.l, &machine, &r.sched).unwrap();
        let lts = lifetimes(&r.l, &machine, &r.sched).unwrap();
        let alloc = allocate_unified(&lts, r.sched.ii());
        assert!(alloc.regs <= 6 || !r.fits, "{}: alloc disagrees", l.name());
        check_equivalence(
            &r.l,
            &machine,
            &r.sched,
            &Binding::unified(&lts, &alloc),
            ITERATIONS,
        )
        .unwrap_or_else(|e| panic!("{} (spilled): {e}", l.name()));
    }
}
