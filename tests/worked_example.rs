//! Reproduces the paper's §4 worked example end to end: the Figure 2 loop,
//! the Figure 3/4 schedule, Table 2 (lifetimes), Table 3 (classification
//! before swapping) and Table 4 (after swapping A4 <-> A6).

use ncdrf::ddg::{Loop, LoopBuilder, OpId, Weight};
use ncdrf::machine::{ClusterId, Machine, UnitRef};
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, max_live, DualPressure, ValueClass,
};
use ncdrf::sched::{mii, verify, Schedule};
use ncdrf::swap::{requirement_bound, swap_pass};

/// The Figure 2 dependence graph:
/// `L1 = x[i]; L2 = y[i]; M3 = L1*r; A4 = M3+L2; M5 = A4*t; A6 = M5+L1;
///  S7: z[i] = A6`.
fn fig2() -> Loop {
    let mut b = LoopBuilder::new("fig2");
    let r = b.invariant("r", 0.5);
    let t = b.invariant("t", 1.5);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let l1 = b.load("L1", x, 0);
    let l2 = b.load("L2", y, 0);
    let m3 = b.mul("M3", l1.now(), r);
    let a4 = b.add("A4", m3.now(), l2.now());
    let m5 = b.mul("M5", a4.now(), t);
    let a6 = b.add("A6", m5.now(), l1.now());
    b.store("S7", z, 0, a6.now());
    b.finish(Weight::new(100, 1)).unwrap()
}

/// The §4 machine: two clusters, each 1 adder + 1 multiplier (latency 3)
/// and 2 load/store units (latency 1).
fn machine() -> Machine {
    Machine::clustered(3, 2)
}

fn op(l: &Loop, name: &str) -> OpId {
    l.find_op(name).unwrap()
}

/// The paper's Figure 3 schedule (II = 1, stages in Figure 4's brackets
/// minus one): L1,L2 @0, M3 @1, A4 @4, M5 @7, A6 @10, S7 @13.
/// Cluster assignment before swapping: {L1, L2, M3, A4} left,
/// {M5, A6, S7} right.
fn paper_schedule(l: &Loop, m: &Machine) -> Schedule {
    let g_add = m.group_for(ncdrf::ddg::OpKind::FpAdd).unwrap();
    let g_mul = m.group_for(ncdrf::ddg::OpKind::FpMul).unwrap();
    let g_mem = m.group_for(ncdrf::ddg::OpKind::Load).unwrap();
    let unit = |g: usize, i: usize| UnitRef {
        group: g,
        instance: i,
    };
    // Op order: L1, L2, M3, A4, M5, A6, S7.
    let starts = vec![0, 0, 1, 4, 7, 10, 13];
    let units = vec![
        unit(g_mem, 0), // L1 left mem
        unit(g_mem, 1), // L2 left mem
        unit(g_mul, 0), // M3 left mul
        unit(g_add, 0), // A4 left add
        unit(g_mul, 1), // M5 right mul
        unit(g_add, 1), // A6 right add
        unit(g_mem, 2), // S7 right mem
    ];
    Schedule::from_parts(l, m, 1, starts, units)
}

#[test]
fn schedule_matches_paper_shape() {
    let l = fig2();
    let m = machine();
    let sched = paper_schedule(&l, &m);
    verify(&l, &m, &sched).unwrap();
    assert_eq!(sched.ii(), 1);
    // "The schedule is partitioned into 14 pipestages."
    assert_eq!(sched.stages(), 14);
    // The II equals the MII (saturated adder/multiplier: 2 ops on 2 units).
    assert_eq!(mii(&l, &m).unwrap().mii, 1);
    // Cluster assignment as in Figure 4.
    for (name, cluster) in [
        ("L1", ClusterId::LEFT),
        ("L2", ClusterId::LEFT),
        ("M3", ClusterId::LEFT),
        ("A4", ClusterId::LEFT),
        ("M5", ClusterId::RIGHT),
        ("A6", ClusterId::RIGHT),
        ("S7", ClusterId::RIGHT),
    ] {
        assert_eq!(sched.cluster(op(&l, name), &m), cluster, "{name}");
    }
}

#[test]
fn table2_lifetimes() {
    let l = fig2();
    let m = machine();
    let sched = paper_schedule(&l, &m);
    let lts = lifetimes(&l, &m, &sched).unwrap();
    let lt = |name: &str| lts.iter().find(|lt| lt.op == op(&l, name)).unwrap();

    // Table 2: start/end/lifetime of every loop variant.
    assert_eq!((lt("L1").start, lt("L1").end, lt("L1").len()), (0, 13, 13));
    assert_eq!((lt("L2").start, lt("L2").end, lt("L2").len()), (0, 7, 7));
    assert_eq!((lt("M3").start, lt("M3").end, lt("M3").len()), (1, 7, 6));
    assert_eq!((lt("A4").start, lt("A4").end, lt("A4").len()), (4, 10, 6));
    assert_eq!((lt("M5").start, lt("M5").end, lt("M5").len()), (7, 13, 6));
    assert_eq!((lt("A6").start, lt("A6").end, lt("A6").len()), (10, 14, 4));

    // "The total register requirements of this loop schedule are the sum
    // of lifetimes of all the values ... at least 42 registers."
    let total: u32 = lts.iter().map(|lt| lt.len()).sum();
    assert_eq!(total, 42);
    assert_eq!(max_live(&lts, sched.ii()), 42);
    let alloc = allocate_unified(&lts, sched.ii());
    assert_eq!(alloc.regs, 42);
}

#[test]
fn table3_classification_before_swapping() {
    let l = fig2();
    let m = machine();
    let sched = paper_schedule(&l, &m);
    let lts = lifetimes(&l, &m, &sched).unwrap();
    let classes = classify(&l, &m, &sched, &lts);
    let class_of = |name: &str| {
        let i = lts.iter().position(|lt| lt.op == op(&l, name)).unwrap();
        classes[i]
    };

    // Table 3: L1 global; L2, M3 left-only; A4, M5, A6 right-only.
    assert_eq!(class_of("L1"), ValueClass::Global);
    assert_eq!(class_of("L2"), ValueClass::Only(ClusterId::LEFT));
    assert_eq!(class_of("M3"), ValueClass::Only(ClusterId::LEFT));
    assert_eq!(class_of("A4"), ValueClass::Only(ClusterId::RIGHT));
    assert_eq!(class_of("M5"), ValueClass::Only(ClusterId::RIGHT));
    assert_eq!(class_of("A6"), ValueClass::Only(ClusterId::RIGHT));

    // "13 global registers, 13 left-only registers and 16 right-only
    // registers ... the 'right' cluster has to be able to allocate 29
    // registers (13 global + 16 local)."
    let p = DualPressure::new(&lts, &classes, sched.ii());
    assert_eq!(p.global, 13);
    assert_eq!(p.left, 13);
    assert_eq!(p.right, 16);
    assert_eq!(p.left_total, 26);
    assert_eq!(p.right_total, 29);

    let alloc = allocate_dual(&lts, &classes, sched.ii());
    assert_eq!(alloc.regs, 29);
}

#[test]
fn table4_classification_after_swapping() {
    let l = fig2();
    let m = machine();
    let mut sched = paper_schedule(&l, &m);

    // The paper swaps A4 and A6 (both adds, same kernel cycle).
    sched.swap_units(op(&l, "A4"), op(&l, "A6"));
    verify(&l, &m, &sched).unwrap();

    let lts = lifetimes(&l, &m, &sched).unwrap();
    let classes = classify(&l, &m, &sched, &lts);

    // Table 4: 19 left-only + 23 right-only, no globals; max cluster 23.
    let p = DualPressure::new(&lts, &classes, sched.ii());
    assert_eq!(p.global, 0);
    assert_eq!(p.left, 19);
    assert_eq!(p.right, 23);
    assert_eq!(p.left_total, 19);
    assert_eq!(p.right_total, 23);

    // "The new schedule requires ... a maximum of 23 registers in one
    // cluster."
    let alloc = allocate_dual(&lts, &classes, sched.ii());
    assert_eq!(alloc.regs, 23);
}

#[test]
fn greedy_swap_pass_matches_or_beats_the_paper() {
    let l = fig2();
    let m = machine();
    let mut sched = paper_schedule(&l, &m);
    let outcome = swap_pass(&l, &m, &mut sched).unwrap();
    assert_eq!(outcome.before, 29);
    assert!(
        outcome.after <= 23,
        "greedy swapping should find the paper's swap (or better), got {}",
        outcome.after
    );
    verify(&l, &m, &sched).unwrap();

    let lts = lifetimes(&l, &m, &sched).unwrap();
    let classes = classify(&l, &m, &sched, &lts);
    assert_eq!(requirement_bound(&lts, &classes, sched.ii()), outcome.after);
}

#[test]
fn pipelined_execution_matches_reference_in_all_models() {
    use ncdrf::vliw::{check_equivalence, Binding};
    let l = fig2();
    let m = machine();

    // Unified allocation on the paper's schedule.
    let sched = paper_schedule(&l, &m);
    let lts = lifetimes(&l, &m, &sched).unwrap();
    let uni = allocate_unified(&lts, sched.ii());
    check_equivalence(&l, &m, &sched, &Binding::unified(&lts, &uni), 50).unwrap();

    // Dual allocation before swapping.
    let classes = classify(&l, &m, &sched, &lts);
    let dual = allocate_dual(&lts, &classes, sched.ii());
    check_equivalence(&l, &m, &sched, &Binding::dual(&lts, &dual), 50).unwrap();

    // Dual allocation after the paper's swap.
    let mut swapped = paper_schedule(&l, &m);
    swapped.swap_units(op(&l, "A4"), op(&l, "A6"));
    let lts2 = lifetimes(&l, &m, &swapped).unwrap();
    let classes2 = classify(&l, &m, &swapped, &lts2);
    let dual2 = allocate_dual(&lts2, &classes2, swapped.ii());
    assert_eq!(dual2.regs, 23);
    check_equivalence(&l, &m, &swapped, &Binding::dual(&lts2, &dual2), 50).unwrap();
}
