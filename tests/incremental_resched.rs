//! The differential proof for incremental rescheduling: every grid cell
//! of every preset (fig6/7, fig8/9, Table 1, `extended`) produces
//! **byte-identical** report output and equal `CacheStats` whether the
//! spill descent reschedules through the incremental `SchedContext` path
//! (the default) or the reference full scheduler (`NCDRF_FULL_RESCHED=1`,
//! or `set_full_resched(Some(true))` at runtime) — and the final spill
//! code of both paths passes the `vliw` execution oracle.
//!
//! Also pinned here: the fallback contract. When a spill step's dirty
//! closure grows to cover the whole loop (the common case on real
//! corpus loops, whose spill stores/reloads share the memory port group
//! with every load and store), the incremental path degrades to exactly
//! the full-reschedule result, reusing nothing.
//!
//! The rescheduling mode is process-global, so this suite serialises
//! its tests behind a mutex and runs under `RUST_TEST_THREADS=1` in CI
//! (the `resched-identity` job).

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::spill::set_full_resched;
use ncdrf::{default_points, Model, Render, ReportFormat, Sweep, SweepReport, TABLE1_POINTS};
use std::sync::Mutex;

/// Serialises tests that flip the process-global rescheduling mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once under the reference full-reschedule path and once under
/// the incremental path, restoring the environment-driven default
/// afterwards, and returns `(full, incremental)`.
fn under_both_modes<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_full_resched(Some(true));
    let full = f();
    set_full_resched(Some(false));
    let incremental = f();
    set_full_resched(None);
    (full, incremental)
}

/// The corpus slice the golden fixtures pin.
fn corpus() -> Corpus {
    Corpus::small().take(12)
}

fn fig67_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .clustered_latencies([3, 6])
        .models(Model::finite())
        .points(default_points())
        .run_sequential()
        .unwrap()
}

fn fig89_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .budgets([64, 48, 32, 16])
        .run_sequential()
        .unwrap()
}

fn table1_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
        .models([Model::Unified])
        .points(TABLE1_POINTS)
        .run_sequential()
        .unwrap()
}

fn extended_report(corpus: &Corpus) -> SweepReport {
    ncdrf::preset_sweep(corpus, "extended")
        .unwrap()
        .run_sequential()
        .unwrap()
}

/// Asserts a preset's report is bit-identical across the two modes:
/// the full structured report (every cell, every counter), the rendered
/// JSON and text bytes, and the `CacheStats` roll-up.
fn assert_preset_identical(name: &str, report: impl FnMut() -> SweepReport) {
    let (full, incremental) = under_both_modes(report);
    assert_eq!(
        full.scheduling, incremental.scheduling,
        "{name}: CacheStats must match across rescheduling modes"
    );
    assert_eq!(
        full, incremental,
        "{name}: structured report must match across rescheduling modes"
    );
    assert_eq!(
        full.render(ReportFormat::Json),
        incremental.render(ReportFormat::Json),
        "{name}: JSON bytes must match across rescheduling modes"
    );
    assert_eq!(
        full.render(ReportFormat::Text),
        incremental.render(ReportFormat::Text),
        "{name}: text bytes must match across rescheduling modes"
    );
}

#[test]
fn fig67_grid_is_bit_identical_across_modes() {
    let c = corpus();
    assert_preset_identical("fig67", || fig67_report(&c));
}

#[test]
fn fig89_grid_is_bit_identical_across_modes() {
    let c = corpus();
    assert_preset_identical("fig89", || fig89_report(&c));
}

#[test]
fn table1_grid_is_bit_identical_across_modes() {
    let c = corpus();
    assert_preset_identical("table1", || table1_report(&c));
}

#[test]
fn extended_grid_is_bit_identical_across_modes() {
    let c = corpus();
    assert_preset_identical("extended", || extended_report(&c));
}

/// The final spill code of both modes is identical per (loop, budget)
/// cell and *executes* equivalently: the `vliw` end-to-end oracle checks
/// the incremental path's rewritten loops against the sequential
/// reference under a unified binding.
#[test]
fn final_spill_code_matches_and_executes_equivalently() {
    use ncdrf::regalloc::{allocate_unified, lifetimes};
    use ncdrf::spill::{requirement_unified, spill_until_fits, SpillOptions};
    use ncdrf::vliw::{check_equivalence, Binding};

    let machine = Machine::clustered(6, 1);
    let opts = SpillOptions::default();
    let mut spilled_cells = 0usize;
    for l in Corpus::small().take(12).iter() {
        for budget in [24, 12, 8] {
            let (full, incremental) = under_both_modes(|| {
                spill_until_fits(l, &machine, budget, &mut requirement_unified, opts).unwrap()
            });
            assert_eq!(full, incremental, "{} @{budget}", l.name());
            if incremental.spilled.is_empty() {
                continue;
            }
            spilled_cells += 1;
            let r = &incremental;
            let lts = lifetimes(&r.l, &machine, &r.sched).unwrap();
            let uni = allocate_unified(&lts, r.sched.ii());
            check_equivalence(&r.l, &machine, &r.sched, &Binding::unified(&lts, &uni), 16)
                .unwrap_or_else(|e| panic!("{} @{budget}: {e}", l.name()));
            assert!(r.l.ops().len() > l.ops().len(), "spilled cell must grow");
        }
    }
    assert!(
        spilled_cells > 0,
        "the equivalence oracle must actually see spilled loops"
    );
}

/// Session-level continuation (trajectory checkpoints, resumes and the
/// per-budget escalation fallback) is also mode-independent: the same
/// evaluations and the same `CacheStats` counters come out of a session
/// ladder under either path.
#[test]
fn session_ladder_and_cache_stats_are_mode_independent() {
    use ncdrf::{PipelineOptions, Session};

    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let run = || {
        let session = Session::new(machine.clone()).options(opts);
        let mut results = Vec::new();
        for l in Corpus::small().take(10).iter() {
            for model in Model::all() {
                for budget in [64, 32, 16, 4] {
                    results.push(session.evaluate(l, model, budget).unwrap());
                }
            }
        }
        (results, session.cache_stats())
    };
    let ((full_results, full_stats), (inc_results, inc_stats)) = under_both_modes(run);
    assert_eq!(full_results, inc_results);
    assert_eq!(full_stats, inc_stats);
    assert!(inc_stats.spill_steps > 0, "the ladder must actually spill");
}

/// The fallback contract, pinned at the scheduler level: a spill rewrite
/// of a fully-connected chain dirties every op (the spill store and
/// reloads share the memory port group with the loads/stores, and the
/// chain's flow edges connect the rest), so the incremental entry point
/// reuses **zero** placements and returns exactly the full-reschedule
/// result.
#[test]
fn whole_loop_dirty_set_degrades_to_full_reschedule() {
    use ncdrf::ddg::{LoopBuilder, ValueRef, Weight};
    use ncdrf::sched::{modulo_schedule_with, SchedContext, SchedulerOptions};
    use ncdrf::spill::spill_value;

    // An 8-op chain: load -> muls -> store, every op reachable from
    // every other through flow edges.
    let mut b = LoopBuilder::new("chain8");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let ld = b.load("L", x, 0);
    let mut prev = ld.now();
    for i in 0..6 {
        let m = b.mul(format!("M{i}"), prev, ValueRef::Const(1.5));
        prev = m.now();
    }
    b.store("S", z, 0, prev);
    let l = b.finish(Weight::default()).unwrap();

    let machine = Machine::clustered(6, 1);
    let opts = SchedulerOptions::default();
    let mut ctx = SchedContext::new();
    let first = ctx.schedule(&l, &machine, opts).unwrap();
    assert_eq!(first, modulo_schedule_with(&l, &machine, opts).unwrap());

    // Spill the load's value: the rewrite appends a spill store and
    // reloads, patching every consumer of the load.
    let victim = l.find_op("L").unwrap();
    let (rewritten, _reloads, stats) = spill_value(&l, victim).unwrap();
    assert!(stats.stores_added > 0 && stats.loads_added > 0);

    let got = ctx
        .reschedule_extended(&rewritten, &machine, opts, l.ops().len())
        .unwrap();
    let want = modulo_schedule_with(&rewritten, &machine, opts).unwrap();
    assert_eq!(
        got, want,
        "whole-loop dirty set must degrade to the exact full-reschedule result"
    );
    assert_eq!(
        ctx.last_reused_ops(),
        0,
        "nothing is clean when the closure covers the loop"
    );
    assert!(ctx.last_clean_mask().is_none());
}

/// The converse of the fallback test: on a loop with a genuinely
/// separable component (a pure-ALU self-recurrence disjoint from the
/// memory side in both edges and functional-unit groups), the
/// incremental path really does reuse placements — and still matches
/// the reference bit-for-bit.
#[test]
fn separable_component_is_reused_and_still_identical() {
    use ncdrf::ddg::{LoopBuilder, ValueRef, Weight};
    use ncdrf::sched::{modulo_schedule_with, SchedContext, SchedulerOptions};

    let build = |extra: bool| {
        let mut b = LoopBuilder::new("separable");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        b.store("S", z, 0, ld.now());
        let a = b.reserve_add("ACC");
        b.bind(a, [ValueRef::Const(1.0), a.prev(1)]);
        if extra {
            let x2 = b.array_in("x2");
            let z2 = b.array_out("z2");
            let ld2 = b.load("L2", x2, 0);
            b.store("S2", z2, 0, ld2.now());
        }
        b.finish(Weight::default()).unwrap()
    };
    let base = build(false);
    let extended = build(true);

    let machine = Machine::clustered(3, 1);
    let opts = SchedulerOptions::default();
    let mut ctx = SchedContext::new();
    ctx.schedule(&base, &machine, opts).unwrap();
    let got = ctx
        .reschedule_extended(&extended, &machine, opts, base.ops().len())
        .unwrap();
    assert_eq!(
        got,
        modulo_schedule_with(&extended, &machine, opts).unwrap()
    );
    assert!(
        ctx.last_reused_ops() >= 1,
        "the ALU recurrence must stay clean and be reused"
    );
    let mask = ctx.last_clean_mask().expect("merged attempt served this");
    let acc = extended.find_op("ACC").unwrap();
    assert!(mask[acc.index()], "ACC is outside the dirty closure");
}
