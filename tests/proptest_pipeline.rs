//! Property-based tests: for arbitrary generated loops the pipeline's
//! invariants must hold — schedules verify, allocations are conflict-free
//! and at least MaxLive, dual never beats MaxLive bounds, swap never
//! increases the requirement estimate, execution matches the reference.

use ncdrf::corpus::{generate, GenConfig};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, max_live, verify_dual, verify_unified,
};
use ncdrf::sched::{mii, modulo_schedule, verify};
use ncdrf::swap::swap_pass;
use ncdrf::vliw::{check_equivalence, Binding};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (2usize..10, 1usize..4, 0.0f64..0.4, 0.0f64..0.9, 1u32..3).prop_map(
        |(arith, loads, rec, chain, dist)| GenConfig {
            min_arith: arith,
            max_arith: arith + 6,
            min_loads: loads,
            max_loads: loads + 2,
            recurrence_prob: rec,
            chain_bias: chain,
            max_recurrence_dist: dist,
            ..GenConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_and_allocation_invariants(seed in 0u64..10_000, cfg in arb_config(), lat in prop_oneof![Just(3u32), Just(6u32)]) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(lat, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();

        // The II respects its lower bound and the schedule verifies.
        let info = mii(&l, &machine).unwrap();
        prop_assert!(sched.ii() >= info.mii);
        verify(&l, &machine, &sched).unwrap();

        // Unified allocation: conflict-free, >= MaxLive.
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let uni = allocate_unified(&lts, sched.ii());
        prop_assert!(uni.regs >= max_live(&lts, sched.ii()));
        prop_assert!(verify_unified(&lts, sched.ii(), &uni).is_ok());

        // Dual allocation: conflict-free, bounded by the unified size,
        // and at least the per-subfile MaxLive bound.
        let classes = classify(&l, &machine, &sched, &lts);
        let dual = allocate_dual(&lts, &classes, sched.ii());
        prop_assert!(verify_dual(&lts, sched.ii(), &dual).is_ok());
        prop_assert!(dual.regs <= uni.regs);
        prop_assert!(dual.regs >= dual.pressure.requirement_bound());
    }

    #[test]
    fn swap_is_sound_and_never_hurts(seed in 0u64..10_000, cfg in arb_config()) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(3, 1);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass(&l, &machine, &mut sched).unwrap();
        prop_assert!(out.after <= out.before);
        verify(&l, &machine, &sched).unwrap();
    }

    #[test]
    fn execution_matches_reference(seed in 0u64..5_000, cfg in arb_config()) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();

        let uni = allocate_unified(&lts, sched.ii());
        check_equivalence(&l, &machine, &sched, &Binding::unified(&lts, &uni), 10)
            .map_err(|e| TestCaseError::fail(format!("unified: {e}")))?;

        let classes = classify(&l, &machine, &sched, &lts);
        let dual = allocate_dual(&lts, &classes, sched.ii());
        check_equivalence(&l, &machine, &sched, &Binding::dual(&lts, &dual), 10)
            .map_err(|e| TestCaseError::fail(format!("dual: {e}")))?;
    }

    #[test]
    fn multi_cluster_generalisation_agrees_with_dual(seed in 0u64..4_000, cfg in arb_config()) {
        use ncdrf::regalloc::{allocate_multi, classify_multi, verify_multi};
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();

        let classes = classify(&l, &machine, &sched, &lts);
        let dual = allocate_dual(&lts, &classes, sched.ii());
        let sets = classify_multi(&l, &machine, &sched, &lts);
        let multi = allocate_multi(&lts, &sets, sched.ii(), 2);

        // On two clusters the general allocator is the paper's dual one.
        prop_assert_eq!(dual.regs, multi.regs);
        prop_assert!(verify_multi(&lts, sched.ii(), &multi).is_ok());

        // And the k-cluster pipelined execution is semantically correct.
        check_equivalence(&l, &machine, &sched, &Binding::multi(&lts, &multi, 2), 8)
            .map_err(|e| TestCaseError::fail(format!("multi: {e}")))?;
    }

    #[test]
    fn spiller_converges_and_accounts(seed in 0u64..3_000, budget in 8u32..48) {
        use ncdrf::spill::{requirement_unified, spill_until_fits, SpillOptions};
        let cfg = GenConfig::default();
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(6, 1);
        let r = spill_until_fits(&l, &machine, budget, &mut requirement_unified, SpillOptions::default()).unwrap();
        // The spiller terminates and reports honestly: within budget when
        // it fits, above budget only when every value is already spilled
        // (tiny budgets can sit below a loop's in-flight floor).
        if r.fits {
            prop_assert!(r.regs <= budget);
        } else {
            prop_assert!(r.regs > budget);
            prop_assert!(!r.spilled.is_empty());
        }
        prop_assert_eq!(r.l.memory_ops(), l.memory_ops() + r.added_mem_ops());
        verify(&r.l, &machine, &r.sched).unwrap();
    }
}
