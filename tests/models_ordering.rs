//! Corpus-wide ordering invariants between the four models: the central
//! claim of the paper is Partitioned <= Unified (requirement-wise), with
//! Swapped improving on Partitioned in the aggregate.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{analyze, Model, PipelineOptions};

#[test]
fn partitioned_never_needs_more_than_unified() {
    let opts = PipelineOptions::default();
    for lat in [3, 6] {
        let machine = Machine::clustered(lat, 1);
        for l in Corpus::small().take(80).iter() {
            let uni = analyze(l, &machine, Model::Unified, &opts).unwrap();
            let part = analyze(l, &machine, Model::Partitioned, &opts).unwrap();
            assert!(
                part.regs <= uni.regs,
                "{} (L{lat}): partitioned {} > unified {}",
                l.name(),
                part.regs,
                uni.regs
            );
        }
    }
}

#[test]
fn partitioning_improves_a_substantial_fraction() {
    // Figure 6's gap: partitioning strictly reduces the requirement for
    // many loops (those with cluster-local traffic).
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let corpus = Corpus::small();
    let mut improved = 0;
    let mut total = 0;
    for l in corpus.iter() {
        let uni = analyze(l, &machine, Model::Unified, &opts).unwrap();
        let part = analyze(l, &machine, Model::Partitioned, &opts).unwrap();
        total += 1;
        improved += usize::from(part.regs < uni.regs);
    }
    assert!(
        improved * 2 > total,
        "partitioning should help most loops ({improved}/{total})"
    );
}

#[test]
fn swapping_helps_in_aggregate() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let corpus = Corpus::small();
    let mut part_sum = 0u64;
    let mut swap_sum = 0u64;
    for l in corpus.iter() {
        part_sum += analyze(l, &machine, Model::Partitioned, &opts).unwrap().regs as u64;
        swap_sum += analyze(l, &machine, Model::Swapped, &opts).unwrap().regs as u64;
    }
    assert!(
        swap_sum <= part_sum,
        "swapping should not hurt in aggregate ({swap_sum} vs {part_sum})"
    );
    assert!(
        swap_sum < part_sum,
        "swapping should strictly help somewhere ({swap_sum} vs {part_sum})"
    );
}

#[test]
fn latency_increases_register_pressure() {
    // §3.1/Figure 6: higher-latency units need more registers.
    let opts = PipelineOptions::default();
    let m3 = Machine::clustered(3, 1);
    let m6 = Machine::clustered(6, 1);
    let corpus = Corpus::small().take(60);
    let sum = |machine: &Machine| -> u64 {
        corpus
            .iter()
            .map(|l| analyze(l, machine, Model::Unified, &opts).unwrap().regs as u64)
            .sum()
    };
    assert!(sum(&m6) > sum(&m3));
}

#[test]
fn dual_pressure_bounds_are_consistent() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(3, 1);
    for l in Corpus::small().take(60).iter() {
        let a = analyze(l, &machine, Model::Partitioned, &opts).unwrap();
        let p = a.pressure.unwrap();
        // Subfile totals dominate their parts and bound the allocation.
        assert!(p.left_total >= p.global.max(p.left));
        assert!(p.right_total >= p.global.max(p.right));
        assert!(a.regs >= p.left_total.max(p.right_total));
    }
}
