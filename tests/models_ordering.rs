//! Corpus-wide ordering invariants between the four models: the central
//! claim of the paper is Partitioned <= Unified (requirement-wise), with
//! Swapped improving on Partitioned in the aggregate. Driven through
//! `Session` so each loop schedules once per machine.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{Model, Session};

#[test]
fn partitioned_never_needs_more_than_unified() {
    for lat in [3, 6] {
        let session = Session::new(Machine::clustered(lat, 1));
        for l in Corpus::small().take(80).iter() {
            let uni = session.analyze(l, Model::Unified).unwrap();
            let part = session.analyze(l, Model::Partitioned).unwrap();
            assert!(
                part.regs <= uni.regs,
                "{} (L{lat}): partitioned {} > unified {}",
                l.name(),
                part.regs,
                uni.regs
            );
        }
    }
}

#[test]
fn partitioning_improves_a_substantial_fraction() {
    // Figure 6's gap: partitioning strictly reduces the requirement for
    // many loops (those with cluster-local traffic).
    let session = Session::new(Machine::clustered(6, 1));
    let corpus = Corpus::small();
    let mut improved = 0;
    let mut total = 0;
    for l in corpus.iter() {
        let uni = session.analyze(l, Model::Unified).unwrap();
        let part = session.analyze(l, Model::Partitioned).unwrap();
        total += 1;
        improved += usize::from(part.regs < uni.regs);
    }
    assert!(
        improved * 2 > total,
        "partitioning should help most loops ({improved}/{total})"
    );
}

#[test]
fn swapping_helps_in_aggregate() {
    let session = Session::new(Machine::clustered(6, 1));
    let corpus = Corpus::small();
    let mut part_sum = 0u64;
    let mut swap_sum = 0u64;
    for l in corpus.iter() {
        part_sum += session.analyze(l, Model::Partitioned).unwrap().regs as u64;
        swap_sum += session.analyze(l, Model::Swapped).unwrap().regs as u64;
    }
    assert!(
        swap_sum <= part_sum,
        "swapping should not hurt in aggregate ({swap_sum} vs {part_sum})"
    );
    assert!(
        swap_sum < part_sum,
        "swapping should strictly help somewhere ({swap_sum} vs {part_sum})"
    );
    // Both models shared one scheduling run per loop.
    assert_eq!(session.cache_stats().misses, corpus.len() as u64);
}

#[test]
fn latency_increases_register_pressure() {
    // §3.1/Figure 6: higher-latency units need more registers.
    let corpus = Corpus::small().take(60);
    let sum = |machine: Machine| -> u64 {
        let session = Session::new(machine);
        corpus
            .iter()
            .map(|l| session.analyze(l, Model::Unified).unwrap().regs as u64)
            .sum()
    };
    assert!(sum(Machine::clustered(6, 1)) > sum(Machine::clustered(3, 1)));
}

#[test]
fn dual_pressure_bounds_are_consistent() {
    let session = Session::new(Machine::clustered(3, 1));
    for l in Corpus::small().take(60).iter() {
        let a = session.analyze(l, Model::Partitioned).unwrap();
        let p = a.pressure.unwrap();
        // Subfile totals dominate their parts and bound the allocation.
        assert!(p.left_total >= p.global.max(p.left));
        assert!(p.right_total >= p.global.max(p.right));
        assert!(a.regs >= p.left_total.max(p.right_total));
    }
}
