//! The interleaving model checker, applied to the real pool + farm
//! protocols — and to seeded mutations that each class of bug must be
//! caught on: a TOCTOU double-count, an AB/BA lock-order inversion, a
//! cell-dropping expiry path and an unsynchronized shared write.

use model::CxKind;
use ncdrf_analyze::scenarios::{farm_lease_scenario, pool_scenario, FarmProbes};
use ncdrf_analyze::sync::{name_mutex, thread, Mutex, TracedCell};
use ncdrf_analyze::{check, model};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn config() -> model::Config {
    model::Config::default()
}

#[test]
fn pool_results_are_exact_under_every_interleaving() {
    let report = check(&config(), pool_scenario(2, 3, None));
    assert!(
        report.exploration.complete,
        "the schedule space must be exhausted"
    );
    assert!(
        report.exploration.schedules > 1,
        "a 2-worker pool has real scheduling freedom"
    );
    if let Some(cx) = &report.exploration.counterexample {
        panic!("pool counterexample: {:?}\n{:#?}", cx.kind, cx.trace.events);
    }
    assert_eq!(
        report.analysis.races().count(),
        0,
        "pool slot writes are join-ordered: {:?}",
        report.analysis.races().collect::<Vec<_>>()
    );
    assert!(report.analysis.lock_cycles().is_empty());
}

#[test]
fn pool_panic_isolation_holds_under_every_interleaving() {
    let report = check(&config(), pool_scenario(2, 3, Some(1)));
    assert!(report.exploration.complete);
    if let Some(cx) = &report.exploration.counterexample {
        panic!("pool-panic counterexample: {:?}", cx.kind);
    }
    assert_eq!(report.analysis.races().count(), 0);
}

#[test]
fn farm_lease_protocol_holds_under_every_interleaving() {
    // Two workers + ticker + root is too many interleavings to exhaust
    // raw, but every protocol corner here (expiry, re-lease, duplicate
    // late delivery) needs at most two preemptions, so a bounded
    // exploration still reaches them all — and stays fast.
    let config = model::Config {
        preemption_bound: Some(2),
        ..model::Config::default()
    };
    let probes = Arc::new(FarmProbes::default());
    let report = check(&config, farm_lease_scenario(Arc::clone(&probes)));
    assert!(report.exploration.complete);
    assert!(report.exploration.schedules > 1);
    if let Some(cx) = &report.exploration.counterexample {
        panic!("farm counterexample: {:?}\n{:#?}", cx.kind, cx.trace.events);
    }
    assert_eq!(
        report.analysis.races().count(),
        0,
        "farm state is lock-protected: {:?}",
        report.analysis.races().collect::<Vec<_>>()
    );
    assert!(report.analysis.lock_cycles().is_empty());
    // The exploration must actually have driven the interesting
    // corners: some schedule expired the worker's lease, and some
    // schedule delivered the same cell twice (late delivery after
    // expiry + re-lease) without double-counting.
    assert!(
        probes.schedules_with_expiry.load(Ordering::SeqCst) > 0,
        "no schedule exercised lease expiry"
    );
    assert!(
        probes.schedules_with_duplicates.load(Ordering::SeqCst) > 0,
        "no schedule exercised duplicate delivery"
    );
}

/// The seeded double-count: membership check and counter update in two
/// separate critical sections. Some interleaving lets both threads see
/// the cell as fresh and count it twice — the checker must find it.
#[test]
fn seeded_toctou_double_count_is_caught() {
    struct Ledger {
        counted: Mutex<BTreeSet<u64>>,
        total: Mutex<u64>,
    }
    fn buggy_absorb(ledger: &Ledger, cell: u64) {
        let fresh = !ledger.counted.lock().contains(&cell); // CS 1
        if fresh {
            ledger.counted.lock().insert(cell); // CS 2 — too late
            *ledger.total.lock() += 1;
        }
    }
    let report = check(&config(), || {
        let ledger = Arc::new(Ledger {
            counted: Mutex::new(BTreeSet::new()),
            total: Mutex::new(0),
        });
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || buggy_absorb(&ledger, 7))
            })
            .collect();
        for w in workers {
            w.join().expect("ledger worker");
        }
        assert_eq!(*ledger.total.lock(), 1, "cell 7 counted exactly once");
    });
    let cx = report
        .exploration
        .counterexample
        .expect("the double-count interleaving must be found");
    match cx.kind {
        CxKind::Panic { ref message, .. } => {
            assert!(
                message.contains("counted exactly once"),
                "unexpected panic: {message}"
            );
        }
        other => panic!("expected a panic counterexample, got {other:?}"),
    }
}

/// The seeded lock-order inversion: two threads nest the same pair of
/// named locks in opposite orders. The explorer must both surface the
/// deadlock schedule and report the cycle from the schedules that
/// completed.
#[test]
fn seeded_lock_order_inversion_is_caught() {
    struct Pair {
        a: Mutex<u32>,
        b: Mutex<u32>,
    }
    let report = check(&config(), || {
        let pair = Arc::new(Pair {
            a: Mutex::new(0),
            b: Mutex::new(0),
        });
        name_mutex(&pair.a, "seeded.lock.a");
        name_mutex(&pair.b, "seeded.lock.b");
        let forward = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let _a = pair.a.lock();
                let _b = pair.b.lock();
            })
        };
        let backward = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let _b = pair.b.lock();
                let _a = pair.a.lock();
            })
        };
        let _ = forward.join();
        let _ = backward.join();
    });
    let cx = report
        .exploration
        .counterexample
        .expect("the AB/BA deadlock must be found");
    // The two lock holders are stuck on each other's lock; the root is
    // stuck joining them, so it shows up in the blocked set too.
    assert!(
        matches!(cx.kind, CxKind::Deadlock { ref blocked } if blocked.len() >= 2),
        "expected a deadlock, got {:?}",
        cx.kind
    );
    assert_eq!(
        report.analysis.lock_cycles(),
        vec![vec!["seeded.lock.a".to_owned(), "seeded.lock.b".to_owned()]],
        "the completed schedules expose the inverted nesting"
    );
}

/// The seeded lost cell: an expiry path that requeues only the first
/// cell of an expired lease. The drain loop's convergence bound turns
/// the lost cell into an assertion counterexample.
#[test]
fn seeded_cell_dropping_expiry_is_caught() {
    struct MiniFarm {
        pending: Mutex<VecDeque<u64>>,
        resolved: Mutex<BTreeSet<u64>>,
    }
    let report = check(&config(), || {
        let farm = Arc::new(MiniFarm {
            pending: Mutex::new(VecDeque::from([0, 1])),
            resolved: Mutex::new(BTreeSet::new()),
        });
        // A worker claims both cells and dies without delivering.
        let dead = {
            let farm = Arc::clone(&farm);
            thread::spawn(move || {
                let mut pending = farm.pending.lock();
                let claimed: Vec<u64> = pending.drain(..).collect();
                claimed
            })
        };
        let claimed = dead.join().expect("claiming worker");
        // Buggy expiry: requeues only the first cell of the dead lease.
        if let Some(&first) = claimed.first() {
            farm.pending.lock().push_front(first);
        }
        // Drain: claim + deliver until pending is empty.
        loop {
            let next = farm.pending.lock().pop_front();
            match next {
                Some(cell) => {
                    farm.resolved.lock().insert(cell);
                }
                None => break,
            }
        }
        assert_eq!(
            farm.resolved.lock().len(),
            2,
            "every claimed cell must be requeued and resolved"
        );
    });
    let cx = report
        .exploration
        .counterexample
        .expect("the lost cell must be found");
    assert!(
        matches!(cx.kind, CxKind::Panic { ref message, .. }
            if message.contains("requeued and resolved")),
        "expected the lost-cell assertion, got {:?}",
        cx.kind
    );
}

/// The race detector: two threads write one annotated cell without any
/// lock between them. No schedule crashes — the storage is atomic — but
/// the happens-before analysis must flag the unordered pair.
#[test]
fn seeded_unsynchronized_writes_raise_race_candidates() {
    let report = check(&config(), || {
        let cell = Arc::new(TracedCell::new("seeded.cell", 0));
        let writers: Vec<_> = (1..=2)
            .map(|v| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.store(v))
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        assert!(cell.load() > 0);
    });
    assert!(
        report.exploration.counterexample.is_none(),
        "atomic storage never crashes"
    );
    let races: Vec<_> = report.analysis.races().collect();
    assert!(
        races.iter().any(|r| r.first == "seeded.cell" && r.on_write),
        "the unordered write pair must be flagged, got {races:?}"
    );
}
