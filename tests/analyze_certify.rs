//! The offline certification drivers, run the same two ways the CLI
//! exposes: the golden fixtures must certify clean (in both resched
//! modes), and a freshly produced artifact directory must certify clean
//! until a cell is corrupted — at which point the corruption must be
//! rejected *by cell coordinates*, not just by exit code.

use ncdrf::corpus::Corpus;
use ncdrf::{Render, ReportFormat};
use ncdrf_analyze::certify::{certify_artifact_dir, certify_golden};
use ncdrf_analyze::emit::{json_array, json_string, JsonObject};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// All seven golden fixtures certify clean — under the default
/// (incremental) rescheduling path and under the forced reference
/// full-reschedule path. One test, because the resched toggle is
/// process-wide.
#[test]
fn all_seven_golden_fixtures_certify_clean_in_both_resched_modes() {
    let golden = workspace_root().join("tests/golden");
    for full_resched in [None, Some(true)] {
        ncdrf::spill::set_full_resched(full_resched);
        let checks = certify_golden(&golden);
        assert_eq!(checks.len(), 7, "{checks:?}");
        for check in &checks {
            assert!(
                check.fault.is_none(),
                "golden `{}` failed certification (full_resched={full_resched:?}): {:?}",
                check.fixture,
                check.fault
            );
        }
    }
    ncdrf::spill::set_full_resched(None);
}

/// A freshly produced shard set certifies clean; corrupting one cell's
/// claimed register requirement in place is rejected with the cell's
/// loop and machine named.
#[test]
fn artifact_dir_certification_locates_a_corrupted_cell() {
    let dir = std::env::temp_dir().join(format!("ncdrf-certify-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let corpus = Corpus::small().take(4);
    let sweep = ncdrf::preset_sweep(&corpus, "fig67").expect("preset");
    for index in 0..2 {
        let shard = sweep.shard_with_faults(index, 2, &[]).expect("shard runs");
        ncdrf::write_artifact(
            dir.join(format!("shard-{index}.json")),
            &shard.render(ReportFormat::Json),
        )
        .expect("write artifact");
    }

    let checks = certify_artifact_dir(&dir).expect("dir scans");
    assert_eq!(checks.len(), 2);
    assert!(
        checks.iter().all(|c| c.faults.is_empty()),
        "honest artifacts must certify: {checks:?}"
    );

    // Corrupt the first claimed register requirement in shard 1.
    let victim = dir.join("shard-1.json");
    let json = std::fs::read_to_string(&victim).expect("read artifact");
    let at = json.find("\"regs\":").expect("a regs field") + "\"regs\":".len();
    let digits: String = json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let claimed: u32 = digits.parse().expect("regs digits");
    let corrupt = format!(
        "{}{}{}",
        &json[..at],
        claimed + 1,
        &json[at + digits.len()..]
    );
    assert!(
        ncdrf::parse_sweep_shard(&corrupt).is_ok(),
        "the corruption must survive parsing to reach certification"
    );
    std::fs::write(&victim, corrupt).expect("write corrupted artifact");

    let checks = certify_artifact_dir(&dir).expect("dir scans");
    let bad: Vec<_> = checks.iter().filter(|c| !c.faults.is_empty()).collect();
    assert_eq!(bad.len(), 1, "{checks:?}");
    assert!(bad[0].path.ends_with("shard-1.json"));
    let fault = &bad[0].faults[0];
    assert!(!fault.loop_name.is_empty(), "{fault:?}");
    assert!(!fault.machine.is_empty(), "{fault:?}");
    assert!(fault.detail.contains("disagrees"), "{fault:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The `--json` emitter's output parses back through the vendored
/// `serde_json` with every integer landing on the exact-integer path —
/// the contract that lets CI and farm tooling consume CLI results.
#[test]
fn emitted_json_round_trips_through_the_vendored_parser_exactly() {
    let mut fault = JsonObject::new();
    fault.integer("task", u128::from(u64::MAX));
    fault.string("detail", "cell 3 (loop `liv-loop7\\2` on C2L3):\n\"drift\"");
    let mut o = JsonObject::new();
    o.boolean("clean", false);
    o.raw("faults", &json_array([fault.finish()]));
    o.raw(
        "names",
        &json_array(["fig67.json", "extended.txt"].map(json_string)),
    );
    let rendered = o.finish();

    let v = serde_json::from_str(&rendered).expect("emitted JSON parses");
    assert_eq!(v.get("clean").and_then(|c| c.as_bool()), Some(false));
    let faults = v.get("faults").and_then(|f| f.as_array()).expect("faults");
    // u64::MAX survives exactly: no float path on either side.
    assert_eq!(
        faults[0].get("task").and_then(|t| t.as_u64()),
        Some(u64::MAX)
    );
    assert_eq!(
        faults[0].get("detail").and_then(|d| d.as_str()),
        Some("cell 3 (loop `liv-loop7\\2` on C2L3):\n\"drift\"")
    );
    let names = v.get("names").and_then(|n| n.as_array()).expect("names");
    assert_eq!(names[0].as_str(), Some("fig67.json"));
}
