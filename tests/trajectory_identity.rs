//! The differential proof for spill-trajectory continuation: evaluation
//! served from the session's cached trajectory (checkpoint hits, resumed
//! descents, per-budget fallbacks) must be **bit-identical** to the
//! uncached from-scratch pipeline for every `(machine, loop, model,
//! budget)` cell of the Figure 8/9 grid — and the continued spill's
//! rewritten code must *execute* equivalently, which the `vliw`
//! end-to-end oracle checks against the sequential reference.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{evaluate, Model, PipelineOptions, Session, Sweep, SweepShard};

/// The fig8/9 budgets (64, 32) extended into a descending ladder so the
/// differential grid exercises checkpoint hits *and* resumed descents.
const LADDER: [u32; 4] = [64, 48, 32, 16];

/// Every cell of the (two-latency × four-model × ladder) grid: cached
/// evaluation equals fresh evaluation, field for field. Budgets descend,
/// so each cell past a pair's first spilling budget is served by
/// continuation — exactly the paths the sweep executor takes.
#[test]
fn fig89_grid_cells_are_bit_identical_seeded_vs_fresh() {
    let opts = PipelineOptions::default();
    let mut reused = 0u64;
    for lat in [3, 6] {
        let machine = Machine::clustered(lat, 1);
        let session = Session::new(machine.clone()).options(opts);
        for l in Corpus::small().take(20).iter() {
            for model in Model::all() {
                for budget in LADDER {
                    let cached = session.evaluate(l, model, budget).unwrap();
                    let fresh = evaluate(l, &machine, model, budget, &opts).unwrap();
                    assert_eq!(
                        cached,
                        fresh,
                        "{} under {model:?} @{budget} at L{lat}",
                        l.name()
                    );
                }
            }
        }
        let stats = session.cache_stats();
        reused += stats.traj_hits + stats.traj_resumes;
    }
    // Pressure is latency-dependent (L3 barely spills on this slice);
    // what matters is that the grid as a whole took the continuation
    // paths, not just fast paths.
    assert!(reused > 0, "the ladder must actually exercise continuation");
}

/// Ascending budget order must serve the very same results (continuation
/// is order-independent; only the hit/resume attribution shifts).
#[test]
fn budget_order_does_not_change_results() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let down = Session::new(machine.clone()).options(opts);
    let up = Session::new(machine).options(opts);
    for l in Corpus::small().take(12).iter() {
        for model in Model::all() {
            let d: Vec<_> = LADDER
                .iter()
                .map(|&b| down.evaluate(l, model, b).unwrap())
                .collect();
            let mut u: Vec<_> = LADDER
                .iter()
                .rev()
                .map(|&b| up.evaluate(l, model, b).unwrap())
                .collect();
            u.reverse();
            assert_eq!(d, u, "{} under {model:?}", l.name());
        }
    }
}

/// The multi-budget ladder sweep: pooled, sequential and sharded+merged
/// execution all agree bit-for-bit — including the new trajectory
/// counters — and the whole ladder computes strictly fewer spill steps
/// than evaluating each budget from scratch (counter-asserted, the
/// acceptance criterion).
#[test]
fn ladder_sweep_is_deterministic_and_spills_less_than_from_scratch() {
    let corpus = Corpus::small().take(16);
    let sweep = Sweep::new(&corpus)
        .clustered_latencies([6])
        .models(Model::all())
        .budgets(LADDER)
        .workers(4);

    let seq = sweep.run_sequential().unwrap();
    let par = sweep.run().unwrap();
    assert_eq!(par, seq, "pooled ladder must match the sequential ladder");

    let shards: Vec<SweepShard> = (0..3)
        .map(|i| sweep.shard(i, 3))
        .collect::<Result<_, _>>()
        .unwrap();
    let merged = SweepShard::merge(&shards).unwrap();
    assert!(merged.is_complete());
    assert_eq!(
        merged.report, seq,
        "sharded ladder must merge bit-identically (budgets stay grouped \
         per (machine, loop) cell, so shard partitioning is untouched)"
    );

    // The baseline: each budget evaluated in its own session, i.e. every
    // budget respills from zero. `spill_steps` counts exactly the spill
    // work, so the comparison is counter-based, not wall-clock-based.
    let from_scratch: u64 = LADDER
        .iter()
        .map(|&b| {
            Sweep::new(&corpus)
                .clustered_latencies([6])
                .models(Model::all())
                .budget(b)
                .run_sequential()
                .unwrap()
                .scheduling
                .spill_steps
        })
        .sum();
    assert!(
        seq.scheduling.traj_hits + seq.scheduling.traj_resumes > 0,
        "the ladder must exercise continuation"
    );
    assert!(
        seq.scheduling.spill_steps < from_scratch,
        "continuation must compute fewer steps: ladder {} vs from-scratch {}",
        seq.scheduling.spill_steps,
        from_scratch
    );
}

/// The continued spill's rewritten code *executes* correctly: for every
/// budget the continued result equals the fresh result, and both
/// rewritten loops run through the cycle-accurate executor bit-identically
/// to the sequential reference — under a unified and a dual binding.
#[test]
fn continued_spill_code_executes_equivalently_to_fresh() {
    use ncdrf::regalloc::{allocate_dual, allocate_unified, classify, lifetimes};
    use ncdrf::sched::modulo_schedule;
    use ncdrf::spill::{
        requirement_unified, spill_until_fits_seeded, SpillOptions, SpillTrajectory,
    };
    use ncdrf::vliw::{check_equivalence, Binding};

    let machine = Machine::clustered(6, 1);
    let opts = SpillOptions::default();
    let mut spilled_cells = 0usize;
    for l in Corpus::small().take(12).iter() {
        let base = modulo_schedule(l, &machine).unwrap();
        let mut traj =
            SpillTrajectory::from_base(l, &machine, base.clone(), &mut requirement_unified, opts)
                .unwrap();
        for budget in [24, 12, 8] {
            let (continued, _) = traj
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            let fresh = spill_until_fits_seeded(
                l,
                &machine,
                base.clone(),
                budget,
                &mut requirement_unified,
                opts,
            )
            .unwrap();
            assert_eq!(continued, fresh, "{} @{budget}", l.name());
            if continued.spilled.is_empty() {
                continue;
            }
            spilled_cells += 1;
            for r in [&continued, &fresh] {
                let lts = lifetimes(&r.l, &machine, &r.sched).unwrap();
                let uni = allocate_unified(&lts, r.sched.ii());
                check_equivalence(&r.l, &machine, &r.sched, &Binding::unified(&lts, &uni), 16)
                    .unwrap_or_else(|e| panic!("{} @{budget} unified: {e}", l.name()));
                let classes = classify(&r.l, &machine, &r.sched, &lts);
                let dual = allocate_dual(&lts, &classes, r.sched.ii());
                check_equivalence(&r.l, &machine, &r.sched, &Binding::dual(&lts, &dual), 16)
                    .unwrap_or_else(|e| panic!("{} @{budget} dual: {e}", l.name()));
            }
        }
    }
    assert!(
        spilled_cells > 0,
        "the equivalence oracle must actually see spilled loops"
    );
}

/// Session-level identity for the *swapped* model specifically: its
/// requirement function mutates the schedule (the swap pass runs inside
/// requirement evaluation), which is the subtlest path through the
/// trajectory — the checkpointed schedule must be the post-swap one.
#[test]
fn swapped_model_continuation_matches_fresh_across_a_deep_ladder() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone()).options(opts);
    for l in Corpus::small().take(10).iter() {
        for budget in [32, 10, 6, 4] {
            let cached = session.evaluate(l, Model::Swapped, budget).unwrap();
            let fresh = evaluate(l, &machine, Model::Swapped, budget, &opts).unwrap();
            assert_eq!(cached, fresh, "{} swapped @{budget}", l.name());
        }
    }
}
