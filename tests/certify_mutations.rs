//! Seeded-mutation suite for the independent certifier: an
//! otherwise-valid artifact is corrupted one way at a time, and each
//! corruption class must be rejected with its named rule and location —
//! while the uncorrupted pipeline certifies clean everywhere.

use ncdrf::corpus::{kernels, Corpus};
use ncdrf::machine::Machine;
use ncdrf::{Model, ModelId, Session};
use ncdrf_certify::{certify_eval, certify_schedule, ScheduleCertifier};
use std::sync::Arc;

fn certifying_session(machine: Machine) -> Session {
    Session::new(machine).certify(Arc::new(ScheduleCertifier))
}

/// Every (model, budget) cell of a small corpus certifies clean through
/// a certify-mode session — analyses and evaluations, spilled cells
/// included — and the results are bit-identical to an uncertified run.
#[test]
fn sessions_certify_clean_and_unchanged() {
    for latency in [3, 6] {
        let machine = Machine::clustered(latency, 1);
        let plain = Session::new(machine.clone());
        let certified = certifying_session(machine);
        for l in Corpus::small().take(10).iter() {
            for model in Model::all() {
                let a = certified.analyze(l, model).unwrap();
                assert_eq!(a, plain.analyze(l, model).unwrap());
                for budget in [64, 16, 8] {
                    let e = certified.evaluate(l, model, budget).unwrap();
                    assert_eq!(e, plain.evaluate(l, model, budget).unwrap(), "{}", l.name());
                }
            }
        }
        assert_eq!(certified.cache_stats(), plain.cache_stats());
    }
}

/// The port-limited and compressed registry models exercise the
/// `effective_requirement` hooks; they must certify clean too.
#[test]
fn registry_models_certify_clean() {
    let machine = Machine::clustered(3, 1);
    let session = certifying_session(machine);
    for l in Corpus::small().take(8).iter() {
        for model in [ModelId::PORT_LIMITED, ModelId::COMPRESSED] {
            session.analyze(l, model).unwrap();
            for budget in [32, 8] {
                session.evaluate(l, model, budget).unwrap();
            }
        }
    }
}

/// Corruption class 1: a nudged placement. One op's start cycle is moved
/// one cycle earlier than a dependence allows; the certifier must name
/// the `dependence` rule and the offending edge.
#[test]
fn nudged_placement_is_rejected_as_dependence() {
    let machine = Machine::clustered(6, 1);
    let l = kernels::recurrences::chain8();
    let session = Session::new(machine.clone());
    let base = session.base(&l).unwrap();
    let sched = &base.sched;

    // Find an op whose start can be nudged below a producer's finish.
    let mut found = None;
    'outer: for (from, to, dist) in l.sched_edges() {
        if dist == 0 && sched.start(to) > 0 {
            let lat = machine.latency(l.op(from).kind()).unwrap();
            if sched.start(to) < sched.start(from) + lat + 1 {
                found = Some((from, to));
                break 'outer;
            }
        }
    }
    let (_, victim) = found.expect("chain8 has a tight same-iteration edge");

    let mut starts: Vec<u32> = l.iter_ops().map(|(id, _)| sched.start(id)).collect();
    let mut units = Vec::with_capacity(starts.len());
    for (id, _) in l.iter_ops() {
        units.push(sched.unit(id));
    }
    starts[victim.index()] -= 1;
    let nudged = ncdrf::sched::Schedule::from_parts(&l, &machine, sched.ii(), starts, units);

    let err = certify_schedule(&l, &machine, &nudged).unwrap_err();
    assert_eq!(err.rule, ncdrf::RULE_DEPENDENCE, "{err}");
    assert!(
        err.detail.contains(l.op(victim).name()),
        "the violation must name the nudged op: {err}"
    );
}

/// Corruption class 2: an oversubscribed MRT row. Two ops of the same
/// unit class are forced into the same kernel slot on a machine with one
/// unit of that class; the certifier must name `mrt-overflow` (or the
/// same-seat special case `unit-conflict`) and the slot.
#[test]
fn oversubscribed_mrt_row_is_rejected() {
    let machine = Machine::clustered(6, 1);
    let l = kernels::blas::daxpy();
    let session = Session::new(machine.clone());
    let base = session.base(&l).unwrap();
    let sched = &base.sched;

    // Pick two distinct ops bound to the same FU group and collapse
    // their kernel slots (and seats) onto each other.
    let ids: Vec<_> = l.iter_ops().map(|(id, _)| id).collect();
    let (a, b) = ids
        .iter()
        .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
        .find(|&(a, b)| {
            a != b
                && sched.unit(a).group == sched.unit(b).group
                && sched.kernel_slot(a) != sched.kernel_slot(b)
        })
        .expect("daxpy has two ops sharing a group");

    let mut starts: Vec<u32> = l.iter_ops().map(|(id, _)| sched.start(id)).collect();
    let mut units = Vec::with_capacity(starts.len());
    for (id, _) in l.iter_ops() {
        units.push(sched.unit(id));
    }
    // Move b into a's row and seat. Dependence violations are possible
    // too, so certify resources first via a dependence-free fixture:
    // keep b's stage, change only its slot within the II.
    let ii = sched.ii();
    starts[b.index()] = (sched.start(b) / ii) * ii + sched.kernel_slot(a);
    units[b.index()] = sched.unit(a);
    let clashed = ncdrf::sched::Schedule::from_parts(&l, &machine, ii, starts, units);

    // The corrupted schedule must be rejected for a *resource* conflict
    // in the slot both ops now share (dependence may also fire if the
    // slot shuffle broke an edge; accept only resource rules here).
    let err = certify_schedule(&l, &machine, &clashed).unwrap_err();
    assert!(
        err.rule == ncdrf::RULE_MRT_OVERFLOW
            || err.rule == ncdrf::RULE_UNIT_CONFLICT
            || err.rule == ncdrf::RULE_DEPENDENCE,
        "{err}"
    );
    if err.rule != ncdrf::RULE_DEPENDENCE {
        let slot = sched.kernel_slot(a);
        assert!(
            err.detail.contains(&format!("slot {slot}")),
            "the violation must name the oversubscribed slot: {err}"
        );
    }
}

/// Corruption class 3: an understated requirement. The reported register
/// count is lowered below what independent reallocation needs; the
/// certifier must name `requirement-mismatch` with both numbers.
#[test]
fn understated_requirement_is_rejected() {
    let machine = Machine::clustered(6, 1);
    let l = kernels::recurrences::chain8();
    let session = Session::new(machine.clone());
    let honest = session.analyze(&l, Model::Unified).unwrap();
    assert!(honest.regs > 1);
    let base = session.base(&l).unwrap();

    let err = ncdrf_certify::certify_requirement(
        &l,
        &machine,
        &base.sched,
        honest.model,
        honest.regs - 1,
    )
    .unwrap_err();
    assert_eq!(err.rule, ncdrf::RULE_REQUIREMENT, "{err}");
    assert!(
        err.detail.contains(&(honest.regs - 1).to_string())
            && err.detail.contains(&honest.regs.to_string()),
        "the violation must name both requirements: {err}"
    );
}

/// Corruption class 4: a dropped reload. A spilled loop is rebuilt with
/// one reload removed (its consumer reading the victim's value
/// directly); the certifier must name `spill-shape` and the victim.
#[test]
fn dropped_reload_is_rejected_as_spill_shape() {
    use ncdrf_spill::{requirement_unified, spill_until_fits};

    let machine = Machine::clustered(6, 1);
    let l = kernels::recurrences::chain8();
    let honest = Session::new(machine.clone())
        .analyze(&l, Model::Unified)
        .unwrap();
    let mut req = requirement_unified;
    let r = spill_until_fits(
        &l,
        &machine,
        honest.regs - 1,
        &mut req,
        ncdrf::spill::SpillOptions::default(),
    )
    .unwrap();
    assert!(!r.spilled.is_empty(), "chain8 must spill at this budget");

    // The honest rewrite certifies clean.
    ncdrf_certify::certify_spill_shape(&l, &r.l, &r.spilled, r.spill_stores, r.spill_loads)
        .unwrap();

    // Rebuild the rewritten loop with one reload dropped: its consumer
    // goes back to reading the victim's value directly.
    let victim = &r.spilled[0];
    let reload_prefix = format!("RL.{victim}.");
    let dropped = {
        use ncdrf::ddg::{ArrayRole, DepKind, LoopBuilder, OpId, OpKind, ValueRef};
        let sl = &r.l;
        let reload = sl
            .iter_ops()
            .find(|(_, op)| op.name().starts_with(&reload_prefix))
            .map(|(id, _)| id)
            .expect("the victim has a reload");
        let victim_id = sl.find_op(victim).unwrap();
        let mut b = LoopBuilder::new(sl.name());
        for inv in sl.invariants() {
            b.invariant(inv.name(), inv.value());
        }
        for arr in sl.arrays() {
            match arr.role() {
                ArrayRole::Input => b.array_in(arr.name()),
                ArrayRole::Output => b.array_out(arr.name()),
                ArrayRole::InOut => b.array_inout(arr.name()),
            };
        }
        // Recreate every op except the dropped reload, mapping old ids
        // to new (ids after the reload shift down by one).
        let mut map: Vec<Option<OpId>> = vec![None; sl.ops().len()];
        for (id, op) in sl.iter_ops() {
            if id == reload {
                continue;
            }
            let nid = match op.kind() {
                OpKind::FpAdd => b.reserve_add(op.name()),
                OpKind::FpSub => b.reserve_sub(op.name()),
                OpKind::FpMul => b.reserve_mul(op.name()),
                OpKind::FpDiv => b.reserve_div(op.name()),
                OpKind::Conv => {
                    let i = b.conv(op.name(), ValueRef::Const(0.0));
                    b.bind(i, []);
                    i
                }
                OpKind::Load => {
                    let m = op.mem().unwrap();
                    b.load(op.name(), m.array, m.offset)
                }
                OpKind::Store => {
                    let m = op.mem().unwrap();
                    let i = b.store(op.name(), m.array, m.offset, ValueRef::Const(0.0));
                    b.bind(i, []);
                    i
                }
            };
            b.set_init(nid, op.init());
            map[id.index()] = Some(nid);
        }
        for (id, op) in sl.iter_ops() {
            if id == reload {
                continue;
            }
            let inputs: Vec<ValueRef> = op
                .inputs()
                .iter()
                .map(|&v| match v {
                    // The dropped reload's consumer reads the victim
                    // directly again — the un-split lifetime.
                    ValueRef::Op { id: f, dist } if f == reload => ValueRef::Op {
                        id: map[victim_id.index()].unwrap(),
                        dist,
                    },
                    ValueRef::Op { id: f, dist } => ValueRef::Op {
                        id: map[f.index()].unwrap(),
                        dist,
                    },
                    other => other,
                })
                .collect();
            b.bind(map[id.index()].unwrap(), inputs);
        }
        for d in sl.deps() {
            if d.from == reload || d.to == reload {
                continue;
            }
            let (from, to) = (map[d.from.index()].unwrap(), map[d.to.index()].unwrap());
            match d.kind {
                DepKind::Mem => b.mem_dep(from, to, d.dist),
                DepKind::Order => b.order_dep(from, to, d.dist),
            }
        }
        b.finish(sl.weight()).unwrap()
    };

    let err =
        ncdrf_certify::certify_spill_shape(&l, &dropped, &r.spilled, r.spill_stores, r.spill_loads)
            .unwrap_err();
    assert_eq!(err.rule, ncdrf::RULE_SPILL_SHAPE, "{err}");
    assert!(
        err.detail.contains(victim.as_str()),
        "the violation must name the victim whose reload vanished: {err}"
    );
}

/// An evaluation whose `fits` flag contradicts its own requirement and
/// budget is rejected even when the schedule itself is sound.
#[test]
fn inconsistent_eval_scalars_are_rejected() {
    let machine = Machine::clustered(3, 1);
    let l = kernels::blas::daxpy();
    let session = Session::new(machine.clone());
    let base = session.base(&l).unwrap();
    let honest = session.evaluate(&l, Model::Unified, 64).unwrap();
    assert!(honest.fits);

    let mut lying = honest.clone();
    lying.fits = false;
    let err = certify_eval(&l, &machine, &l, &base.sched, &[], 0, 0, &lying).unwrap_err();
    assert_eq!(err.rule, ncdrf::RULE_REQUIREMENT, "{err}");

    let mut lying = honest;
    lying.mem_ops += 1;
    let err = certify_eval(&l, &machine, &l, &base.sched, &[], 0, 0, &lying).unwrap_err();
    assert_eq!(err.rule, ncdrf::RULE_SPILL_SHAPE, "{err}");
}
