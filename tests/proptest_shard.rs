//! Property tests for the sharding subsystem: shard selection exactly
//! partitions the task grid, report merging is associative, shard
//! merging is permutation-invariant, and the JSON backend round-trips
//! reports losslessly.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{
    parse_sweep_report, shard_tasks, BudgetOutcome, CacheStats, Cumulative, DistributionCurve,
    Model, PartialSweep, PipelineError, Render, ReportFormat, Sweep, SweepReport, SweepShard,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// SplitMix64 step: cheap deterministic stream for building synthetic
/// reports out of one proptest-drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A finite, fraction-rich f64 (ratios produce long mantissas, which is
/// exactly what shortest-round-trip formatting must preserve).
fn mix_f64(state: &mut u64) -> f64 {
    let num = mix(state) >> 11;
    let den = (mix(state) >> 40) + 1;
    num as f64 / den as f64
}

fn synth_curve(state: &mut u64) -> DistributionCurve {
    let points: Vec<u32> = (0..(mix(state) % 3 + 1))
        .map(|_| (mix(state) % 256) as u32)
        .collect();
    let percents =
        |state: &mut u64| -> Vec<f64> { points.iter().map(|_| mix_f64(state)).collect() };
    DistributionCurve {
        config: format!("M{}", mix(state) % 10),
        model: Model::all()[(mix(state) % 4) as usize].into(),
        latency: (mix(state) % 9) as u32,
        static_dist: Cumulative {
            points: points.clone(),
            percent: percents(state),
        },
        dynamic_dist: Cumulative {
            points: points.clone(),
            percent: percents(state),
        },
    }
}

fn synth_outcome(state: &mut u64) -> BudgetOutcome {
    BudgetOutcome {
        config: format!("M{}", mix(state) % 10),
        model: Model::all()[(mix(state) % 4) as usize].into(),
        latency: (mix(state) % 9) as u32,
        registers: (mix(state) % 128) as u32,
        // Deliberately beyond 2^53: exact only if the JSON backend never
        // routes integers through f64.
        cycles: ((mix(state) as u128) << 64) | mix(state) as u128,
        accesses: ((mix(state) as u128) << 64) | mix(state) as u128,
        relative_performance: mix_f64(state),
        traffic_density: mix_f64(state),
        loops_spilled: (mix(state) % 100) as usize,
    }
}

fn synth_report(seed: u64) -> SweepReport {
    let state = &mut seed.clone();
    SweepReport {
        distributions: (0..mix(state) % 3).map(|_| synth_curve(state)).collect(),
        outcomes: (0..mix(state) % 3).map(|_| synth_outcome(state)).collect(),
        scheduling: CacheStats {
            hits: mix(state) % 1_000_000,
            misses: mix(state) % 1_000_000,
            traj_hits: mix(state) % 1_000_000,
            traj_resumes: mix(state) % 1_000_000,
            spill_steps: mix(state) % 1_000_000,
        },
    }
}

fn synth_partial(seed: u64) -> PartialSweep {
    let state = &mut (seed ^ 0xDEAD_BEEF).clone();
    PartialSweep {
        report: synth_report(seed),
        errors: (0..mix(state) % 3)
            .map(|i| PipelineError::panic(format!("loop{i}"), format!("boom {}", mix(state) % 50)))
            .collect(),
    }
}

/// Four shards of one small real sweep plus their merged reference,
/// computed once (scheduling real loops per proptest case would dominate
/// the suite's runtime).
fn shard_fixture() -> &'static (Vec<SweepShard>, PartialSweep) {
    static FIXTURE: OnceLock<(Vec<SweepShard>, PartialSweep)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::small().take(6);
        let sweep = Sweep::new(&corpus)
            .machines([Machine::clustered(3, 1), Machine::clustered(6, 1)])
            .models([Model::Unified, Model::Swapped])
            .points([16, 32])
            .budget(16);
        let shards: Vec<SweepShard> = (0..4).map(|i| sweep.shard(i, 4).unwrap()).collect();
        let reference = SweepShard::merge(&shards).unwrap();
        (shards, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // `shard(i, n)` for `i in 0..n` partitions the flattened task grid
    // exactly: no overlap, no gaps, every shard ascending.
    #[test]
    fn shard_tasks_partition_the_grid_exactly(total in 0usize..400, count in 1u32..12) {
        let mut seen = vec![0u8; total];
        for index in 0..count {
            let tasks: Vec<usize> = shard_tasks(total, index, count).collect();
            for w in tasks.windows(2) {
                prop_assert!(w[0] < w[1], "shard {index} not ascending");
            }
            for t in tasks {
                prop_assert!(t < total, "task {t} outside the grid");
                seen[t] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "grid not covered exactly once");
    }

    // `SweepReport::merge` is associative: grouping never changes the
    // merged report, bit for bit.
    #[test]
    fn report_merge_is_associative(sa in 0u64..1 << 62, sb in 0u64..1 << 62, sc in 0u64..1 << 62) {
        let (a, b, c) = (synth_report(sa), synth_report(sb), synth_report(sc));
        let left = SweepReport::merge([SweepReport::merge([a.clone(), b.clone()]), c.clone()]);
        let right = SweepReport::merge([a.clone(), SweepReport::merge([b.clone(), c.clone()])]);
        let flat = SweepReport::merge([a, b, c]);
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(&right, &flat);
    }

    // `PartialSweep::merge` is associative too, and never loses or
    // repeats errors or cache counters.
    #[test]
    fn partial_merge_is_associative_and_lossless(sa in 0u64..1 << 62, sb in 0u64..1 << 62, sc in 0u64..1 << 62) {
        let (a, b, c) = (synth_partial(sa), synth_partial(sb), synth_partial(sc));
        let counts = (
            a.errors.len() + b.errors.len() + c.errors.len(),
            a.report.scheduling.hits + b.report.scheduling.hits + c.report.scheduling.hits,
        );
        let left = PartialSweep::merge([PartialSweep::merge([a.clone(), b.clone()]), c.clone()]);
        let right = PartialSweep::merge([a.clone(), PartialSweep::merge([b.clone(), c.clone()])]);
        let flat = PartialSweep::merge([a, b, c]);
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(&right, &flat);
        prop_assert_eq!(flat.errors.len(), counts.0);
        prop_assert_eq!(flat.report.scheduling.hits, counts.1);
    }

    // The JSON backend round-trips reports losslessly:
    // `parse(render_json(report)) == report`, including cycle counters
    // beyond 2^53 and fraction-rich floats.
    #[test]
    fn report_json_round_trips(seed in 0u64..1 << 62) {
        let report = synth_report(seed);
        let json = report.render(ReportFormat::Json);
        let parsed = parse_sweep_report(&json).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &report);
        // And the re-rendered bytes are identical.
        prop_assert_eq!(parsed.render(ReportFormat::Json), json);
    }

    // `SweepShard::merge` is invariant under permutation of its input.
    #[test]
    fn shard_merge_is_permutation_invariant(seed in 0u64..1 << 62) {
        let (shards, reference) = shard_fixture();
        let mut permuted = shards.clone();
        let state = &mut seed.clone();
        for i in (1..permuted.len()).rev() {
            permuted.swap(i, (mix(state) % (i as u64 + 1)) as usize);
        }
        let merged = SweepShard::merge(&permuted)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&merged, reference);
    }
}
