//! Sharded sweep execution: `Sweep::shard` + `SweepShard::merge` must
//! reassemble the grid bit-identically to the sequential reference for
//! any shard count, in process and across a JSON round trip, and the
//! merge must reject overlapping / missing / incompatible shard sets by
//! name.

use ncdrf::corpus::{kernels, Corpus};
use ncdrf::machine::{FuClass, FuGroup, Machine};
use ncdrf::{
    parse_sweep_shard, ConfigError, Model, PipelineStage, Render, ReportFormat, Sweep, SweepShard,
};

fn grid_sweep(corpus: &Corpus) -> Sweep<'_> {
    Sweep::new(corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .points([8, 16, 32])
        .budgets([12, 32])
}

fn shards_of(sweep: &Sweep<'_>, count: u32) -> Vec<SweepShard> {
    (0..count).map(|i| sweep.shard(i, count).unwrap()).collect()
}

#[test]
fn merge_reassembles_bit_identically_for_many_shard_counts() {
    let corpus = Corpus::small().take(10);
    let sweep = grid_sweep(&corpus);
    let seq = sweep.run_sequential().unwrap();
    for count in [1, 2, 4, 7] {
        let shards = shards_of(&sweep, count);
        // Round-robin sharding spreads the grid: with more than one
        // shard, no shard holds the whole grid.
        let total: usize = shards.iter().map(SweepShard::cell_count).sum();
        assert_eq!(total, 2 * corpus.len(), "N={count}");
        if count > 1 {
            assert!(shards.iter().all(|s| s.cell_count() < 2 * corpus.len()));
        }
        let merged = SweepShard::merge(&shards).unwrap();
        assert!(merged.is_complete(), "N={count}");
        assert_eq!(merged.report, seq, "N={count}");
        // Bit-identity, not mere approximate equality: the serialized
        // bytes match too.
        assert_eq!(
            merged.report.render(ReportFormat::Json),
            seq.render(ReportFormat::Json),
            "N={count}"
        );
        // Schedule-cache counters partition across shards: every pair is
        // scheduled in exactly one shard.
        assert_eq!(merged.report.scheduling.misses, 2 * corpus.len() as u64);
    }
}

#[test]
fn merge_after_json_round_trip_is_still_bit_identical() {
    let corpus = Corpus::small().take(8);
    let sweep = grid_sweep(&corpus);
    let seq = sweep.run_sequential().unwrap();
    let parsed: Vec<SweepShard> = shards_of(&sweep, 4)
        .iter()
        .map(|s| {
            let json = s.render(ReportFormat::Json);
            let parsed = parse_sweep_shard(&json).unwrap();
            // A complete shard round-trips exactly (all-integer cells).
            assert_eq!(&parsed, s);
            parsed
        })
        .collect();
    let merged = SweepShard::merge(&parsed).unwrap();
    assert_eq!(merged.report, seq);
    assert_eq!(
        merged.report.render(ReportFormat::Json),
        seq.render(ReportFormat::Json)
    );
}

#[test]
fn merge_is_invariant_under_shard_order() {
    let corpus = Corpus::small().take(6);
    let sweep = grid_sweep(&corpus);
    let mut shards = shards_of(&sweep, 4);
    let reference = SweepShard::merge(&shards).unwrap();
    shards.reverse();
    assert_eq!(SweepShard::merge(&shards).unwrap(), reference);
    shards.swap(0, 2);
    assert_eq!(SweepShard::merge(&shards).unwrap(), reference);
}

fn config_of(err: &ncdrf::PipelineError) -> ConfigError {
    match &err.stage {
        PipelineStage::Config(c) => c.clone(),
        other => panic!("expected a config error, got {other}"),
    }
}

#[test]
fn invalid_shard_specs_are_named_config_errors() {
    let corpus = Corpus::small().take(4);
    let sweep = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(16);
    for (index, count) in [(0, 0), (3, 3), (7, 2)] {
        let err = sweep.shard(index, count).unwrap_err();
        assert!(err.is_config());
        assert_eq!(config_of(&err), ConfigError::InvalidShard { index, count });
        assert!(err.to_string().contains("invalid shard"), "{err}");
    }
    // Grid validation still precedes shard validation.
    let empty = Sweep::new(&corpus).budget(16).shard(0, 2).unwrap_err();
    assert_eq!(config_of(&empty), ConfigError::EmptyMachineGrid);
}

#[test]
fn merge_rejects_overlapping_missing_and_incompatible_shards() {
    let corpus = Corpus::small().take(5);
    let sweep = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(16);
    let shards = shards_of(&sweep, 3);

    // No shards at all.
    let err = SweepShard::merge(&[]).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::MissingShards);

    // A shard index absent.
    let err = SweepShard::merge(&shards[..2]).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::MissingShards);

    // The same shard twice.
    let doubled = vec![shards[0].clone(), shards[1].clone(), shards[1].clone()];
    let err = SweepShard::merge(&doubled).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::OverlappingShards);

    // Shards of a different grid (different budget set).
    let other = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(32);
    let mixed = vec![
        shards[0].clone(),
        shards[1].clone(),
        other.shard(2, 3).unwrap(),
    ];
    let err = SweepShard::merge(&mixed).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::IncompatibleShards);

    // Different shard counts.
    let recount = vec![shards[0].clone(), sweep.shard(1, 2).unwrap()];
    let err = SweepShard::merge(&recount).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::IncompatibleShards);

    // All messages name their condition.
    for (e, needle) in [
        (ConfigError::OverlappingShards, "same shard index"),
        (ConfigError::MissingShards, "cover the full grid"),
        (ConfigError::IncompatibleShards, "disagree about the grid"),
    ] {
        assert!(e.to_string().contains(needle), "{e}");
    }
}

/// A machine whose loops (and failures) spread over several shards must
/// contribute each failed pair exactly once and its cache counters
/// exactly once — the merged result equals `run_partial` on the whole
/// grid, errors included.
#[test]
fn split_machine_failures_and_stats_merge_without_double_counting() {
    // NOMUL fails every loop that multiplies; the corpus mixes failing
    // and passing loops so failures land in multiple shards.
    let no_mul = Machine::new(
        "NOMUL",
        vec![
            FuGroup::unified(FuClass::Adder, 3, 2),
            FuGroup::unified(FuClass::MemPort, 1, 2),
        ],
        1,
    )
    .unwrap();
    let corpus = Corpus::from_loops(
        "mixed",
        vec![
            kernels::blas::vscale(), // needs a multiplier → fails on NOMUL
            kernels::blas::vadd(),
            kernels::blas::dot(), // needs a multiplier → fails on NOMUL
            kernels::blas::vsum(),
        ],
    );
    let sweep = Sweep::new(&corpus)
        .machines([no_mul, Machine::clustered(3, 1)])
        .models([Model::Unified])
        .points([16, 64])
        .budget(16);

    let whole = sweep.run_partial();
    assert_eq!(whole.errors.len(), 2, "two failing pairs on NOMUL");

    for count in [2, 3] {
        let shards = shards_of(&sweep, count);
        // The failures really do land in more than one shard (tasks 0
        // and 2 differ mod 2 and mod 3... task 0 and 2: 0%2=0, 2%2=0 —
        // so check via counts instead of assuming).
        let failing_shards = shards.iter().filter(|s| s.failure_count() > 0).count();
        let merged = SweepShard::merge(&shards).unwrap();
        assert_eq!(merged.errors, whole.errors, "N={count}");
        assert_eq!(merged.report, whole.report, "N={count}");
        assert_eq!(
            merged.report.scheduling.misses, whole.report.scheduling.misses,
            "N={count}: cache counters summed once, not per shard"
        );
        // Exactly one outcome row for the machine whose cells were
        // split across shards — no duplicate aggregates.
        assert_eq!(merged.report.outcomes_for("C2L3", 16).len(), 1);
        if count == 3 {
            assert!(
                failing_shards >= 2,
                "tasks 0 and 2 land in different shards at N=3"
            );
        }
    }
}

#[test]
fn shard_summaries_render_in_every_format() {
    let corpus = Corpus::small().take(4);
    let sweep = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(16);
    let shard = sweep.shard(1, 2).unwrap();
    let text = shard.render(ReportFormat::Text);
    assert!(text.contains("shard 1/2"), "{text}");
    assert!(text.contains("1 machines × 4 loops"), "{text}");
    let csv = shard.render(ReportFormat::Csv);
    assert!(csv.starts_with("task,machine,loop,status\n"), "{csv}");
    assert_eq!(csv.lines().count(), 1 + shard.cell_count());
    let json = shard.render(ReportFormat::Json);
    assert!(json.contains("\"kind\":\"ncdrf-sweep-shard\""));
    // Malformed artifacts are rejected by name.
    assert!(parse_sweep_shard("{\"kind\":\"other\"}")
        .unwrap_err()
        .to_string()
        .contains("not a sweep shard"));
    assert!(parse_sweep_shard("{")
        .unwrap_err()
        .to_string()
        .contains("malformed report"));
}

/// Failed cells round-trip through JSON with their message intact: the
/// merged partial sweep renders identically even though the parsed
/// errors carry an opaque `Remote` stage.
#[test]
fn failures_survive_the_json_round_trip_verbatim() {
    let no_mul = Machine::new(
        "NOMUL",
        vec![
            FuGroup::unified(FuClass::Adder, 3, 2),
            FuGroup::unified(FuClass::MemPort, 1, 2),
        ],
        1,
    )
    .unwrap();
    let corpus = Corpus::from_loops("pair", vec![kernels::blas::vscale(), kernels::blas::vadd()]);
    let sweep = Sweep::new(&corpus)
        .machine(no_mul)
        .models([Model::Unified])
        .budget(16);
    let whole = sweep.run_partial();

    let shards: Vec<SweepShard> = shards_of(&sweep, 2)
        .iter()
        .map(|s| parse_sweep_shard(&s.render(ReportFormat::Json)).unwrap())
        .collect();
    let merged = SweepShard::merge(&shards).unwrap();
    assert_eq!(merged.report, whole.report);
    assert_eq!(merged.errors.len(), whole.errors.len());
    for (m, w) in merged.errors.iter().zip(&whole.errors) {
        assert!(matches!(m.stage, PipelineStage::Remote(_)));
        assert_eq!(m.to_string(), w.to_string(), "error text verbatim");
        assert_eq!(m.loop_name, w.loop_name);
    }
    assert_eq!(
        merged.render(ReportFormat::Json),
        whole.render(ReportFormat::Json),
        "rendered artifacts are byte-identical"
    );
}

/// A heal artifact is a *complement*: it may fill the cells of a shard
/// that was lost entirely — the merge that would otherwise report
/// `MissingShards` completes, bit-identically to the intact set.
#[test]
fn complement_heal_covers_a_lost_shard() {
    let corpus = Corpus::small().take(6);
    let sweep = grid_sweep(&corpus);
    let shards = shards_of(&sweep, 4);
    let reference = SweepShard::merge(&shards).unwrap();

    // Shard 1's artifact is lost; without a heal the merge is missing.
    let survivors = vec![shards[0].clone(), shards[2].clone(), shards[3].clone()];
    let err = SweepShard::merge(&survivors).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::MissingShards);

    // `unresolved` names exactly the lost shard's cells; the reissued
    // heal completes the merge bit-identically.
    let missing = SweepShard::unresolved(&survivors).unwrap();
    assert_eq!(missing, shards[1].tasks());
    let heal = sweep.reissue(&missing, &survivors).unwrap();
    let mut healed_set = survivors;
    healed_set.push(heal);
    let healed = SweepShard::merge(&healed_set).unwrap();
    assert!(healed.is_complete());
    assert_eq!(healed, reference);
    assert_eq!(
        healed.report.render(ReportFormat::Json),
        reference.report.render(ReportFormat::Json)
    );
}

/// A heal may only cover what a merge reported failed or missing: a
/// heal cell over a *healthy* cell — and two heal cells on one slot —
/// trip the overlap check.
#[test]
fn heal_artifacts_may_not_cover_healthy_cells() {
    let corpus = Corpus::small().take(5);
    let sweep = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(16);
    let shards = shards_of(&sweep, 2);
    assert!(SweepShard::unresolved(&shards).unwrap().is_empty());

    // Reissue a cell that is perfectly healthy in shard 0...
    let heal = sweep.reissue(&[0], &shards).unwrap();
    let mut set = shards.clone();
    set.push(heal.clone());
    let err = SweepShard::merge(&set).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::OverlappingShards);

    // ...and two heals for one slot are ambiguous, even next to a
    // faulted primary.
    let faulted: Vec<SweepShard> = (0..2)
        .map(|i| sweep.shard_with_faults(i, 2, &[0]).unwrap())
        .collect();
    let err = SweepShard::merge(&[
        faulted[0].clone(),
        faulted[1].clone(),
        heal.clone(),
        heal.clone(),
    ])
    .unwrap_err();
    assert_eq!(config_of(&err), ConfigError::OverlappingShards);

    // A single heal over the faulted cell is exactly right.
    let healed = SweepShard::merge(&[faulted[0].clone(), faulted[1].clone(), heal]).unwrap();
    assert!(healed.is_complete());
    assert_eq!(
        healed.report,
        SweepShard::merge(&shards).unwrap().report,
        "healed faulted set equals the unfaulted merge"
    );
}

/// Reissue rejects grids it cannot serve: cells outside the grid and
/// seeds from a different (non-resume-compatible) grid.
#[test]
fn reissue_validates_cells_and_seeds() {
    let corpus = Corpus::small().take(4);
    let sweep = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(16);
    let err = sweep.reissue(&[99], &[]).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::UnknownCell { task: 99 });
    assert!(err.to_string().contains("cell 99"), "{err}");

    // A seed from a different machine grid is not resume-compatible
    // (budget differences are fine — descents are budget-independent).
    let other_machines = Sweep::new(&corpus)
        .machine(Machine::clustered(6, 1))
        .models([Model::Unified])
        .budget(16);
    let foreign = other_machines.shard(0, 1).unwrap();
    let err = sweep.reissue(&[0], &[foreign]).unwrap_err();
    assert_eq!(config_of(&err), ConfigError::IncompatibleShards);
    let other_budget = Sweep::new(&corpus)
        .machine(Machine::clustered(3, 1))
        .models([Model::Unified])
        .budget(64);
    let budget_seed = other_budget.shard(0, 1).unwrap();
    assert!(sweep.reissue(&[0], &[budget_seed]).is_ok());
}

/// A v3 artifact naming only paper models differs from its v4 rendering
/// solely in the `version` member: rewriting it back to 3 must parse to
/// the same shard and merge byte-identically. This is the promise that
/// artifacts written before the model registry stay mergeable forever.
#[test]
fn v3_shard_artifacts_still_parse_and_merge_byte_identically() {
    let corpus = Corpus::small().take(6);
    let sweep = grid_sweep(&corpus);
    let seq = sweep.run_sequential().unwrap();
    let parsed: Vec<SweepShard> = shards_of(&sweep, 3)
        .iter()
        .map(|s| {
            let v4 = s.render(ReportFormat::Json);
            let v3 = v4.replace("\"version\":4", "\"version\":3");
            assert_ne!(v3, v4, "the artifact must carry the version member");
            let parsed = parse_sweep_shard(&v3).unwrap();
            assert_eq!(&parsed, s, "v3 parses to the same shard as v4");
            parsed
        })
        .collect();
    let merged = SweepShard::merge(&parsed).unwrap();
    assert_eq!(
        merged.report.render(ReportFormat::Json),
        seq.render(ReportFormat::Json)
    );
}

/// The v3 name table is frozen to the four paper models: a v3 artifact
/// can never smuggle in a post-registry model, and versions this build
/// does not know are refused outright rather than half-parsed.
#[test]
fn v3_naming_is_frozen_and_future_versions_are_refused() {
    let corpus = Corpus::small().take(2);
    let sweep = Sweep::new(&corpus)
        .clustered_latencies([3])
        .models([ncdrf::ModelId::PORT_LIMITED])
        .budget(16);
    let shard = sweep.shard(0, 1).unwrap();
    let v4 = shard.render(ReportFormat::Json);
    assert_eq!(parse_sweep_shard(&v4).as_ref(), Ok(&shard));

    let v3 = v4.replace("\"version\":4", "\"version\":3");
    let err = parse_sweep_shard(&v3).unwrap_err();
    assert!(
        err.to_string().contains("port-limited"),
        "the rejection names the unknown-under-v3 model: {err}"
    );

    let v5 = v4.replace("\"version\":4", "\"version\":5");
    let err = parse_sweep_shard(&v5).unwrap_err();
    assert!(
        err.to_string().contains("version 5"),
        "the rejection names the unsupported version: {err}"
    );
}
