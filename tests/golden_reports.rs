//! Golden-report tests: the rendered output of the paper's grids is
//! pinned byte-for-byte, so performance work (trajectory continuation,
//! executor changes, cache rewrites) can never silently move paper
//! numbers. Every pipeline stage is deterministic and the JSON backend
//! renders integers exactly and floats shortest-round-trip, so byte
//! equality is the right bar — across platforms too.
//!
//! The fixtures live in `tests/golden/` and cover the fig6/7, fig8/9 and
//! Table 1 grids on a fixed slice of the deterministic `small` corpus.
//! To regenerate after an *intentional* result change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and review the fixture diff like any other code change.

use ncdrf::corpus::Corpus;
use ncdrf::{default_points, Model, Render, ReportFormat, Sweep, SweepReport, TABLE1_POINTS};
use std::path::PathBuf;

/// The corpus slice the fixtures pin. Small enough to keep artifacts
/// reviewable, large enough that every model spills somewhere.
fn corpus() -> Corpus {
    Corpus::small().take(12)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `rendered` against the named fixture byte-for-byte, or
/// rewrites the fixture under `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture `{}` ({e}); run \
             `UPDATE_GOLDEN=1 cargo test --test golden_reports` and commit it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "`{name}` drifted from its golden fixture. If the change is an \
         intentional result change, regenerate with UPDATE_GOLDEN=1 and \
         review the diff; if not, a perf optimisation just moved paper \
         numbers."
    );
}

/// Figures 6/7: cumulative register-requirement distributions on the
/// clustered machines (finite models, no spilling).
fn fig67_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .clustered_latencies([3, 6])
        .models(Model::finite())
        .points(default_points())
        .run_sequential()
        .unwrap()
}

/// Figures 8/9: performance and traffic density under finite files —
/// the grid trajectory continuation rewires, pinned across a descending
/// budget ladder that includes the paper's 64/32 points.
fn fig89_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .budgets([64, 48, 32, 16])
        .run_sequential()
        .unwrap()
}

/// Table 1: allocatable percentages on the unified PxLy machines.
fn table1_report(corpus: &Corpus) -> SweepReport {
    Sweep::new(corpus)
        .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
        .models([Model::Unified])
        .points(TABLE1_POINTS)
        .run_sequential()
        .unwrap()
}

/// The `extended` preset: the registry's non-paper built-ins
/// (read-port-constrained and compressed register files) against the
/// unified baseline — pinned like the paper grids, so the new families'
/// numbers are as tamper-evident as the reproduction's.
fn extended_report(corpus: &Corpus) -> SweepReport {
    ncdrf::preset_sweep(corpus, "extended")
        .unwrap()
        .run_sequential()
        .unwrap()
}

#[test]
fn fig67_json_is_byte_identical_to_golden() {
    assert_golden(
        "fig67.json",
        &fig67_report(&corpus()).render(ReportFormat::Json),
    );
}

#[test]
fn fig89_json_is_byte_identical_to_golden() {
    assert_golden(
        "fig89.json",
        &fig89_report(&corpus()).render(ReportFormat::Json),
    );
}

#[test]
fn fig89_text_is_byte_identical_to_golden() {
    // The text table is what a human reads off — pin it too, so a
    // formatting regression can't hide behind value-identical JSON.
    assert_golden(
        "fig89.txt",
        &fig89_report(&corpus()).render(ReportFormat::Text),
    );
}

#[test]
fn table1_json_is_byte_identical_to_golden() {
    assert_golden(
        "table1.json",
        &table1_report(&corpus()).render(ReportFormat::Json),
    );
}

#[test]
fn table1_rows_text_is_byte_identical_to_golden() {
    assert_golden(
        "table1.txt",
        &table1_report(&corpus()).table1().render(ReportFormat::Text),
    );
}

/// The golden JSON also round-trips through the parser: the fixture is a
/// usable artifact, not just a checksum.
#[test]
fn golden_fig89_json_parses_back_to_the_report() {
    let report = fig89_report(&corpus());
    let parsed = ncdrf::parse_sweep_report(&report.render(ReportFormat::Json)).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn extended_json_is_byte_identical_to_golden() {
    assert_golden(
        "extended.json",
        &extended_report(&corpus()).render(ReportFormat::Json),
    );
}

#[test]
fn extended_text_is_byte_identical_to_golden() {
    assert_golden(
        "extended.txt",
        &extended_report(&corpus()).render(ReportFormat::Text),
    );
}

#[test]
fn golden_extended_json_parses_back_to_the_report() {
    let report = extended_report(&corpus());
    let parsed = ncdrf::parse_sweep_report(&report.render(ReportFormat::Json)).unwrap();
    assert_eq!(parsed, report);
}

/// The fixtures above run under the *incremental* rescheduling path by
/// default (set `NCDRF_FULL_RESCHED=1` to force the reference scheduler
/// process-wide). This test pins the other side: with the reference
/// full-reschedule path forced at runtime, every fixture is still
/// byte-identical — the golden files are mode-independent facts, and
/// `tests/incremental_resched.rs` proves the two paths agree cell by
/// cell.
#[test]
fn all_fixtures_are_byte_identical_under_the_forced_reference_path() {
    ncdrf::spill::set_full_resched(Some(true));
    let c = corpus();
    assert_golden("fig67.json", &fig67_report(&c).render(ReportFormat::Json));
    let fig89 = fig89_report(&c);
    assert_golden("fig89.json", &fig89.render(ReportFormat::Json));
    assert_golden("fig89.txt", &fig89.render(ReportFormat::Text));
    let table1 = table1_report(&c);
    assert_golden("table1.json", &table1.render(ReportFormat::Json));
    assert_golden("table1.txt", &table1.table1().render(ReportFormat::Text));
    let extended = extended_report(&c);
    assert_golden("extended.json", &extended.render(ReportFormat::Json));
    assert_golden("extended.txt", &extended.render(ReportFormat::Text));
    ncdrf::spill::set_full_resched(None);
}
