//! End-to-end farm run over real HTTP: boot the farm server, submit a
//! job with injected failures, let worker threads pull leases and
//! deliver artifacts over the wire, let the tick cadence heal the
//! failures — and assert the served report is **byte-identical** to
//! `Sweep::run_sequential`, counters included. Also: artifact GC after
//! completion, cache reload across a daemon restart, and the
//! out-of-band artifact-directory watcher.

// The end-to-end test drives the real daemon against the real wall
// clock on purpose; protocol-level tests use the injected Clock.
#![allow(clippy::disallowed_methods)]

use ncdrf::corpus::Corpus;
use ncdrf::{Render, ReportFormat};
use ncdrf_farm::{evaluate_lease, request, serve, Farm, FarmConfig, JobState, LeaseOffer};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SPEC: &str = r#"{"grid":"full","corpus":"small","take":3,"inject_fail":[0,3]}"#;

fn reference(loops: usize) -> String {
    let corpus = Corpus::small().take(loops);
    let sweep = ncdrf::preset_sweep(&corpus, "full").unwrap();
    let partial = ncdrf::PartialSweep {
        report: sweep.run_sequential().unwrap(),
        errors: Vec::new(),
    };
    partial.render(ReportFormat::Json)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncdrf-farm-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &std::path::Path) -> FarmConfig {
    FarmConfig {
        queue_cap: 4,
        max_cells: 1 << 16,
        lease_ms: 60_000,
        lease_cells: 2,
        artifact_dir: Some(dir.to_path_buf()),
        certify: false,
    }
}

/// A worker thread speaking the real wire protocol: claim over HTTP,
/// evaluate in-process, deliver over HTTP.
fn spawn_worker(addr: SocketAddr, stop: Arc<AtomicBool>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            let Ok((status, body)) = request(addr, "POST", "/leases", "e2e-worker") else {
                break;
            };
            if status != 200 {
                thread::sleep(Duration::from_millis(20));
                continue;
            }
            let offer = LeaseOffer::from_json(&body).expect("well-formed offer");
            let artifact = evaluate_lease(&offer, None).expect("leases evaluate");
            let path = format!("/leases/{}/artifact", offer.lease);
            let (status, reply) =
                request(addr, "POST", &path, &artifact.render(ReportFormat::Json))
                    .expect("delivery reaches the farm");
            assert!(
                status == 200 || status == 404,
                "delivery must succeed (or hit a completion-retired lease): HTTP {status}: {reply}"
            );
        }
    })
}

fn poll_complete(addr: SocketAddr, job: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{job}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"complete\"") {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job}` did not complete in time; last status: {body}"
        );
        thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn http_job_with_injected_failures_heals_to_sequential_bytes() {
    let dir = fresh_dir("main");
    let farm = Arc::new(Farm::new(config(&dir)));
    let server = serve(Arc::clone(&farm), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Tick loop (fast cadence so heal rounds run promptly) and two
    // workers racing for leases.
    let ticker = {
        let farm = Arc::clone(&farm);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                farm.tick(ncdrf_farm::now_millis());
                thread::sleep(Duration::from_millis(10));
            }
        })
    };
    let workers: Vec<_> = (0..2)
        .map(|_| spawn_worker(addr, Arc::clone(&stop)))
        .collect();

    // Submit over the wire.
    let (status, body) = request(addr, "POST", "/jobs", SPEC).unwrap();
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"job\":\"job-1\""), "{body}");
    assert!(body.contains("\"cells\":6"), "{body}");

    let status_body = poll_complete(addr, "job-1", Duration::from_secs(120));
    assert!(
        !status_body.contains("\"heal_rounds\":0"),
        "delivered-failed cells require at least one heal round: {status_body}"
    );

    // The served report is byte-identical to the sequential reference —
    // the injected failures healed without double-counting a counter.
    let (status, report) = request(addr, "GET", "/jobs/job-1/report", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(report, reference(3));

    // Farm-wide stats and the job listing agree.
    let (status, farm_body) = request(addr, "GET", "/farm", "").unwrap();
    assert_eq!(status, 200);
    assert!(farm_body.contains("\"jobs\":1"), "{farm_body}");
    assert!(farm_body.contains("\"unfinished\":0"), "{farm_body}");
    assert!(farm_body.contains("\"cached_grids\":1"), "{farm_body}");
    let (status, list) = request(addr, "GET", "/jobs", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        list.starts_with('[') && list.contains("\"job\":\"job-1\""),
        "{list}"
    );

    // Artifact GC keyed on the signature: the consolidated artifact
    // replaced every per-lease file.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n == "consolidated-job-1.json"),
        "consolidated artifact must persist: {names:?}"
    );
    assert!(
        names.iter().all(|n| !n.contains("lease")),
        "per-lease artifacts must be GC'd: {names:?}"
    );

    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    ticker.join().unwrap();
    server.shutdown();

    // A restarted daemon reloads the cache from the artifact directory:
    // the same submit completes instantly with the same bytes.
    let reborn = Farm::new(config(&dir));
    let receipt = reborn.submit(SPEC, 0).unwrap();
    assert_eq!(receipt.state, JobState::Complete, "cache survives restart");
    assert!(reborn.status(&receipt.job).unwrap().from_cache);
    assert_eq!(reborn.report(&receipt.job).unwrap(), reference(3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watcher_ingests_out_of_band_artifacts() {
    let dir = fresh_dir("watcher");
    let farm = Farm::new(config(&dir));
    let receipt = farm
        .submit(r#"{"grid":"full","corpus":"small","take":2}"#, 0)
        .unwrap();

    // The worker claims its leases but "delivers" by dropping artifact
    // files straight into the shared directory instead of calling the
    // API — the tick's watcher must ingest them.
    let mut n = 0;
    while let Some(offer) = farm.claim("oob", 1) {
        let artifact = evaluate_lease(&offer, None).unwrap();
        let path = dir.join(format!("oob-{n}.json"));
        ncdrf::write_artifact(&path, &artifact.render(ReportFormat::Json)).unwrap();
        n += 1;
    }
    assert!(n > 0);
    let tick = farm.tick(2);
    assert_eq!(tick.ingested, n, "every dropped artifact is ingested");
    assert_eq!(farm.status(&receipt.job).unwrap().state, JobState::Complete);
    assert_eq!(farm.report(&receipt.job).unwrap(), reference(2));

    let _ = std::fs::remove_dir_all(&dir);
}
