//! `Session` cache correctness: results derived from the cached base
//! schedule must be bit-identical to the uncached pipeline (fresh
//! `modulo_schedule` per call) across every hand-written kernel, and the
//! cache must actually hit.

use ncdrf::corpus::kernels;
use ncdrf::machine::Machine;
use ncdrf::sched::modulo_schedule;
use ncdrf::{analyze, evaluate, Model, PipelineOptions, Session};

#[test]
fn cached_analysis_is_bit_identical_across_all_kernels() {
    let opts = PipelineOptions::default();
    for lat in [3, 6] {
        let machine = Machine::clustered(lat, 1);
        let session = Session::new(machine.clone()).options(opts);
        for l in kernels::all() {
            for model in Model::all() {
                let cached = session.analyze(&l, model).unwrap();
                let fresh = analyze(&l, &machine, model, &opts).unwrap();
                assert_eq!(cached, fresh, "{} under {model:?} at L{lat}", l.name());
            }
        }
    }
}

#[test]
fn cached_evaluation_is_bit_identical_across_all_kernels() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone()).options(opts);
    for l in kernels::all() {
        for model in Model::all() {
            for budget in [16, 64] {
                let cached = session.evaluate(&l, model, budget).unwrap();
                let fresh = evaluate(&l, &machine, model, budget, &opts).unwrap();
                assert_eq!(cached, fresh, "{} under {model:?} @{budget}", l.name());
            }
        }
    }
}

#[test]
fn cache_identity_holds_with_non_default_scheduler_options() {
    use ncdrf::sched::{Priority, SchedulerOptions};
    let mut opts = PipelineOptions::default();
    opts.spill.scheduler = SchedulerOptions {
        priority: Priority::InputOrder,
        ..SchedulerOptions::default()
    };
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone()).options(opts);
    for l in kernels::all().into_iter().take(15) {
        for model in Model::all() {
            let cached = session.analyze(&l, model).unwrap();
            let fresh = analyze(&l, &machine, model, &opts).unwrap();
            assert_eq!(cached, fresh, "{} under {model:?}", l.name());
            let cached = session.evaluate(&l, model, 24).unwrap();
            let fresh = evaluate(&l, &machine, model, 24, &opts).unwrap();
            assert_eq!(cached, fresh, "{} under {model:?} @24", l.name());
        }
    }
}

#[test]
fn cached_base_schedule_matches_fresh_modulo_schedule() {
    let machine = Machine::clustered(3, 1);
    let session = Session::new(machine.clone());
    for l in kernels::all() {
        let base = session.base(&l).unwrap();
        let fresh = modulo_schedule(&l, &machine).unwrap();
        assert_eq!(base.sched, fresh, "{}", l.name());
    }
}

#[test]
fn repeated_swapped_analyses_pin_the_counters() {
    use ncdrf::CacheStats;
    let session = Session::new(Machine::clustered(6, 1));
    let l = kernels::livermore::hydro();

    // First swapped analysis: one scheduling run, no reuse yet.
    session.analyze(&l, Model::Swapped).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 0, misses: 1 });

    // Every repeated swapped analysis is served from the post-swap cache
    // and must count as a hit (it saves scheduling AND the swap pass);
    // before the fix these were invisible and reuse was under-reported.
    for round in 1..=3u64 {
        session.analyze(&l, Model::Swapped).unwrap();
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: round,
                misses: 1
            }
        );
    }

    // A swapped evaluation whose requirement fits the budget touches the
    // swapped cache once more — still one scheduling run total.
    session.evaluate(&l, Model::Swapped, 512).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 4, misses: 1 });
}

#[test]
fn schedule_cache_hits_across_models_and_budgets() {
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine);
    let loops = kernels::all();
    for l in &loops {
        for model in Model::all() {
            session.analyze(l, model).unwrap();
        }
    }
    let after_analysis = session.cache_stats();
    assert_eq!(
        after_analysis.misses,
        loops.len() as u64,
        "four-model analysis schedules each loop exactly once"
    );
    assert!(after_analysis.hits >= 2 * loops.len() as u64);

    for l in &loops {
        for model in Model::all() {
            for budget in [32, 64] {
                session.evaluate(l, model, budget).unwrap();
            }
        }
    }
    let after_eval = session.cache_stats();
    assert_eq!(
        after_eval.misses,
        loops.len() as u64,
        "eight budgeted evaluations add no scheduling runs"
    );
    assert!(after_eval.hits > after_analysis.hits);
}
