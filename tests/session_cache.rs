//! `Session` cache correctness: results derived from the cached base
//! schedule must be bit-identical to the uncached pipeline (fresh
//! `modulo_schedule` per call) across every hand-written kernel, and the
//! cache must actually hit.

use ncdrf::corpus::kernels;
use ncdrf::machine::Machine;
use ncdrf::sched::modulo_schedule;
use ncdrf::{analyze, evaluate, Model, PipelineOptions, Session};

#[test]
fn cached_analysis_is_bit_identical_across_all_kernels() {
    let opts = PipelineOptions::default();
    for lat in [3, 6] {
        let machine = Machine::clustered(lat, 1);
        let session = Session::new(machine.clone()).options(opts);
        for l in kernels::all() {
            for model in Model::all() {
                let cached = session.analyze(&l, model).unwrap();
                let fresh = analyze(&l, &machine, model, &opts).unwrap();
                assert_eq!(cached, fresh, "{} under {model:?} at L{lat}", l.name());
            }
        }
    }
}

#[test]
fn cached_evaluation_is_bit_identical_across_all_kernels() {
    let opts = PipelineOptions::default();
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone()).options(opts);
    for l in kernels::all() {
        for model in Model::all() {
            for budget in [16, 64] {
                let cached = session.evaluate(&l, model, budget).unwrap();
                let fresh = evaluate(&l, &machine, model, budget, &opts).unwrap();
                assert_eq!(cached, fresh, "{} under {model:?} @{budget}", l.name());
            }
        }
    }
}

#[test]
fn cache_identity_holds_with_non_default_scheduler_options() {
    use ncdrf::sched::{Priority, SchedulerOptions};
    let mut opts = PipelineOptions::default();
    opts.spill.scheduler = SchedulerOptions {
        priority: Priority::InputOrder,
        ..SchedulerOptions::default()
    };
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone()).options(opts);
    for l in kernels::all().into_iter().take(15) {
        for model in Model::all() {
            let cached = session.analyze(&l, model).unwrap();
            let fresh = analyze(&l, &machine, model, &opts).unwrap();
            assert_eq!(cached, fresh, "{} under {model:?}", l.name());
            let cached = session.evaluate(&l, model, 24).unwrap();
            let fresh = evaluate(&l, &machine, model, 24, &opts).unwrap();
            assert_eq!(cached, fresh, "{} under {model:?} @24", l.name());
        }
    }
}

#[test]
fn cached_base_schedule_matches_fresh_modulo_schedule() {
    let machine = Machine::clustered(3, 1);
    let session = Session::new(machine.clone());
    for l in kernels::all() {
        let base = session.base(&l).unwrap();
        let fresh = modulo_schedule(&l, &machine).unwrap();
        assert_eq!(base.sched, fresh, "{}", l.name());
    }
}

#[test]
fn repeated_swapped_analyses_pin_the_counters() {
    use ncdrf::CacheStats;
    let session = Session::new(Machine::clustered(6, 1));
    let l = kernels::livermore::hydro();

    // First swapped analysis: one scheduling run, no reuse yet.
    session.analyze(&l, Model::Swapped).unwrap();
    assert_eq!(
        session.cache_stats(),
        CacheStats {
            hits: 0,
            misses: 1,
            ..CacheStats::default()
        }
    );

    // Every repeated swapped analysis is served from the post-swap cache
    // and must count as a hit (it saves scheduling AND the swap pass);
    // before the fix these were invisible and reuse was under-reported.
    for round in 1..=3u64 {
        session.analyze(&l, Model::Swapped).unwrap();
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: round,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    // A swapped evaluation whose requirement fits the budget touches the
    // swapped cache once more — still one scheduling run total, and no
    // spill trajectory is ever built for a fitting budget.
    session.evaluate(&l, Model::Swapped, 512).unwrap();
    assert_eq!(
        session.cache_stats(),
        CacheStats {
            hits: 4,
            misses: 1,
            ..CacheStats::default()
        }
    );
}

/// The trajectory counters, pinned exactly: a three-rung descending
/// ladder on one spilling `(loop, model)` pair produces one creation
/// (neither hit nor resume), then — depending on where the checkpoints
/// land — hits and resumes that must sum to the ladder's remaining
/// rungs, with `spill_steps` equal to the deepest rung's spill count.
#[test]
fn trajectory_counters_are_pinned_for_a_descending_ladder() {
    use ncdrf::CacheStats;
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine.clone());
    let l = kernels::blas::axpby();
    let free = session.analyze(&l, Model::Unified).unwrap().regs;
    assert_eq!(session.cache_stats().misses, 1);

    // Budgets straddling the descent: free-1 forces spilling, 4 forces
    // a deep descent, free-1 again is a pure checkpoint hit.
    let top = session.evaluate(&l, Model::Unified, free - 1).unwrap();
    let stats = session.cache_stats();
    assert_eq!(
        (stats.traj_hits, stats.traj_resumes),
        (0, 0),
        "creation is neither a hit nor a resume"
    );
    assert_eq!(stats.spill_steps, top.spilled as u64);

    let deep = session.evaluate(&l, Model::Unified, 4).unwrap();
    let repeat = session.evaluate(&l, Model::Unified, free - 1).unwrap();
    assert_eq!(repeat, top);
    let stats = session.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: stats.hits,
            misses: 1,
            traj_hits: 1,
            traj_resumes: 1,
            spill_steps: deep.spilled as u64,
        },
        "deep rung resumes, repeated rung hits, steps never recompute"
    );
    // The uncached pipeline would have paid every rung from scratch.
    let from_scratch = (top.spilled + deep.spilled + top.spilled) as u64;
    assert!(stats.spill_steps < from_scratch);
}

#[test]
fn schedule_cache_hits_across_models_and_budgets() {
    let machine = Machine::clustered(6, 1);
    let session = Session::new(machine);
    let loops = kernels::all();
    for l in &loops {
        for model in Model::all() {
            session.analyze(l, model).unwrap();
        }
    }
    let after_analysis = session.cache_stats();
    assert_eq!(
        after_analysis.misses,
        loops.len() as u64,
        "four-model analysis schedules each loop exactly once"
    );
    assert!(after_analysis.hits >= 2 * loops.len() as u64);

    for l in &loops {
        for model in Model::all() {
            for budget in [32, 64] {
                session.evaluate(l, model, budget).unwrap();
            }
        }
    }
    let after_eval = session.cache_stats();
    assert_eq!(
        after_eval.misses,
        loops.len() as u64,
        "eight budgeted evaluations add no scheduling runs"
    );
    assert!(after_eval.hits > after_analysis.hits);
}
