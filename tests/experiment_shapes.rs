//! The paper's qualitative result shapes, checked on a reduced corpus:
//! who wins, in which direction, and where the models converge. Driven
//! through the `Sweep` API.

use ncdrf::corpus::Corpus;
use ncdrf::{Model, Sweep, TABLE1_POINTS};

fn corpus() -> Corpus {
    Corpus::small()
}

#[test]
fn table1_pressure_grows_with_latency_and_width() {
    let c = corpus().take(70);
    let rows = Sweep::new(&c)
        .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
        .models([Model::Unified])
        .points(TABLE1_POINTS)
        .run()
        .unwrap()
        .table1();
    assert_eq!(rows.len(), 4);
    let at32 = |name: &str| rows.iter().find(|r| r.config == name).unwrap().loops_within[1];
    // More latency -> fewer loops fit in 32 registers. (Width alone may
    // not hurt on a small corpus, but latency reliably does — the paper's
    // Table 1 diagonal.)
    assert!(at32("P1L3") >= at32("P1L6"));
    assert!(at32("P2L3") >= at32("P2L6"));
    assert!(at32("P1L3") >= at32("P2L6"));
}

#[test]
fn figures_6_7_model_ordering_holds_pointwise() {
    let points = [8u32, 16, 24, 32, 48, 64, 96, 128];
    let c = corpus();
    let report = Sweep::new(&c)
        .clustered_latencies([3, 6])
        .models(Model::finite())
        .points(points)
        .run()
        .unwrap();
    for lat in [3, 6] {
        let get = |m: Model| {
            report
                .distributions
                .iter()
                .find(|c| c.model == m && c.latency == lat)
                .unwrap()
        };
        let uni = get(Model::Unified);
        let part = get(Model::Partitioned);
        let swap = get(Model::Swapped);
        for (i, &point) in points.iter().enumerate() {
            // Partitioned dominates unified (its requirement is <=).
            assert!(
                part.static_dist.percent[i] >= uni.static_dist.percent[i],
                "static L{lat} at {point}"
            );
            assert!(
                part.dynamic_dist.percent[i] >= uni.dynamic_dist.percent[i],
                "dynamic L{lat} at {point}"
            );
            // Swapping only reduces requirements further (tolerance-free
            // in aggregate; tiny pointwise regressions are possible with
            // the exact allocator, so allow 2 percentage points).
            assert!(
                swap.static_dist.percent[i] + 2.0 >= part.static_dist.percent[i],
                "swap static L{lat} at {point}"
            );
        }
    }
}

#[test]
fn figure_8_shape_with_64_registers() {
    // With 64 registers the dual models run at (or very near) ideal
    // performance; unified trails at high latency.
    let c = corpus().take(70);
    let report = Sweep::new(&c)
        .clustered_latencies([6])
        .models(Model::all())
        .budget(64)
        .run()
        .unwrap();
    let perf = |m: Model| {
        report
            .outcomes
            .iter()
            .find(|o| o.model == m)
            .unwrap()
            .relative_performance
    };
    assert_eq!(perf(Model::Ideal), 1.0);
    assert!(perf(Model::Partitioned) >= perf(Model::Unified));
    assert!(perf(Model::Swapped) >= perf(Model::Unified));
    assert!(perf(Model::Partitioned) > 0.95, "dual ~ ideal at 64 regs");
}

#[test]
fn figure_8_shape_with_32_registers() {
    // With 32 registers at latency 6 the unified model loses noticeably;
    // the dual models hold up better.
    let c = corpus().take(70);
    let report = Sweep::new(&c)
        .clustered_latencies([6])
        .models(Model::all())
        .budget(32)
        .run()
        .unwrap();
    let get = |m: Model| report.outcomes.iter().find(|o| o.model == m).unwrap();
    assert!(
        get(Model::Partitioned).relative_performance >= get(Model::Unified).relative_performance
    );
    assert!(get(Model::Unified).loops_spilled >= get(Model::Partitioned).loops_spilled);
}

#[test]
fn figure_9_dual_models_reduce_traffic_density() {
    let c = corpus().take(70);
    let report = Sweep::new(&c)
        .clustered_latencies([3])
        .models(Model::all())
        .budget(32)
        .run()
        .unwrap();
    let density = |m: Model| {
        report
            .outcomes
            .iter()
            .find(|o| o.model == m)
            .unwrap()
            .traffic_density
    };
    // Less spill code -> lower density of memory traffic (L3/R32 panel;
    // the paper's exception is L6/R32 where all models converge).
    assert!(density(Model::Partitioned) <= density(Model::Unified) + 1e-9);
    assert!(density(Model::Swapped) <= density(Model::Unified) + 1e-9);
    // And nobody goes below the no-spill floor of the ideal model.
    assert!(density(Model::Partitioned) >= density(Model::Ideal) - 1e-9);
}

#[test]
fn grid_sweep_amortizes_scheduling() {
    // The whole Figure 8/9 grid in one sweep: scheduling runs exactly
    // once per (loop, machine), regardless of 4 models x 2 budgets.
    let c = corpus().take(30);
    let report = Sweep::new(&c)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .budgets([32, 64])
        .run()
        .unwrap();
    assert_eq!(report.outcomes.len(), 16);
    assert_eq!(report.scheduling.misses, 2 * c.len() as u64);
}
