//! Error paths of the shared artifact I/O layer
//! (`crates/core/src/artifact.rs`): truncated JSON, foreign files in a
//! live artifact directory, duplicate artifacts for the same lease, and
//! unreadable paths. The happy paths are covered by `shard_merge` and
//! the farm end-to-end tests; this file pins down what happens when the
//! directory a scheduler scans is *not* pristine.

use ncdrf::corpus::Corpus;
use ncdrf::{
    read_shard, read_shards, scan_artifacts, write_artifact, ArtifactError, Render, ReportFormat,
    Sweep, SweepShard,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncdrf-artifact-io-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn one_shard(corpus: &Corpus) -> SweepShard {
    Sweep::new(corpus)
        .clustered_latencies([3])
        .models([ncdrf::Model::Unified])
        .budget(32)
        .shard(0, 1)
        .expect("shard evaluates")
}

#[test]
fn a_truncated_artifact_is_a_parse_error_naming_the_file() {
    let corpus = Corpus::small().take(1);
    let body = one_shard(&corpus).render(ReportFormat::Json);
    let dir = temp_dir("truncated");
    let path = dir.join("shard.json");
    write_artifact(&path, &body[..body.len() / 2]).expect("write");
    match read_shard(&path) {
        Err(ArtifactError::Parse { path: p, .. }) => assert_eq!(p, path),
        other => panic!("expected a parse error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_missing_file_is_an_io_error_naming_the_file() {
    let path = std::env::temp_dir().join("ncdrf-artifact-io-definitely-missing.json");
    match read_shard(&path) {
        Err(ArtifactError::Io { path: p, .. }) => assert_eq!(p, path),
        other => panic!("expected an I/O error, got {other:?}"),
    }
}

#[test]
fn an_unreadable_path_is_an_io_error_not_a_panic() {
    // A directory whose name looks like an artifact: opening it as a
    // file fails at read time regardless of permissions (which root
    // would bypass), so this exercises the unreadable-file arm on any
    // uid.
    let dir = temp_dir("unreadable");
    let decoy = dir.join("shard.json");
    std::fs::create_dir_all(&decoy).expect("decoy dir");
    assert!(matches!(read_shard(&decoy), Err(ArtifactError::Io { .. })));
    // The directory scanner must skip it, not die on it.
    let scanned = scan_artifacts(&dir).expect("scan survives the decoy");
    assert!(scanned.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_shards_reports_the_first_broken_artifact() {
    let corpus = Corpus::small().take(1);
    let body = one_shard(&corpus).render(ReportFormat::Json);
    let dir = temp_dir("first-broken");
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    write_artifact(&good, &body).expect("write good");
    write_artifact(&bad, "{ not json").expect("write bad");
    match read_shards(&[&good, &bad, &good]) {
        Err(ArtifactError::Parse { path, .. }) => assert_eq!(path, bad),
        other => panic!("expected the bad file's parse error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_files_are_skipped_by_the_scanner_not_errors() {
    let corpus = Corpus::small().take(1);
    let shard = one_shard(&corpus);
    let dir = temp_dir("foreign");
    write_artifact(dir.join("real.json"), &shard.render(ReportFormat::Json)).expect("write");
    // A live artifact directory also holds things that are not shard
    // artifacts: reports, unrelated JSON, half-written files, notes.
    write_artifact(
        dir.join("report.json"),
        "{\"kind\":\"something-else\",\"v\":1}",
    )
    .expect("write foreign json");
    write_artifact(dir.join("half-written.json"), "{\"kind\":\"ncdr").expect("write torn file");
    write_artifact(dir.join("notes.txt"), "not json at all").expect("write non-json");
    let scanned = scan_artifacts(&dir).expect("scan");
    assert_eq!(scanned.len(), 1, "only the real artifact survives");
    assert_eq!(scanned[0].0, dir.join("real.json"));
    assert_eq!(scanned[0].1.cell_count(), shard.cell_count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scanning_a_missing_directory_is_an_io_error() {
    let dir = std::env::temp_dir().join("ncdrf-artifact-io-no-such-dir");
    assert!(matches!(
        scan_artifacts(&dir),
        Err(ArtifactError::Io { .. })
    ));
}

#[test]
fn duplicate_artifacts_for_one_lease_collapse_on_reconcile() {
    // An expired lease delivered late plus its re-lease leaves two
    // artifacts covering the same cells in the directory. The scanner
    // must surface both (it reports what is on disk), and reconcile
    // must collapse them to the single-copy result — the disk-level
    // mirror of the farm's at-least-once delivery rule.
    let corpus = Corpus::small().take(1);
    let shard = one_shard(&corpus);
    let body = shard.render(ReportFormat::Json);
    let dir = temp_dir("duplicate-lease");
    write_artifact(dir.join("lease-1.json"), &body).expect("write");
    write_artifact(dir.join("lease-2-retry.json"), &body).expect("write duplicate");
    let scanned = scan_artifacts(&dir).expect("scan");
    assert_eq!(scanned.len(), 2, "both deliveries are on disk");
    let shards: Vec<SweepShard> = scanned.into_iter().map(|(_, s)| s).collect();
    let merged = SweepShard::reconcile(&shards).expect("duplicates reconcile");
    assert_eq!(merged.cell_count(), shard.cell_count());
    assert_eq!(
        merged.scheduling(),
        shard.scheduling(),
        "a duplicated lease must not double-count any counter"
    );
    std::fs::remove_dir_all(&dir).ok();
}
