//! The farm's lease protocol under chaos: expired leases requeue, late
//! (duplicate) deliveries reconcile without double-counting a single
//! [`CacheStats`] counter, injected faults heal on the tick cadence —
//! and the final merged report is **bit-identical** to
//! `Sweep::run_sequential` no matter in which order deliveries land.
//! The property test drives one real (evaluated, not mocked) grid
//! through a randomized schedule of expiries, duplicates and
//! permutations.

use ncdrf::corpus::Corpus;
use ncdrf::{CacheStats, Render, ReportFormat, SweepShard};
use ncdrf_farm::{evaluate_lease, Farm, FarmConfig, JobState, LeaseOffer};
use proptest::prelude::*;

const LEASE_MS: u64 = 1_000;

fn farm_with(lease_cells: usize) -> Farm {
    Farm::new(FarmConfig {
        queue_cap: 4,
        max_cells: 1 << 20,
        lease_ms: LEASE_MS,
        lease_cells,
        artifact_dir: None,
        certify: false,
    })
}

/// Submit body for the full grid over `small.take(loops)` with the
/// given injected faults.
fn spec(loops: usize, inject: &[u64]) -> String {
    let faults: Vec<String> = inject.iter().map(u64::to_string).collect();
    format!(
        "{{\"grid\":\"full\",\"corpus\":\"small\",\"take\":{loops},\"inject_fail\":[{}]}}",
        faults.join(",")
    )
}

/// The sequential reference for the same grid: the exact bytes the farm
/// must serve.
fn reference(loops: usize) -> (String, CacheStats) {
    let corpus = Corpus::small().take(loops);
    let sweep = ncdrf::preset_sweep(&corpus, "full").unwrap();
    let report = sweep.run_sequential().unwrap();
    let partial = ncdrf::PartialSweep {
        report,
        errors: Vec::new(),
    };
    let scheduling = partial.report.scheduling;
    (partial.render(ReportFormat::Json), scheduling)
}

/// Claims every lease the farm will hand out right now.
fn claim_all(farm: &Farm, now: u64) -> Vec<LeaseOffer> {
    let mut offers = Vec::new();
    while let Some(offer) = farm.claim("test", now) {
        offers.push(offer);
    }
    offers
}

/// Drives the job to completion under a chaos plan and returns the
/// served report. `late` marks which first-round leases expire before
/// their (still-delivered) artifacts land; `order` seeds the delivery
/// permutation of each round.
fn run_chaos(loops: usize, inject: &[u64], late: &[bool], order: u64) -> (String, CacheStats) {
    let farm = farm_with(2);
    let receipt = farm.submit(&spec(loops, inject), 0).unwrap();
    assert_eq!(receipt.state, JobState::Queued);
    let job = receipt.job.clone();

    let mut now = 1;
    let offers = claim_all(&farm, now);
    assert!(!offers.is_empty());

    // Deliver the on-time subset immediately; the `late` subset goes
    // dark past its deadline, so the tick expires those leases and
    // replacements are claimed — and then the "dead" workers deliver
    // their originals anyway (at-least-once delivery).
    type Indexed = Vec<(usize, LeaseOffer)>;
    let (on_time, late_offers): (Indexed, Indexed) = offers
        .into_iter()
        .enumerate()
        .partition(|(i, _)| !late.get(*i).copied().unwrap_or(false));
    for (_, offer) in &on_time {
        let artifact = evaluate_lease(offer, None).unwrap();
        farm.deliver(offer.lease, artifact, now).unwrap();
    }
    let mut duplicated: Vec<LeaseOffer> = late_offers.into_iter().map(|(_, o)| o).collect();
    if !duplicated.is_empty() {
        now += LEASE_MS + 1;
        let tick = farm.tick(now);
        assert!(tick.expired > 0, "jumping past the deadline expires leases");
        duplicated.extend(claim_all(&farm, now));
    }

    // Deliver replacements and expired originals in a plan-dependent
    // permutation. A delivery can race job completion (its cells were
    // all duplicates); the farm answers "unknown lease" then, which a
    // real worker shrugs off.
    let mut artifacts: Vec<(u64, SweepShard)> = duplicated
        .iter()
        .map(|o| (o.lease, evaluate_lease(o, None).unwrap()))
        .collect();
    if !artifacts.is_empty() {
        let n = artifacts.len();
        artifacts.rotate_left(order as usize % n);
        if order % 2 == 1 {
            artifacts.reverse();
        }
    }
    for (lease, artifact) in artifacts {
        match farm.deliver(lease, artifact, now) {
            Ok(_) => {}
            Err(_) => assert_eq!(
                farm.status(&job).unwrap().state,
                JobState::Complete,
                "a refused delivery is only legal after completion retired the lease"
            ),
        }
    }

    // Heal loop: injected-fault cells are failed-but-delivered, so only
    // the tick cadence can requeue them. Bounded rounds.
    for _ in 0..8 {
        if farm.status(&job).unwrap().state == JobState::Complete {
            break;
        }
        now += 1;
        farm.tick(now);
        for offer in claim_all(&farm, now) {
            let artifact = evaluate_lease(&offer, None).unwrap();
            farm.deliver(offer.lease, artifact, now).unwrap();
        }
    }

    let status = farm.status(&job).unwrap();
    assert_eq!(
        status.state,
        JobState::Complete,
        "job must heal to completion"
    );
    // Faults force a tick-heal round only when their failed artifact is
    // delivered on time; a fault claimed by a lease that then expires
    // is recovered through the requeue path instead (injection is
    // consumed at first claim, so the replacement evaluates cleanly).
    if !inject.is_empty() && late.iter().all(|&l| !l) {
        assert!(status.heal_rounds > 0, "injected faults force a heal round");
    }
    (
        farm.report(&job).unwrap(),
        status.scheduling.expect("complete jobs carry counters"),
    )
}

#[test]
fn clean_run_without_chaos_is_bit_identical() {
    let (expected, expected_stats) = reference(3);
    let (report, stats) = run_chaos(3, &[], &[], 0);
    assert_eq!(report, expected);
    assert_eq!(stats, expected_stats);
}

#[test]
fn injected_faults_heal_to_the_same_bytes() {
    let (expected, expected_stats) = reference(3);
    let (report, stats) = run_chaos(3, &[0, 4], &[], 0);
    assert_eq!(report, expected);
    assert_eq!(stats, expected_stats);
}

#[test]
fn expired_leases_with_late_duplicate_deliveries_never_double_count() {
    let (expected, expected_stats) = reference(3);
    // Every first-round lease expires, gets re-leased, and then BOTH
    // copies are delivered: six cells, twelve deliveries.
    let (report, stats) = run_chaos(3, &[1], &[true, true, true], 1);
    assert_eq!(report, expected);
    assert_eq!(stats, expected_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The full chaos property: any fault set, any expiry subset, any
    // delivery permutation — the served report and its summed
    // CacheStats are the sequential run's, byte for byte.
    #[test]
    fn healed_report_is_permutation_invariant_and_counts_once(
        inject_mask in 0u64..64,
        late_mask in 0u64..8,
        order in 0u64..1 << 62,
    ) {
        // Bitmask-derived plans: which of the 6 cells fault, which of
        // the 3 first-round leases go dark, and the delivery order.
        let inject: Vec<u64> = (0..6).filter(|b| inject_mask & (1 << b) != 0).collect();
        let late: Vec<bool> = (0..3).map(|b| late_mask & (1 << b) != 0).collect();
        let (expected, expected_stats) = reference(3);
        let (report, stats) = run_chaos(3, &inject, &late, order);
        prop_assert_eq!(report, expected);
        prop_assert_eq!(stats, expected_stats);
    }
}

#[test]
fn reconcile_prefers_healthy_and_counts_each_cell_once() {
    let corpus = Corpus::small().take(2);
    let sweep = ncdrf::preset_sweep(&corpus, "full").unwrap();
    let clean = sweep.issue_cells(&[0, 1, 2, 3], &[], &[]).unwrap();
    let faulty = sweep.issue_cells(&[0, 1], &[0, 1], &[]).unwrap();

    // Failed duplicates lose to healthy cells, whichever side they're
    // on, and the failed copies' (zeroed) counters are not added in.
    let a = SweepShard::reconcile(&[clean.clone(), faulty.clone()]).unwrap();
    let b = SweepShard::reconcile(&[faulty, clean.clone()]).unwrap();
    assert_eq!(a.failure_count(), 0);
    assert_eq!(a.cell_count(), 4);
    assert_eq!(
        a.render(ReportFormat::Json),
        b.render(ReportFormat::Json),
        "reconcile is permutation-invariant"
    );

    // A healthy triplicate still counts once: same merged bytes as the
    // single clean artifact.
    let tripled = SweepShard::reconcile(&[clean.clone(), clean.clone(), clean.clone()]).unwrap();
    let once = SweepShard::merge(&[clean]).unwrap();
    let thrice = SweepShard::merge(&[tripled]).unwrap();
    assert_eq!(
        once.render(ReportFormat::Json),
        thrice.render(ReportFormat::Json)
    );
}
