//! The farm API's refusal paths, exercised through the same pure
//! `route()` the HTTP server wraps: malformed job JSON, unknown ids,
//! oversized grids and a full queue each produce their own status code
//! — and none of them mutates queue state. Plus the re-merge cache:
//! exact resubmits complete instantly with identical bytes, and
//! budget-extension resubmits seed their spill descents from the
//! cached trajectories.

use ncdrf_farm::api::route;
use ncdrf_farm::{evaluate_lease, Farm, FarmConfig, JobState, LeaseOffer};

fn farm() -> Farm {
    Farm::new(FarmConfig {
        queue_cap: 1,
        max_cells: 16,
        lease_ms: 1_000,
        lease_cells: 64,
        artifact_dir: None,
        certify: false,
    })
}

/// `(jobs, unfinished, live leases, cached grids)` — the mutation
/// canary: refusals must leave it untouched.
fn stats(farm: &Farm) -> (usize, usize, usize, usize) {
    farm.stats()
}

const SPEC: &str = r#"{"grid":"full","corpus":"small","take":2}"#;

/// Runs every pending lease of the farm to completion, ticking the heal
/// cadence until the job count stabilises.
fn drain(farm: &Farm, mut now: u64) -> u64 {
    for _ in 0..16 {
        now += 1;
        farm.tick(now);
        let mut worked = false;
        while let Some(offer) = farm.claim("drain", now) {
            let artifact = evaluate_lease(&offer, None).unwrap();
            farm.deliver(offer.lease, artifact, now).unwrap();
            worked = true;
        }
        if !worked && farm.jobs().iter().all(|j| j.state == JobState::Complete) {
            break;
        }
    }
    now
}

#[test]
fn malformed_job_json_is_400_and_mutates_nothing() {
    let farm = farm();
    let before = stats(&farm);
    for body in [
        "",
        "not json",
        "{\"grid\":",
        "[1,2,3]",
        r#"{"grid":42}"#,
        r#"{"grid":"full","take":"three"}"#,
        r#"{"grid":"full","budgets":[]}"#,
        r#"{"grid":"full","budgets":["a"]}"#,
        r#"{"grid":"no-such-grid"}"#,
        r#"{"corpus":"no-such-corpus"}"#,
        r#"{"grid":"full","corpus":"small","take":2,"inject_fail":[99]}"#,
        r#"{"grid":"full","corpus":"small","take":2,"persist_trajectories":"yes"}"#,
    ] {
        let (status, reply) = route(&farm, "POST", "/jobs", body, 0);
        assert_eq!(status, 400, "body: {body} -> {reply}");
        assert!(reply.contains("\"error\""), "body: {body}");
    }
    assert_eq!(stats(&farm), before, "refusals must not enqueue anything");
}

#[test]
fn unknown_ids_are_404_and_mutate_nothing() {
    let farm = farm();
    route(&farm, "POST", "/jobs", SPEC, 0);
    let before = stats(&farm);

    let (status, _) = route(&farm, "GET", "/jobs/job-99", "", 0);
    assert_eq!(status, 404);
    let (status, _) = route(&farm, "GET", "/jobs/job-99/report", "", 0);
    assert_eq!(status, 404);
    let (status, _) = route(&farm, "POST", "/leases/not-a-number/artifact", "{}", 0);
    assert_eq!(status, 404);
    let (status, _) = route(&farm, "GET", "/no/such/endpoint", "", 0);
    assert_eq!(status, 404);
    let (status, _) = route(&farm, "DELETE", "/jobs", "", 0);
    assert_eq!(status, 405);

    assert_eq!(stats(&farm), before);
    // The queued job is untouched: still all cells pending.
    let status = farm.status("job-1").unwrap();
    assert_eq!(status.state, JobState::Queued);
    assert_eq!(status.pending, status.cells);
}

#[test]
fn queued_report_is_409_not_ready() {
    let farm = farm();
    route(&farm, "POST", "/jobs", SPEC, 0);
    let (status, reply) = route(&farm, "GET", "/jobs/job-1/report", "", 0);
    assert_eq!(status, 409, "{reply}");
    assert!(reply.contains("not complete"));
}

#[test]
fn oversized_grid_is_413_and_mutates_nothing() {
    let farm = farm(); // max_cells = 16
    let before = stats(&farm);
    let (status, reply) = route(
        &farm,
        "POST",
        "/jobs",
        r#"{"grid":"full","corpus":"small","take":12}"#, // 2 machines x 12 loops
        0,
    );
    assert_eq!(status, 413, "{reply}");
    assert!(reply.contains("at most 16"));
    assert_eq!(stats(&farm), before);
}

#[test]
fn full_queue_is_429_and_mutates_nothing() {
    let farm = farm(); // queue_cap = 1
    let (status, _) = route(&farm, "POST", "/jobs", SPEC, 0);
    assert_eq!(status, 202);
    let before = stats(&farm);

    let (status, reply) = route(&farm, "POST", "/jobs", SPEC, 0);
    assert_eq!(status, 429, "{reply}");
    assert!(reply.contains("full"));
    assert_eq!(stats(&farm), before, "a refused submit must not enqueue");

    // Draining the queue reopens it.
    drain(&farm, 0);
    let (status, _) = route(&farm, "POST", "/jobs", SPEC, 100);
    assert_eq!(status, 202);
}

#[test]
fn foreign_or_corrupt_artifact_is_refused_without_ingesting() {
    let farm = farm();
    route(&farm, "POST", "/jobs", SPEC, 0);
    let offer_body = {
        let (status, body) = route(&farm, "POST", "/leases", "w", 1);
        assert_eq!(status, 200);
        body
    };
    let offer = LeaseOffer::from_json(&offer_body).unwrap();
    let before = farm.status("job-1").unwrap();

    // Not an artifact at all.
    let (status, reply) = route(
        &farm,
        "POST",
        &format!("/leases/{}/artifact", offer.lease),
        "{\"kind\":\"nope\"}",
        2,
    );
    assert_eq!(status, 400, "{reply}");

    // A well-formed artifact for a DIFFERENT grid.
    let foreign_spec =
        ncdrf_farm::JobSpec::from_json(r#"{"grid":"fig89","corpus":"small","take":2}"#).unwrap();
    let foreign_sig = foreign_spec.signature().unwrap();
    let (corpus, machines) = ncdrf::rebuild_grid(&foreign_sig).unwrap();
    let foreign = ncdrf::sweep_for_signature(&foreign_sig, &corpus, machines)
        .issue_cells(&[0], &[], &[])
        .unwrap();
    use ncdrf::{Render, ReportFormat};
    let (status, reply) = route(
        &farm,
        "POST",
        &format!("/leases/{}/artifact", offer.lease),
        &foreign.render(ReportFormat::Json),
        3,
    );
    assert_eq!(status, 400, "{reply}");
    assert!(reply.contains("does not match"));

    // Neither refusal ingested anything.
    let after = farm.status("job-1").unwrap();
    assert_eq!(after.resolved, before.resolved);
    assert_eq!(after.failed, before.failed);
    assert_eq!(after.pending, before.pending);

    // A genuine artifact delivered to a never-issued lease is 404.
    let artifact = evaluate_lease(&offer, None).unwrap();
    let (status, reply) = route(
        &farm,
        "POST",
        "/leases/999/artifact",
        &artifact.render(ReportFormat::Json),
        4,
    );
    assert_eq!(status, 404, "{reply}");
    assert_eq!(farm.status("job-1").unwrap().resolved, before.resolved);

    // The genuine artifact still lands on the very same lease.
    let (status, reply) = route(
        &farm,
        "POST",
        &format!("/leases/{}/artifact", offer.lease),
        &artifact.render(ReportFormat::Json),
        5,
    );
    assert_eq!(status, 200, "{reply}");
}

#[test]
fn certify_mode_rejects_corrupt_artifacts_with_422_and_mutates_nothing() {
    use ncdrf::{Render, ReportFormat};
    let farm = Farm::new(FarmConfig {
        queue_cap: 1,
        max_cells: 16,
        lease_ms: 1_000,
        lease_cells: 64,
        artifact_dir: None,
        certify: true,
    });
    route(&farm, "POST", "/jobs", SPEC, 0);
    let (status, offer_body) = route(&farm, "POST", "/leases", "w", 1);
    assert_eq!(status, 200);
    let offer = LeaseOffer::from_json(&offer_body).unwrap();
    let honest = evaluate_lease(&offer, None).unwrap();
    let before = farm.status("job-1").unwrap();

    // Corrupt one claimed register requirement in the wire bytes: the
    // artifact still parses and reconciles, but its payload no longer
    // matches what a certified re-derivation produces.
    let json = honest.render(ReportFormat::Json);
    let at = json
        .find("\"regs\":")
        .expect("artifact carries requirements");
    let digits: String = json[at + 7..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let claimed: u32 = digits.parse().unwrap();
    let corrupt = format!(
        "{}\"regs\":{}{}",
        &json[..at],
        claimed + 1,
        &json[at + 7 + digits.len()..]
    );
    assert!(
        ncdrf::parse_sweep_shard(&corrupt).is_ok(),
        "still well-formed"
    );

    let (status, reply) = route(
        &farm,
        "POST",
        &format!("/leases/{}/artifact", offer.lease),
        &corrupt,
        2,
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("certification rejected"), "{reply}");
    // The refusal mutated nothing: lease still live, no cells ingested.
    let after = farm.status("job-1").unwrap();
    assert_eq!(after.resolved, before.resolved);
    assert_eq!(after.leased, before.leased);
    assert_eq!(after.pending, before.pending);

    // The honest artifact for the very same lease certifies and lands.
    let (status, reply) = route(
        &farm,
        "POST",
        &format!("/leases/{}/artifact", offer.lease),
        &honest.render(ReportFormat::Json),
        3,
    );
    assert_eq!(status, 200, "{reply}");
    assert_eq!(farm.status("job-1").unwrap().state, JobState::Complete);
}

#[test]
fn unregistered_model_is_400_with_the_offending_name() {
    let farm = farm();
    let before = stats(&farm);
    let (status, reply) = route(
        &farm,
        "POST",
        "/jobs",
        r#"{"grid":"fig89","corpus":"small","take":2,"models":["unified","racetrack"]}"#,
        0,
    );
    assert_eq!(status, 400, "{reply}");
    assert!(
        reply.contains("racetrack"),
        "the refusal must name the offending model: {reply}"
    );
    assert_eq!(stats(&farm), before, "a refused submit must not enqueue");

    // Malformed model arrays are refused the same way.
    for body in [
        r#"{"grid":"fig89","models":[]}"#,
        r#"{"grid":"fig89","models":[3]}"#,
        r#"{"grid":"fig89","models":"unified"}"#,
    ] {
        let (status, reply) = route(&farm, "POST", "/jobs", body, 0);
        assert_eq!(status, 400, "body: {body} -> {reply}");
    }
    assert_eq!(stats(&farm), before);
}

#[test]
fn registered_model_override_runs_end_to_end() {
    // The registry's non-paper built-ins are full citizens of the farm:
    // a job naming them sweeps, fails, heals and serves a report with
    // zero model-specific code in the queue machinery.
    let farm = farm();
    let receipt = farm
        .submit(
            r#"{"grid":"fig89","corpus":"small","take":2,"models":["ideal","port-limited","compressed"],"inject_fail":[1]}"#,
            0,
        )
        .unwrap();
    drain(&farm, 0);
    let status = farm.status(&receipt.job).unwrap();
    assert_eq!(status.state, JobState::Complete);
    assert!(status.heal_rounds > 0, "the injected fault must heal");
    let report = farm.report(&receipt.job).unwrap();
    assert!(
        report.contains("\"model\":\"port-limited\"")
            && report.contains("\"model\":\"compressed\""),
        "the report carries the registry wire names"
    );
}

#[test]
fn exact_resubmit_completes_instantly_from_the_cache() {
    let farm = farm();
    let receipt = farm.submit(SPEC, 0).unwrap();
    drain(&farm, 0);
    let first = farm.report(&receipt.job).unwrap();

    let receipt2 = farm.submit(SPEC, 50).unwrap();
    assert_eq!(receipt2.state, JobState::Complete, "cache hit is instant");
    let status = farm.status(&receipt2.job).unwrap();
    assert!(status.from_cache);
    assert_eq!(
        farm.report(&receipt2.job).unwrap(),
        first,
        "identical bytes"
    );
}

#[test]
fn budget_extension_resubmit_seeds_from_cached_trajectories() {
    let farm = farm();
    // First job persists its spill trajectories; the tight low rung
    // forces real spill descents (a ladder the loops fit under would
    // have nothing to persist).
    let receipt = farm
        .submit(
            r#"{"grid":"full","corpus":"small","take":2,"budgets":[6,32],"persist_trajectories":true}"#,
            0,
        )
        .unwrap();
    let now = drain(&farm, 0);
    assert_eq!(farm.status(&receipt.job).unwrap().state, JobState::Complete);

    // Same grid, tighter budgets: resume-compatible, so its leases
    // carry the cached artifact as a seed and the descents resume
    // instead of respilling from zero.
    let receipt2 = farm
        .submit(
            r#"{"grid":"full","corpus":"small","take":2,"budgets":[4,16]}"#,
            now,
        )
        .unwrap();
    assert_eq!(receipt2.state, JobState::Queued, "new budgets, new work");
    let offer = farm.claim("w", now + 1).unwrap();
    assert!(
        !offer.seeds.is_empty(),
        "a resume-compatible cached artifact must ride along as a seed"
    );
    let artifact = evaluate_lease(&offer, None).unwrap();
    farm.deliver(offer.lease, artifact, now + 1).unwrap();
    drain(&farm, now + 1);
    let status = farm.status(&receipt2.job).unwrap();
    assert_eq!(status.state, JobState::Complete);
    let stats = status.scheduling.unwrap();
    assert!(
        stats.traj_hits + stats.traj_resumes > 0,
        "seeded descents must be served from the cached trajectories, got {stats:?}"
    );
}
