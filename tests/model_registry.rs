//! The model registry's public contract: stable wire names that
//! round-trip through IDs, append-only deterministic iteration,
//! duplicate rejection — and the differential guarantee that moving the
//! pipeline from the `Model` enum to registry IDs changed no report
//! byte for the four paper models.

use ncdrf::corpus::Corpus;
use ncdrf::{Model, ModelId, ModelRegistry, ModelSpec, Render, ReportFormat, Sweep, PAPER_MODELS};
use proptest::prelude::*;

#[test]
fn every_registered_model_round_trips_name_to_id_to_name() {
    // Exhaustive over the live registry (tests in this binary may have
    // registered extra models; the invariant holds for those too).
    for id in ModelRegistry::ids() {
        let name = id.name();
        assert_eq!(
            ModelRegistry::resolve(&name),
            Some(id),
            "`{name}` must resolve back to its own id"
        );
        assert_eq!(id.to_string(), name, "Display is the wire name");
        assert_eq!(name.parse::<ModelId>(), Ok(id), "FromStr inverts Display");
    }
}

#[test]
fn registry_iteration_is_deterministic_and_append_only() {
    let first = ModelRegistry::ids();
    let second = ModelRegistry::ids();
    // Another test thread may register between the two snapshots, but
    // registration is append-only: the shorter snapshot is always a
    // prefix of the longer.
    let n = first.len().min(second.len());
    assert_eq!(first[..n], second[..n]);
    // The six built-ins are always the head, in registration order.
    assert_eq!(
        &first[..6],
        &[
            ModelId::IDEAL,
            ModelId::UNIFIED,
            ModelId::PARTITIONED,
            ModelId::SWAPPED,
            ModelId::PORT_LIMITED,
            ModelId::COMPRESSED,
        ]
    );
}

struct Duplicate;

impl ModelSpec for Duplicate {
    fn name(&self) -> &str {
        "unified"
    }
}

struct Fresh;

impl ModelSpec for Fresh {
    fn name(&self) -> &str {
        "registry-test-fresh"
    }
}

#[test]
fn duplicate_registration_is_rejected_without_corrupting_the_registry() {
    let before = ModelRegistry::ids().len();
    let err = ModelRegistry::register(Duplicate).unwrap_err();
    assert!(
        err.to_string().contains("unified"),
        "the rejection names the colliding wire name: {err}"
    );
    assert_eq!(ModelRegistry::resolve("unified"), Some(ModelId::UNIFIED));
    assert!(ModelRegistry::ids().len() >= before);

    // A fresh name registers exactly once; the second attempt collides.
    let id = ModelRegistry::register(Fresh).unwrap();
    assert_eq!(ModelRegistry::resolve("registry-test-fresh"), Some(id));
    assert!(ModelRegistry::register(Fresh).is_err());
}

/// Arbitrary lowercase-and-dash names, with genuine wire names mixed in
/// so both resolution branches are exercised.
fn arb_name() -> impl Strategy<Value = String> {
    (0usize..24, 0u64..u64::MAX, 0u32..4).prop_map(|(len, seed, pick)| {
        if pick == 0 {
            let ids = ModelRegistry::ids();
            return ids[(seed % ids.len() as u64) as usize].name();
        }
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
        let mut s = String::new();
        let mut x = seed;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push(ALPHABET[(x >> 33) as usize % ALPHABET.len()] as char);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any string resolves either to an id whose wire name is exactly
    // that string, or to nothing — resolution never aliases.
    #[test]
    fn resolution_never_aliases(name in arb_name()) {
        match ModelRegistry::resolve(&name) {
            Some(id) => prop_assert_eq!(id.name(), name),
            None => prop_assert!(ModelRegistry::ids().iter().all(|id| id.name() != name)),
        }
    }
}

#[test]
fn enum_and_registry_model_sets_produce_byte_identical_fig89_reports() {
    // The differential check behind the redesign: driving the sweep by
    // the deprecated `Model` enum and by registry IDs must be the same
    // computation down to the last report byte.
    let corpus = Corpus::small().take(8);
    let by_enum = Sweep::new(&corpus)
        .clustered_latencies([3, 6])
        .models(Model::all())
        .budgets([32, 64])
        .run()
        .unwrap();
    let by_id = Sweep::new(&corpus)
        .clustered_latencies([3, 6])
        .models(PAPER_MODELS)
        .budgets([32, 64])
        .run()
        .unwrap();
    assert_eq!(
        by_enum.render(ReportFormat::Json),
        by_id.render(ReportFormat::Json)
    );
    assert_eq!(
        by_enum.render(ReportFormat::Text),
        by_id.render(ReportFormat::Text)
    );
}
