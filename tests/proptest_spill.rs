//! Property tests for spill trajectories.
//!
//! Register-tiling work (arXiv:1406.0582) frames spilling as a monotone
//! pressure-reduction process, and that framing is *almost* right here —
//! with one honest caveat this suite pins down instead of papering over:
//!
//! * **Per-step monotonicity is violated by reschedule noise.** Each
//!   spill rewrites the graph and reschedules from scratch; the reloads'
//!   lifetimes under the new schedule can transiently *raise* the
//!   requirement (`per_step_monotonicity_has_reschedule_counterexamples`
//!   keeps a concrete kernel counterexample on record).
//! * **What continuation actually relies on is budget-independence, not
//!   per-step descent**: the fresh driver stops at the *first* state
//!   fitting its budget, and the step taken from any non-fitting state
//!   does not depend on the budget. Hence the trajectory is prefix-stable
//!   (`resuming_at_any_checkpoint_yields_the_straight_through_tail`) and
//!   first-fit service is bit-identical to a fresh run at every budget
//!   (`continued_results_match_fresh_for_any_budget_order`).
//! * **The *served* requirement is monotone in the budget** — the
//!   user-visible monotonicity theorem: descending budgets can only
//!   tighten the requirement a fitting evaluation reports
//!   (`served_requirements_are_monotone_in_the_budget`).

use ncdrf::corpus::{generate, kernels, GenConfig};
use ncdrf::machine::Machine;
use ncdrf::sched::{modulo_schedule, modulo_schedule_with, SchedContext, SchedulerOptions};
use ncdrf::spill::{
    requirement_unified, set_full_resched, spill_until_fits_seeded, spill_value, SpillOptions,
    SpillPolicy, SpillTrajectory,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises the tests that flip the process-global rescheduling mode.
/// (Flipping mid-run is benign — both modes are bit-identical — but the
/// lock keeps each differential comparison's two phases well-defined.)
static RESCHED_MODE: Mutex<()> = Mutex::new(());

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (2usize..10, 1usize..4, 0.0f64..0.4, 0.0f64..0.9).prop_map(|(arith, loads, rec, chain)| {
        GenConfig {
            min_arith: arith,
            max_arith: arith + 6,
            min_loads: loads,
            max_loads: loads + 2,
            recurrence_prob: rec,
            chain_bias: chain,
            ..GenConfig::default()
        }
    })
}

/// Drives a fresh trajectory as deep as a 2-register budget needs
/// (every step of the descent for all practical purposes).
fn deep_trajectory(l: &ncdrf::ddg::Loop, machine: &Machine, opts: SpillOptions) -> SpillTrajectory {
    let base = modulo_schedule(l, machine).unwrap();
    let mut t =
        SpillTrajectory::from_base(l, machine, base, &mut requirement_unified, opts).unwrap();
    t.evaluate(machine, 2, &mut requirement_unified).unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The user-visible monotonicity theorem: as the budget descends,
    // the requirement a fitting (non-escalated) evaluation serves never
    // rises. (Follows from first-fit service: a smaller budget stops at
    // the same or a later checkpoint, and a later-served checkpoint
    // must fit the smaller budget.)
    #[test]
    fn served_requirements_are_monotone_in_the_budget(seed in 0u64..5_000, cfg in arb_config(), lat in prop_oneof![Just(3u32), Just(6u32)]) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(lat, 1);
        let mut t = deep_trajectory(&l, &machine, SpillOptions::default());
        let mut prev: Option<u32> = None;
        let start = t.checkpoints()[0].regs;
        for budget in (2..=start.max(2)).rev() {
            let (r, _) = t.evaluate(&machine, budget, &mut requirement_unified).unwrap();
            if !r.fits {
                continue;
            }
            prop_assert!(r.regs <= budget);
            if let Some(p) = prev {
                prop_assert!(
                    r.regs <= p,
                    "budget {} served {} after a larger budget served {}",
                    budget, r.regs, p
                );
            }
            prev = Some(r.regs);
        }
    }

    // Prefix stability: a trajectory extended budget-by-budget through
    // every intermediate requirement commits exactly the checkpoints a
    // single straight-through run commits — same victims, same rewritten
    // loops, same schedules, same requirements.
    #[test]
    fn resuming_at_any_checkpoint_yields_the_straight_through_tail(seed in 0u64..5_000, cfg in arb_config()) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(6, 1);
        let straight = deep_trajectory(&l, &machine, SpillOptions::default());

        let base = modulo_schedule(&l, &machine).unwrap();
        let mut staged = SpillTrajectory::from_base(
            &l, &machine, base, &mut requirement_unified, SpillOptions::default()).unwrap();
        // Stop at every checkpoint of the straight run in turn: budget
        // `regs` is exactly the stopping condition of checkpoint `k`.
        // Compare the scalar records: the staged run's *terminal*
        // checkpoint still retains its loop/schedule while the straight
        // run may have pruned that index off the record-minima frontier,
        // so full structural equality only holds at matched depths (the
        // final assertion below).
        for k in 0..straight.checkpoints().len() {
            let budget = straight.checkpoints()[k].regs;
            let (r, _) = staged.evaluate(&machine, budget, &mut requirement_unified).unwrap();
            prop_assert!(r.fits);
            prop_assert!(staged.checkpoints()[..=k.min(staged.steps())]
                .iter().zip(straight.checkpoints()).all(|(a, b)| {
                    (a.regs, &a.victim, a.ii, a.mem_ops, a.spill_stores, a.spill_loads)
                        == (b.regs, &b.victim, b.ii, b.mem_ops, b.spill_stores, b.spill_loads)
                }));
        }
        let (_, _) = staged.evaluate(&machine, 2, &mut requirement_unified).unwrap();
        prop_assert_eq!(staged.checkpoints(), straight.checkpoints());
        prop_assert_eq!(staged.is_exhausted(), straight.is_exhausted());
    }

    // Every rung of an arbitrary budget ladder, in arbitrary order, is
    // bit-identical to a fresh seeded run at that budget — for the
    // paper's policy and the ablation policies alike.
    #[test]
    fn continued_results_match_fresh_for_any_budget_order(
        seed in 0u64..3_000,
        budgets in (2u32..48, 2u32..48, 2u32..48),
        policy_seed in 0u64..3,
    ) {
        let budgets = [budgets.0, budgets.1, budgets.2];
        let policy = [
            SpillPolicy::LongestLifetime,
            SpillPolicy::FewestUses,
            SpillPolicy::Random(seed | 1),
        ][policy_seed as usize];
        let opts = SpillOptions { policy, ..SpillOptions::default() };
        let l = generate("prop", seed, &GenConfig::default());
        let machine = Machine::clustered(6, 1);
        let base = modulo_schedule(&l, &machine).unwrap();
        let mut t = SpillTrajectory::from_base(
            &l, &machine, base.clone(), &mut requirement_unified, opts).unwrap();
        for &budget in &budgets {
            let (continued, _) = t.evaluate(&machine, budget, &mut requirement_unified).unwrap();
            let fresh = spill_until_fits_seeded(
                &l, &machine, base.clone(), budget, &mut requirement_unified, opts).unwrap();
            prop_assert!(continued == fresh, "budget {} under {:?}", budget, policy);
        }
    }

    // Termination: the descent exhausts (or fits) within `max_spills`
    // steps, and exhaustion is a trajectory-level fact — every budget
    // after it is served from checkpoints or the per-budget fallback,
    // computing zero further steps.
    #[test]
    fn descent_terminates_within_the_spill_cap(seed in 0u64..3_000, cap in 1usize..6) {
        let opts = SpillOptions { max_spills: cap, escalate_ii: false, ..SpillOptions::default() };
        let l = generate("prop", seed, &GenConfig::default());
        let machine = Machine::clustered(6, 1);
        let base = modulo_schedule(&l, &machine).unwrap();
        let mut t = SpillTrajectory::from_base(
            &l, &machine, base, &mut requirement_unified, opts).unwrap();
        let (r, _) = t.evaluate(&machine, 2, &mut requirement_unified).unwrap();
        prop_assert!(t.steps() <= cap);
        prop_assert!(r.fits || t.is_exhausted());
        let (_, again) = t.evaluate(&machine, 2, &mut requirement_unified).unwrap();
        prop_assert_eq!(again.steps_computed, 0);
    }

    // The incremental rescheduling path is bit-identical to the full
    // reference path on *arbitrary* generated loops, every checkpoint of
    // the whole descent — not just the curated corpus the golden grids
    // pin.
    #[test]
    fn incremental_descent_matches_full_reschedule(
        seed in 0u64..3_000,
        cfg in arb_config(),
        lat in prop_oneof![Just(3u32), Just(6u32)],
    ) {
        let _guard = RESCHED_MODE.lock().unwrap_or_else(|p| p.into_inner());
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(lat, 1);
        set_full_resched(Some(true));
        let full = deep_trajectory(&l, &machine, SpillOptions::default());
        set_full_resched(Some(false));
        let incremental = deep_trajectory(&l, &machine, SpillOptions::default());
        set_full_resched(None);
        prop_assert_eq!(incremental.checkpoints(), full.checkpoints());
        prop_assert_eq!(incremental.is_exhausted(), full.is_exhausted());
    }

    // Dirty-set soundness: the closure is an *over*-approximation, so
    // every op whose placement changed between the cached run and the
    // extended reschedule must have been in the dirty set. Equivalently:
    // any op the merged attempt reports clean keeps its kernel slot and
    // functional unit exactly. (And the extended result is bit-identical
    // to the reference either way.)
    #[test]
    fn dirty_set_is_a_sound_over_approximation(
        seed in 0u64..3_000,
        cfg in arb_config(),
        victim_pick in 0usize..8,
    ) {
        let l = generate("prop", seed, &cfg);
        let machine = Machine::clustered(6, 1);
        let opts = SchedulerOptions::default();
        let mut ctx = SchedContext::new();
        let first = ctx.schedule(&l, &machine, opts).unwrap();

        let victims: Vec<_> = l
            .ops()
            .iter()
            .filter(|op| op.kind().produces_value())
            .map(|op| l.find_op(op.name()).unwrap())
            .collect();
        prop_assert!(!victims.is_empty());
        let victim = victims[victim_pick % victims.len()];
        let (rewritten, _reloads, _stats) = spill_value(&l, victim).unwrap();

        let got = ctx.reschedule_extended(&rewritten, &machine, opts, l.ops().len());
        let want = modulo_schedule_with(&rewritten, &machine, opts);
        match (got, want) {
            (Ok(got), Ok(want)) => {
                prop_assert_eq!(&got, &want);
                if let Some(mask) = ctx.last_clean_mask() {
                    prop_assert_eq!(got.ii(), first.ii());
                    for (i, op) in l.ops().iter().enumerate() {
                        if !mask[i] {
                            continue;
                        }
                        let id = rewritten.find_op(op.name()).unwrap();
                        let old = l.find_op(op.name()).unwrap();
                        prop_assert_eq!(got.kernel_slot(id), first.kernel_slot(old));
                        prop_assert_eq!(got.unit(id), first.unit(old));
                    }
                    // Appended spill code is never clean.
                    for flag in &mask[l.ops().len()..] {
                        prop_assert!(!flag);
                    }
                }
            }
            (Err(g), Err(w)) => prop_assert_eq!(format!("{g:?}"), format!("{w:?}")),
            (g, w) => prop_assert!(false, "paths disagree: {:?} vs {:?}", g, w),
        }
    }

    // Arena hygiene: one `SchedContext` reused across foreign loops of
    // different sizes, a snapshot replay (which reschedules every
    // recorded victim through a fresh context), and a session cache
    // clear all stay bit-identical to fresh computation — the SoA
    // indices never dangle into a previous run's arena.
    #[test]
    fn arena_reuse_never_dangles_across_cache_clears_and_replay(
        seed in 0u64..2_000,
        cfg in arb_config(),
    ) {
        let l = generate("prop", seed, &cfg);
        let other = generate("prop", seed.wrapping_add(7), &cfg);
        let machine = Machine::clustered(6, 1);

        let mut ctx = SchedContext::new();
        for lp in [&l, &other, &l, &other] {
            let got = ctx.schedule(lp, &machine, SchedulerOptions::default()).unwrap();
            prop_assert_eq!(got, modulo_schedule(lp, &machine).unwrap());
        }

        let t = deep_trajectory(&l, &machine, SpillOptions::default());
        let snap = t.snapshot();
        let base = modulo_schedule(&l, &machine).unwrap();
        let replayed = SpillTrajectory::replay(
            &l, &machine, base, &snap, &mut requirement_unified, SpillOptions::default(),
        ).unwrap();
        prop_assert_eq!(replayed.checkpoints(), t.checkpoints());

        let session = ncdrf::Session::new(machine.clone());
        let before: Vec<_> = [48u32, 16, 6]
            .iter()
            .map(|&b| session.evaluate(&l, ncdrf::Model::Unified, b).unwrap())
            .collect();
        session.clear_cache();
        let after: Vec<_> = [48u32, 16, 6]
            .iter()
            .map(|&b| session.evaluate(&l, ncdrf::Model::Unified, b).unwrap())
            .collect();
        prop_assert_eq!(before, after);
    }
}

/// Keeps the reschedule-noise counterexample on record: per-step
/// monotonicity of the raw requirement does **not** hold (spilling `LY`
/// out of `axpby` at latency 6 *raises* the requirement, because the
/// rewritten loop's fresh schedule stretches the reload lifetimes), and
/// continuation must therefore serve budgets by first-fit scan, never by
/// assuming the last checkpoint is the tightest. If this test starts
/// failing because the descent became monotone, the first-fit scan in
/// `SpillTrajectory` can be simplified — until then it cannot.
#[test]
fn per_step_monotonicity_has_reschedule_counterexamples() {
    let machine = Machine::clustered(6, 1);
    let mut violations = 0usize;
    for l in kernels::all() {
        let t = deep_trajectory(&l, &machine, SpillOptions::default());
        for w in t.checkpoints().windows(2) {
            if w[1].regs > w[0].regs {
                violations += 1;
            }
        }
        // Whatever the local noise, the descent must still reach its
        // global floor: the minimum over checkpoints never exceeds the
        // starting requirement, and deep budgets that fit are served.
        assert!(t.min_regs() <= t.checkpoints()[0].regs, "{}", l.name());
    }
    assert!(
        violations > 0,
        "per-step descent became monotone; simplify SpillTrajectory::first_fit \
         and retire this counterexample"
    );
}
