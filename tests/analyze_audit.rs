//! The artifact auditor, run against directories the real substrate
//! produces: a sharded sweep's artifacts, a farm's artifact directory
//! after a completed job, and corrupted copies of both.

use ncdrf::corpus::Corpus;
use ncdrf::{Render, ReportFormat, Sweep};
use ncdrf_analyze::audit::audit_dir;
use ncdrf_analyze::scenarios::{artifact_for_tasks, farm_fixture, FARM_SCENARIO_SPEC};
use ncdrf_farm::{Farm, FarmConfig};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ncdrf-analyze-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn small_sweep(corpus: &Corpus) -> Sweep<'_> {
    Sweep::new(corpus)
        .clustered_latencies([3])
        .models([ncdrf::Model::Unified, ncdrf::Model::Partitioned])
        .budget(32)
}

#[test]
fn a_sharded_sweep_directory_audits_clean() {
    let corpus = Corpus::small().take(2);
    let sweep = small_sweep(&corpus);
    let dir = temp_dir("shards");
    for i in 0..3u32 {
        let shard = sweep.shard(i, 3).expect("shard");
        ncdrf::write_artifact(
            dir.join(format!("shard-{i}-of-3.json")),
            &shard.render(ReportFormat::Json),
        )
        .expect("write artifact");
    }
    let report = audit_dir(&dir).expect("audit runs");
    assert!(report.clean(), "findings: {:?}", report.findings);
    assert_eq!(report.shards, 3);
    assert_eq!(report.groups, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_completed_farm_directory_audits_clean() {
    let fixture = farm_fixture();
    let dir = temp_dir("farm");
    let farm = Farm::new(FarmConfig {
        lease_cells: 2,
        artifact_dir: Some(dir.clone()),
        ..FarmConfig::default()
    });
    let receipt = farm.submit(FARM_SCENARIO_SPEC, 0).expect("submit");
    let mut now = 0;
    while let Some(offer) = farm.claim("audit-test", now) {
        now += 1;
        let artifact = artifact_for_tasks(&fixture.cell_artifacts, &offer.tasks);
        farm.deliver(offer.lease, artifact, now).expect("deliver");
    }
    let status = farm.status(&receipt.job).expect("status");
    assert_eq!(status.resolved, fixture.cells, "the job completed");

    // After completion, GC has replaced the per-lease files with one
    // consolidated artifact; the directory must audit clean.
    let report = audit_dir(&dir).expect("audit runs");
    assert!(report.clean(), "findings: {:?}", report.findings);
    assert!(report.shards >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_corrupted_artifact_is_rejected() {
    let corpus = Corpus::small().take(2);
    let sweep = small_sweep(&corpus);
    let dir = temp_dir("corrupt");
    let shard = sweep.shard(0, 2).expect("shard");
    let body = shard.render(ReportFormat::Json);
    ncdrf::write_artifact(dir.join("good.json"), &body).expect("write");
    // Truncation: unparsable.
    ncdrf::write_artifact(dir.join("truncated.json"), &body[..body.len() / 3]).expect("write");
    // Token-level corruption: a counter bumped, so the declared totals
    // no longer match the per-cell sums and the parser refuses it.
    let hits = "\"misses\":";
    let at = body.find(hits).expect("counter member present") + hits.len();
    let digits: String = body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let bumped: u64 = digits.parse::<u64>().expect("counter parses") + 1;
    let corrupted = format!("{}{}{}", &body[..at], bumped, &body[at + digits.len()..]);
    ncdrf::write_artifact(dir.join("double-counted.json"), &corrupted).expect("write");

    let report = audit_dir(&dir).expect("audit runs");
    let parse_findings = report.findings.iter().filter(|f| f.rule == "parse").count();
    assert_eq!(
        parse_findings, 2,
        "both corrupted files are findings: {:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_signatures_are_separate_groups_not_findings() {
    let corpus_a = Corpus::small().take(2);
    let corpus_b = Corpus::small().take(3);
    let dir = temp_dir("mixed");
    for (tag, corpus) in [("a", &corpus_a), ("b", &corpus_b)] {
        let shard = small_sweep(corpus).shard(0, 1).expect("shard");
        ncdrf::write_artifact(
            dir.join(format!("grid-{tag}.json")),
            &shard.render(ReportFormat::Json),
        )
        .expect("write");
    }
    let report = audit_dir(&dir).expect("audit runs");
    assert!(report.clean(), "findings: {:?}", report.findings);
    assert_eq!(report.groups, 2);
    std::fs::remove_dir_all(&dir).ok();
}
