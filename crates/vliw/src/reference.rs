//! The sequential reference evaluator: the semantic ground truth a
//! pipelined execution must match.

use crate::memory::{apply_op, SimMemory};
use ncdrf_ddg::{Loop, OpId, ValueRef};
use std::collections::VecDeque;

/// Result of a sequential evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct RefResult {
    /// Final memory state.
    pub memory: SimMemory,
    /// Value produced by each op in the *last* iteration (stores hold the
    /// value they wrote). Useful for debugging mismatches.
    pub last_values: Vec<f64>,
}

/// Evaluates `iterations` iterations of `l` strictly in order, one
/// iteration at a time, with operations in a topological order of the
/// iteration-local (distance-0) dependences.
///
/// Cross-iteration operands (`dist > 0`) read a history of previous
/// iterations' values; iterations before the first read the producer's
/// declared `init` seed — the same convention the pipelined executor
/// implements with pre-loaded rotating registers.
///
/// # Panics
///
/// Panics if `l` contains a zero-distance dependence cycle (impossible for
/// loops built through [`ncdrf_ddg::LoopBuilder`], which validates).
pub fn evaluate(l: &Loop, iterations: u64) -> RefResult {
    let order = topo_order(l);
    let n = l.ops().len();
    let mut memory = SimMemory::new(l, iterations);

    // History ring: values of the most recent `depth` iterations.
    let max_dist = l
        .iter_ops()
        .flat_map(|(_, op)| op.inputs().iter())
        .filter_map(|v| v.op().map(|(_, d)| d))
        .chain(l.deps().iter().map(|d| d.dist))
        .max()
        .unwrap_or(0) as usize;
    let depth = max_dist + 1;
    let mut history: VecDeque<Vec<f64>> = VecDeque::with_capacity(depth);

    let mut current = vec![0.0f64; n];
    for i in 0..iterations as i64 {
        for &id in &order {
            let op = l.op(id);
            let read = |v: &ValueRef, current: &[f64]| -> f64 {
                match *v {
                    ValueRef::Op { id: p, dist } => {
                        if dist == 0 {
                            current[p.index()]
                        } else if (dist as i64) > i {
                            l.op(p).init()
                        } else {
                            history[dist as usize - 1][p.index()]
                        }
                    }
                    ValueRef::Inv(inv) => l.invariants()[inv.index()].value(),
                    ValueRef::Const(c) => c,
                }
            };
            let value = match op.kind() {
                ncdrf_ddg::OpKind::Load => {
                    let mem = op.mem().expect("loads carry a memory reference");
                    memory.read(mem.array, i, mem.offset)
                }
                ncdrf_ddg::OpKind::Store => {
                    let mem = op.mem().expect("stores carry a memory reference");
                    let v = read(&op.inputs()[0], &current);
                    memory.write(mem.array, i, mem.offset, v);
                    v
                }
                kind => {
                    let operands: Vec<f64> =
                        op.inputs().iter().map(|v| read(v, &current)).collect();
                    apply_op(kind, &operands)
                }
            };
            current[id.index()] = value;
        }
        history.push_front(current.clone());
        history.truncate(depth);
    }

    RefResult {
        memory,
        last_values: current,
    }
}

/// Topological order of the iteration-local dependence graph (distance-0
/// flow edges plus distance-0 explicit edges).
fn topo_order(l: &Loop) -> Vec<OpId> {
    let n = l.ops().len();
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, to, dist) in l.sched_edges() {
        if dist == 0 {
            succ[from.index()].push(to.index());
            indeg[to.index()] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(OpId::from_index(i));
        for &s in &succ[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    assert_eq!(order.len(), n, "zero-distance cycle in validated loop");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::init_element;
    use ncdrf_ddg::{LoopBuilder, Weight};

    #[test]
    fn daxpy_matches_hand_computation() {
        // z[i] = a*x[i] + y[i]
        let mut b = LoopBuilder::new("daxpy");
        let a = b.invariant("a", 2.5);
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let lx = b.load("LX", x, 0);
        let ly = b.load("LY", y, 0);
        let m = b.mul("M", lx.now(), a);
        let s = b.add("A", m.now(), ly.now());
        b.store("S", z, 0, s.now());
        let l = b.finish(Weight::default()).unwrap();

        let r = evaluate(&l, 8);
        let zi = l.find_array("z").unwrap();
        for i in 0..8usize {
            let expect = 2.5 * init_element(0, i) + init_element(1, i);
            assert_eq!(r.memory.buffer(zi)[i], expect, "i={i}");
        }
    }

    #[test]
    fn reduction_uses_init_seed() {
        // s = s + x[i], s0 = 10.
        let mut b = LoopBuilder::new("sum");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        b.set_init(s, 10.0);
        b.store("ST", z, 0, s.now());
        let l = b.finish(Weight::default()).unwrap();

        let r = evaluate(&l, 4);
        let mut expect = 10.0;
        let zi = l.find_array("z").unwrap();
        for i in 0..4usize {
            expect += init_element(0, i);
            assert_eq!(r.memory.buffer(zi)[i], expect, "i={i}");
        }
    }

    #[test]
    fn in_place_update_sees_previous_store() {
        // y[i] = y[i] + y[i-1]  (load of y[i-1] must see iteration i-1's
        // store, enforced by a mem dep).
        let mut b = LoopBuilder::new("scan");
        let y = b.array_inout("y");
        let l0 = b.load("L0", y, 0);
        let l1 = b.load("L1", y, -1);
        let a = b.add("A", l0.now(), l1.now());
        let st = b.store("S", y, 0, a.now());
        b.mem_dep(st, l1, 1);
        let l = b.finish(Weight::default()).unwrap();

        let r = evaluate(&l, 3);
        let yi = l.find_array("y").unwrap();
        // Buffer is shifted by 1 (offset -1): logical y[i] = buffer[i+1].
        let y_init: Vec<f64> = (0..5).map(|j| init_element(0, j)).collect();
        let y0 = y_init[1] + y_init[0];
        let y1 = y_init[2] + y0;
        let y2 = y_init[3] + y1;
        assert_eq!(r.memory.buffer(yi)[1], y0);
        assert_eq!(r.memory.buffer(yi)[2], y1);
        assert_eq!(r.memory.buffer(yi)[3], y2);
    }

    #[test]
    fn zero_iterations_leaves_memory_initial() {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        b.store("S", z, 0, ld.now());
        let l = b.finish(Weight::default()).unwrap();
        let r = evaluate(&l, 0);
        let zi = l.find_array("z").unwrap();
        assert!(r.memory.buffer(zi).iter().all(|&v| v == 0.0));
    }
}
