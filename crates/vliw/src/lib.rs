//! Cycle-accurate execution of modulo-scheduled loops on simulated
//! rotating-register-file VLIW hardware.
//!
//! The paper assumes Cydra-5-style architectural support (rotating
//! register files, no code replication) as a given substrate. This crate
//! *builds* that substrate and uses it as the end-to-end correctness
//! oracle of the reproduction:
//!
//! * [`execute`] expands a modulo schedule into its prologue / steady
//!   state / epilogue (operation `o` of iteration `i` issues at
//!   `start(o) + i * II`) and interprets it cycle by cycle against a
//!   unified or non-consistent dual register file, with rotating-register
//!   semantics and full latency respect, counting memory-bus occupancy
//!   along the way ([`BusStats`]);
//! * [`evaluate`] runs the same loop sequentially, one iteration at a
//!   time — the semantic ground truth;
//! * [`check_equivalence`] requires the two to produce bit-identical
//!   memory, which catches scheduler, allocator, swapper and spiller bugs
//!   alike.
//!
//! # Example
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_sched::modulo_schedule;
//! use ncdrf_regalloc::{allocate_unified, lifetimes};
//! use ncdrf_vliw::{check_equivalence, Binding};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("axpy");
//! let a = b.invariant("a", 3.0);
//! let x = b.array_in("x");
//! let z = b.array_out("z");
//! let l = b.load("L", x, 0);
//! let m = b.mul("M", l.now(), a);
//! b.store("S", z, 0, m.now());
//! let lp = b.finish(Weight::default())?;
//!
//! let machine = Machine::clustered(3, 1);
//! let sched = modulo_schedule(&lp, &machine)?;
//! let lts = lifetimes(&lp, &machine, &sched)?;
//! let alloc = allocate_unified(&lts, sched.ii());
//! let run = check_equivalence(
//!     &lp, &machine, &sched, &Binding::unified(&lts, &alloc), 32)?;
//! assert!(run.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod equiv;
mod exec;
mod memory;
mod reference;

pub use equiv::{check_equivalence, EquivError};
pub use exec::{execute, static_bus_density, Binding, BusStats, ExecError, ExecResult};
pub use memory::{apply_op, init_element, SimMemory};
pub use reference::{evaluate, RefResult};
