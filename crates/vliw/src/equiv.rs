//! Equivalence checking: a pipelined execution must produce exactly the
//! memory state of the sequential reference.

use crate::exec::{execute, Binding, ExecError, ExecResult};
use crate::reference::evaluate;
use ncdrf_ddg::Loop;
use ncdrf_machine::Machine;
use ncdrf_sched::Schedule;
use std::fmt;

/// A divergence between the pipelined execution and the reference.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// The executor itself failed.
    Exec(ExecError),
    /// Memory contents differ at the given array and element.
    Mismatch {
        /// Array name.
        array: String,
        /// Element index (buffer coordinates).
        index: usize,
        /// Value produced by the pipelined execution.
        got: f64,
        /// Value produced by the sequential reference.
        expected: f64,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Exec(e) => write!(f, "execution failed: {e}"),
            EquivError::Mismatch {
                array,
                index,
                got,
                expected,
            } => write!(
                f,
                "memory mismatch in `{array}[{index}]`: pipelined {got}, reference {expected}"
            ),
        }
    }
}

impl std::error::Error for EquivError {}

impl From<ExecError> for EquivError {
    fn from(e: ExecError) -> Self {
        EquivError::Exec(e)
    }
}

/// Executes `l` both pipelined (under `sched` + `binding`) and
/// sequentially, and requires bit-identical memory (both interpreters
/// apply the same floating-point operations in the same per-value order,
/// so exact equality is the correct criterion; NaN never arises from the
/// nonzero deterministic inputs).
///
/// This is the end-to-end oracle for the entire pipeline: a dependence
/// violated by the scheduler, a lifetime mis-computed by the allocator, a
/// register clobbered by an over-tight allocation, or an unsound swap /
/// spill rewrite all surface here as a memory mismatch.
///
/// # Errors
///
/// Returns [`EquivError::Mismatch`] on the first differing element, or
/// [`EquivError::Exec`] if the executor rejects the binding.
pub fn check_equivalence(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    binding: &Binding<'_>,
    iterations: u64,
) -> Result<ExecResult, EquivError> {
    let run = execute(l, machine, sched, binding, iterations)?;
    let reference = evaluate(l, iterations);
    for (a, decl) in l.arrays().iter().enumerate() {
        let id = l.find_array(decl.name()).expect("array exists");
        let got = run.memory.buffer(id);
        let expected = reference.memory.buffer(id);
        debug_assert_eq!(got.len(), expected.len());
        for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
            if g != e && !(g.is_nan() && e.is_nan()) {
                return Err(EquivError::Mismatch {
                    array: l.arrays()[a].name().to_owned(),
                    index,
                    got: g,
                    expected: e,
                });
            }
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_regalloc::{allocate_dual, allocate_unified, classify, lifetimes, UnifiedAlloc};
    use ncdrf_sched::modulo_schedule;

    /// The paper's §4 example loop (Figure 2).
    fn fig2() -> Loop {
        let mut b = LoopBuilder::new("fig2");
        let r = b.invariant("r", 0.5);
        let t = b.invariant("t", 1.5);
        let x = b.array_in("x");
        let y = b.array_inout("y");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", y, 0);
        let m3 = b.mul("M3", l2.now(), r);
        let a4 = b.add("A4", m3.now(), t);
        let m5 = b.mul("M5", a4.now(), l1.now());
        let a6 = b.add("A6", m5.now(), l1.now());
        b.store("S7", y, 0, a6.now());
        b.finish(Weight::new(100, 1)).unwrap()
    }

    #[test]
    fn unified_pipeline_is_equivalent() {
        let l = fig2();
        let machine = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let alloc = allocate_unified(&lts, sched.ii());
        let binding = Binding::unified(&lts, &alloc);
        check_equivalence(&l, &machine, &sched, &binding, 40).unwrap();
    }

    #[test]
    fn dual_pipeline_is_equivalent() {
        let l = fig2();
        let machine = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let classes = classify(&l, &machine, &sched, &lts);
        let alloc = allocate_dual(&lts, &classes, sched.ii());
        let binding = Binding::dual(&lts, &alloc);
        check_equivalence(&l, &machine, &sched, &binding, 40).unwrap();
    }

    #[test]
    fn dual_after_swapping_is_equivalent() {
        let l = fig2();
        let machine = Machine::clustered(3, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        ncdrf_swap_like_pass(&l, &machine, &mut sched);
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let classes = classify(&l, &machine, &sched, &lts);
        let alloc = allocate_dual(&lts, &classes, sched.ii());
        let binding = Binding::dual(&lts, &alloc);
        check_equivalence(&l, &machine, &sched, &binding, 40).unwrap();
    }

    /// A miniature stand-in for the swap pass (the real one lives in
    /// `ncdrf-swap`, which depends on this crate being independent):
    /// exchange the first legal cross-cluster pair found.
    fn ncdrf_swap_like_pass(l: &Loop, machine: &Machine, sched: &mut ncdrf_sched::Schedule) {
        let n = l.ops().len();
        for a in 0..n {
            for b in (a + 1)..n {
                let (ida, idb) = (
                    ncdrf_ddg::OpId::from_index(a),
                    ncdrf_ddg::OpId::from_index(b),
                );
                if sched.unit(ida).group == sched.unit(idb).group
                    && sched.kernel_slot(ida) == sched.kernel_slot(idb)
                    && sched.cluster(ida, machine) != sched.cluster(idb, machine)
                {
                    sched.swap_units(ida, idb);
                    return;
                }
            }
        }
    }

    #[test]
    fn broken_allocation_is_detected() {
        let l = fig2();
        let machine = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let broken = UnifiedAlloc {
            regs: 2,
            offsets: (0..lts.len() as u32).map(|i| i % 2).collect(),
        };
        let binding = Binding::unified(&lts, &broken);
        let err = check_equivalence(&l, &machine, &sched, &binding, 30);
        assert!(matches!(err, Err(EquivError::Mismatch { .. })));
    }

    #[test]
    fn reduction_recurrence_is_equivalent() {
        let mut b = LoopBuilder::new("dotp");
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let lx = b.load("LX", x, 0);
        let ly = b.load("LY", y, 0);
        let m = b.mul("M", lx.now(), ly.now());
        let s = b.reserve_add("S");
        b.bind(s, [m.now(), s.prev(1)]);
        b.set_init(s, 0.0);
        b.store("ST", z, 0, s.now());
        let l = b.finish(Weight::default()).unwrap();

        for lat in [3, 6] {
            let machine = Machine::clustered(lat, 1);
            let sched = modulo_schedule(&l, &machine).unwrap();
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let classes = classify(&l, &machine, &sched, &lts);
            let alloc = allocate_dual(&lts, &classes, sched.ii());
            let binding = Binding::dual(&lts, &alloc);
            check_equivalence(&l, &machine, &sched, &binding, 25).unwrap();
        }
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_regalloc::{allocate_multi, classify_multi, lifetimes};
    use ncdrf_sched::modulo_schedule;

    /// A wide loop with enough independent lanes to spread over four
    /// clusters.
    fn wide() -> Loop {
        let mut b = LoopBuilder::new("wide4c");
        let c = b.invariant("c", 1.5);
        let x = b.array_in("x");
        let z = b.array_out("z");
        let mut sums = Vec::new();
        for lane in 0..4 {
            let l = b.load(format!("L{lane}"), x, lane as i64);
            let m = b.mul(format!("M{lane}"), l.now(), c);
            let a = b.add(format!("A{lane}"), m.now(), l.now());
            sums.push(a.now());
        }
        let t1 = b.add("T1", sums[0], sums[1]);
        let t2 = b.add("T2", sums[2], sums[3]);
        let t3 = b.add("T3", t1.now(), t2.now());
        b.store("S", z, 0, t3.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn four_cluster_pipeline_is_equivalent() {
        let l = wide();
        for lat in [3, 6] {
            let machine = Machine::clustered_n(4, lat, 1);
            let sched = modulo_schedule(&l, &machine).unwrap();
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let sets = classify_multi(&l, &machine, &sched, &lts);
            let alloc = allocate_multi(&lts, &sets, sched.ii(), 4);
            let binding = Binding::multi(&lts, &alloc, 4);
            check_equivalence(&l, &machine, &sched, &binding, 30)
                .unwrap_or_else(|e| panic!("L{lat}: {e}"));
        }
    }

    #[test]
    fn two_cluster_multi_binding_matches_dual_binding() {
        use ncdrf_regalloc::{allocate_dual, classify};
        let l = wide();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();

        let classes = classify(&l, &machine, &sched, &lts);
        let dual = allocate_dual(&lts, &classes, sched.ii());
        let d = check_equivalence(&l, &machine, &sched, &Binding::dual(&lts, &dual), 24).unwrap();

        let sets = classify_multi(&l, &machine, &sched, &lts);
        let multi = allocate_multi(&lts, &sets, sched.ii(), 2);
        let m =
            check_equivalence(&l, &machine, &sched, &Binding::multi(&lts, &multi, 2), 24).unwrap();

        assert_eq!(d.cycles, m.cycles);
        assert_eq!(d.bus, m.bus);
    }

    #[test]
    fn corrupted_multi_classification_is_caught() {
        use ncdrf_machine::ClusterId;
        use ncdrf_regalloc::ClusterSet;
        let l = wide();
        let machine = Machine::clustered_n(4, 3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let mut sets = classify_multi(&l, &machine, &sched, &lts);
        // Shrink some replicated value to a single (wrong) subfile.
        let Some(i) = sets.iter().position(|s| s.count() > 1) else {
            return;
        };
        let wrong = (0..4)
            .map(ClusterId)
            .find(|&c| !sets[i].contains(c) || sets[i].count() > 1)
            .unwrap();
        sets[i] = ClusterSet::only(wrong);
        // Force the set to differ from at least one consumer's cluster.
        let alloc = allocate_multi(&lts, &sets, sched.ii(), 4);
        let r = check_equivalence(&l, &machine, &sched, &Binding::multi(&lts, &alloc, 4), 24);
        // Either the misrouted read produces wrong data (Mismatch) or, if
        // the consumers happened to live in `wrong`, the run still passes;
        // assert only that the oracle never crashes.
        let _ = r;
    }
}
