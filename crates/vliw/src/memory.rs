//! The simulated memory shared by the VLIW executor and the reference
//! evaluator.

use ncdrf_ddg::{ArrayId, ArrayRole, Loop};

/// Deterministic initial contents of array element `j` of array `a`.
///
/// Both the pipelined executor and the sequential reference evaluator
/// initialise memory with this function, so equivalence checks compare
/// computations over identical inputs. Outputs start at zero; inputs and
/// in/out arrays get a varied, sign-mixed pattern that exercises all
/// arithmetic paths (no zeros, so divisions stay finite).
pub fn init_element(a: usize, j: usize) -> f64 {
    let v = ((a * 37 + j * 101) % 199) as i64 - 99;
    let v = if v == 0 { 7 } else { v };
    v as f64 / 8.0
}

/// A flat simulated memory for one loop execution: one buffer per array,
/// index-shifted so negative affine offsets stay in bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMemory {
    buffers: Vec<Vec<f64>>,
    shift: i64,
}

impl SimMemory {
    /// Allocates and initialises memory for executing `iterations`
    /// iterations of `l`. Every address `i + offset` with
    /// `0 <= i < iterations` and any offset used by the loop is in bounds.
    pub fn new(l: &Loop, iterations: u64) -> Self {
        let mut min_off = 0i64;
        let mut max_off = 0i64;
        for op in l.ops() {
            if let Some(mem) = op.mem() {
                min_off = min_off.min(mem.offset);
                max_off = max_off.max(mem.offset);
            }
        }
        let shift = -min_off;
        let len = (iterations as i64 + max_off + shift + 1) as usize;
        let buffers = l
            .arrays()
            .iter()
            .enumerate()
            .map(|(a, decl)| match decl.role() {
                ArrayRole::Output => vec![0.0; len],
                _ => (0..len).map(|j| init_element(a, j)).collect(),
            })
            .collect();
        SimMemory { buffers, shift }
    }

    fn index(&self, i: i64, offset: i64) -> usize {
        (i + offset + self.shift) as usize
    }

    /// Reads `array[i + offset]` for iteration `i`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of the simulated range (an executor
    /// bug, not a user error).
    pub fn read(&self, array: ArrayId, i: i64, offset: i64) -> f64 {
        self.buffers[array.index()][self.index(i, offset)]
    }

    /// Writes `array[i + offset]` for iteration `i`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of the simulated range.
    pub fn write(&mut self, array: ArrayId, i: i64, offset: i64, value: f64) {
        let idx = self.index(i, offset);
        self.buffers[array.index()][idx] = value;
    }

    /// The final contents of `array` (including the index-shift padding).
    pub fn buffer(&self, array: ArrayId) -> &[f64] {
        &self.buffers[array.index()]
    }

    /// Number of arrays.
    pub fn arrays(&self) -> usize {
        self.buffers.len()
    }
}

/// The semantics of each operation kind, shared by both interpreters so
/// pipelined execution and the sequential reference produce bit-identical
/// results.
pub fn apply_op(kind: ncdrf_ddg::OpKind, operands: &[f64]) -> f64 {
    use ncdrf_ddg::OpKind::*;
    match kind {
        FpAdd => operands[0] + operands[1],
        FpSub => operands[0] - operands[1],
        FpMul => operands[0] * operands[1],
        FpDiv => operands[0] / operands[1],
        // Model int<->fp conversion as truncation: deterministic and
        // non-identity, so a misrouted conv is caught by the equivalence
        // check.
        Conv => operands[0].trunc(),
        Load | Store => unreachable!("memory ops are interpreted, not applied"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, OpKind, Weight};

    fn loop_with_offsets() -> Loop {
        let mut b = LoopBuilder::new("stencil");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let lm = b.load("LM", x, -2);
        let lp = b.load("LP", x, 3);
        let a = b.add("A", lm.now(), lp.now());
        b.store("S", z, 0, a.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn negative_offsets_in_bounds() {
        let l = loop_with_offsets();
        let m = SimMemory::new(&l, 10);
        let x = l.find_array("x").unwrap();
        // Iteration 0 reads x[-2]; iteration 9 reads x[12].
        let _ = m.read(x, 0, -2);
        let _ = m.read(x, 9, 3);
    }

    #[test]
    fn outputs_start_zeroed_inputs_do_not() {
        let l = loop_with_offsets();
        let m = SimMemory::new(&l, 4);
        let x = l.find_array("x").unwrap();
        let z = l.find_array("z").unwrap();
        assert!(m.buffer(z).iter().all(|&v| v == 0.0));
        assert!(m.buffer(x).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let l = loop_with_offsets();
        let mut m = SimMemory::new(&l, 4);
        let z = l.find_array("z").unwrap();
        m.write(z, 2, 0, 42.5);
        assert_eq!(m.read(z, 2, 0), 42.5);
        assert_eq!(m.read(z, 1, 1), 42.5); // same address, different split
    }

    #[test]
    fn init_is_deterministic_and_nonzero() {
        for a in 0..8 {
            for j in 0..256 {
                assert_eq!(init_element(a, j), init_element(a, j));
                assert_ne!(init_element(a, j), 0.0, "a={a} j={j}");
            }
        }
    }

    #[test]
    fn conv_truncates() {
        assert_eq!(apply_op(OpKind::Conv, &[3.7]), 3.0);
        assert_eq!(apply_op(OpKind::Conv, &[-3.7]), -3.0);
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(apply_op(OpKind::FpAdd, &[2.0, 3.0]), 5.0);
        assert_eq!(apply_op(OpKind::FpSub, &[2.0, 3.0]), -1.0);
        assert_eq!(apply_op(OpKind::FpMul, &[2.0, 3.0]), 6.0);
        assert_eq!(apply_op(OpKind::FpDiv, &[3.0, 2.0]), 1.5);
    }
}
