//! The pipelined VLIW executor: runs a modulo schedule plus a register
//! allocation on simulated hardware, cycle by cycle.

use crate::memory::{apply_op, SimMemory};
use ncdrf_ddg::{Loop, OpKind, ValueRef};
use ncdrf_machine::Machine;
use ncdrf_regalloc::{ClusterSet, DualAlloc, Lifetime, MultiAlloc, UnifiedAlloc, ValueClass};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How values are bound to physical registers for execution: the glue
/// between `ncdrf-regalloc`'s output and the executor.
#[derive(Debug, Clone)]
pub struct Binding<'a> {
    lifetimes: &'a [Lifetime],
    offsets: &'a [u32],
    kind: BindingKind<'a>,
    regs: u32,
}

#[derive(Debug, Clone)]
enum BindingKind<'a> {
    Unified,
    Dual(&'a [ValueClass]),
    Multi(&'a [ClusterSet], u32),
}

impl<'a> Binding<'a> {
    /// Binding for a unified rotating register file.
    ///
    /// # Panics
    ///
    /// Panics if `alloc.offsets` and `lifetimes` have different lengths.
    pub fn unified(lifetimes: &'a [Lifetime], alloc: &'a UnifiedAlloc) -> Self {
        assert_eq!(lifetimes.len(), alloc.offsets.len());
        Binding {
            lifetimes,
            offsets: &alloc.offsets,
            kind: BindingKind::Unified,
            regs: alloc.regs,
        }
    }

    /// Binding for a non-consistent dual register file: each subfile holds
    /// `alloc.regs` rotating registers; globals are written to both,
    /// locals only to their cluster's subfile.
    ///
    /// # Panics
    ///
    /// Panics if the allocation's vectors and `lifetimes` have different
    /// lengths.
    pub fn dual(lifetimes: &'a [Lifetime], alloc: &'a DualAlloc) -> Self {
        assert_eq!(lifetimes.len(), alloc.offsets.len());
        assert_eq!(lifetimes.len(), alloc.classes.len());
        Binding {
            lifetimes,
            offsets: &alloc.offsets,
            kind: BindingKind::Dual(&alloc.classes),
            regs: alloc.regs,
        }
    }

    /// Binding for a `clusters`-subfile non-consistent register file (the
    /// k-cluster extension): each value is written to every subfile in
    /// its [`ClusterSet`] and read from the consumer's own subfile.
    ///
    /// # Panics
    ///
    /// Panics if the allocation's vectors and `lifetimes` have different
    /// lengths, or `clusters == 0` or exceeds 32.
    pub fn multi(lifetimes: &'a [Lifetime], alloc: &'a MultiAlloc, clusters: u32) -> Self {
        assert_eq!(lifetimes.len(), alloc.offsets.len());
        assert_eq!(lifetimes.len(), alloc.sets.len());
        assert!(clusters > 0 && clusters <= 32);
        Binding {
            lifetimes,
            offsets: &alloc.offsets,
            kind: BindingKind::Multi(&alloc.sets, clusters),
            regs: alloc.regs,
        }
    }

    /// Registers per (sub)file.
    pub fn regs(&self) -> u32 {
        self.regs
    }

    /// Number of register subfiles (1 for unified).
    pub fn files(&self) -> u32 {
        match self.kind {
            BindingKind::Unified => 1,
            BindingKind::Dual(_) => 2,
            BindingKind::Multi(_, k) => k,
        }
    }

    /// Whether this is a multi-subfile binding.
    pub fn is_dual(&self) -> bool {
        self.files() > 1
    }
}

/// Bus-occupancy counters of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Memory operations issued (loads + stores).
    pub accesses: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Memory ports of the machine (bus width).
    pub ports: u32,
}

impl BusStats {
    /// Density of memory traffic: the average fraction of the bus
    /// bandwidth used per cycle (the paper's Figure 9 metric).
    pub fn density(&self) -> f64 {
        if self.cycles == 0 || self.ports == 0 {
            0.0
        } else {
            self.accesses as f64 / (self.cycles as f64 * self.ports as f64)
        }
    }
}

/// Result of a pipelined execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Final memory state.
    pub memory: SimMemory,
    /// Total cycles until the last write retired.
    pub cycles: u64,
    /// Bus occupancy.
    pub bus: BusStats,
}

/// Failure to execute a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The binding provides no registers although the loop produces values.
    NoRegisters,
    /// The loop produces a value with no lifetime entry (internal
    /// inconsistency between the schedule and the binding).
    MissingLifetime {
        /// Offending op name.
        op: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoRegisters => write!(f, "binding has zero registers"),
            ExecError::MissingLifetime { op } => {
                write!(f, "op `{op}` produces a value but has no lifetime binding")
            }
        }
    }
}

impl std::error::Error for ExecError {}

enum Write {
    Reg {
        file_mask: u32,
        phys: u32,
        value: f64,
    },
    Mem {
        array: ncdrf_ddg::ArrayId,
        iter: i64,
        offset: i64,
        value: f64,
    },
}

/// Executes `iterations` overlapped iterations of `l` under `sched`, with
/// registers assigned by `binding`, on simulated rotating-register-file
/// hardware. Prologue, steady state and epilogue all emerge from the same
/// expansion: operation `o` of iteration `i` issues at cycle
/// `start(o) + i * II`.
///
/// Register semantics: instance `i` of a value with rotating offset `r`
/// lives in physical register `(r + i) mod regs` of the relevant
/// subfile(s) — exactly the rotating-register-file behaviour the paper
/// assumes (Cydra-5 style). Cross-iteration reads that reach before
/// iteration 0 return the producer's `init` seed, modelling the loop
/// preamble that pre-loads recurrence registers.
///
/// # Errors
///
/// Returns [`ExecError`] if the binding is inconsistent with the loop.
pub fn execute(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    binding: &Binding<'_>,
    iterations: u64,
) -> Result<ExecResult, ExecError> {
    let n = l.ops().len();

    // Map op -> lifetime slot.
    let mut lt_slot = vec![usize::MAX; n];
    for (slot, lt) in binding.lifetimes.iter().enumerate() {
        lt_slot[lt.op.index()] = slot;
    }
    for (id, op) in l.iter_ops() {
        if op.kind().produces_value() && lt_slot[id.index()] == usize::MAX {
            return Err(ExecError::MissingLifetime {
                op: op.name().to_owned(),
            });
        }
    }
    let any_values = l.ops().iter().any(|op| op.kind().produces_value());
    if any_values && binding.regs == 0 {
        return Err(ExecError::NoRegisters);
    }

    let nfiles = binding.files() as usize;
    let regs = binding.regs.max(1) as usize;
    let mut files = vec![vec![0.0f64; regs]; nfiles];
    let mut memory = SimMemory::new(l, iterations);

    // Per-op file to read from / mask to write to.
    let read_file: Vec<usize> = l
        .iter_ops()
        .map(|(id, _)| {
            if binding.is_dual() {
                sched.cluster(id, machine).index().min(nfiles - 1)
            } else {
                0
            }
        })
        .collect();
    let write_mask: Vec<u32> = l
        .iter_ops()
        .map(|(id, op)| {
            if !op.kind().produces_value() {
                0
            } else {
                match binding.kind {
                    BindingKind::Unified => 0b01,
                    BindingKind::Dual(classes) => match classes[lt_slot[id.index()]] {
                        ValueClass::Global => 0b11,
                        ValueClass::Only(c) => 1 << c.index().min(1),
                    },
                    BindingKind::Multi(sets, _) => sets[lt_slot[id.index()]]
                        .iter()
                        .fold(0u32, |m, c| m | (1 << c.index().min(31))),
                }
            }
        })
        .collect();

    // Issue agenda: cycle -> (op, iteration), in deterministic order.
    let ii = sched.ii() as u64;
    let mut agenda: BTreeMap<u64, Vec<(usize, u64)>> = BTreeMap::new();
    for (id, _) in l.iter_ops() {
        for i in 0..iterations {
            agenda
                .entry(sched.start(id) as u64 + i * ii)
                .or_default()
                .push((id.index(), i));
        }
    }

    let latency: Vec<u32> = l
        .iter_ops()
        .map(|(_, op)| {
            machine
                .latency(op.kind())
                .expect("scheduled loop is servable")
        })
        .collect();

    let mut pending: BTreeMap<u64, Vec<Write>> = BTreeMap::new();
    let mut accesses = 0u64;
    let mut last_cycle = 0u64;

    let phys = |slot: usize, iter_of_value: i64| -> usize {
        let off = binding.offsets[slot] as i64;
        (off + iter_of_value).rem_euclid(regs as i64) as usize
    };

    loop {
        let next_issue = agenda.keys().next().copied();
        let next_write = pending.keys().next().copied();
        let t = match (next_issue, next_write) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        last_cycle = last_cycle.max(t);

        // 1. Retire writes landing at t (register and memory).
        if let Some(writes) = pending.remove(&t) {
            for w in writes {
                match w {
                    Write::Reg {
                        file_mask,
                        phys,
                        value,
                    } => {
                        for (f, file) in files.iter_mut().enumerate() {
                            if file_mask & (1 << f) != 0 {
                                file[phys as usize] = value;
                            }
                        }
                    }
                    Write::Mem {
                        array,
                        iter,
                        offset,
                        value,
                    } => memory.write(array, iter, offset, value),
                }
            }
        }

        // 2. Issue operations starting at t.
        let Some(issues) = agenda.remove(&t) else {
            continue;
        };
        for (opi, i) in issues {
            let id = ncdrf_ddg::OpId::from_index(opi);
            let op = l.op(id);
            let file = read_file[opi];
            let read = |v: &ValueRef| -> f64 {
                match *v {
                    ValueRef::Op { id: p, dist } => {
                        let iter_of_value = i as i64 - dist as i64;
                        if iter_of_value < 0 {
                            l.op(p).init()
                        } else {
                            files[file][phys(lt_slot[p.index()], iter_of_value)]
                        }
                    }
                    ValueRef::Inv(inv) => l.invariants()[inv.index()].value(),
                    ValueRef::Const(c) => c,
                }
            };

            let lat = latency[opi] as u64;
            match op.kind() {
                OpKind::Load => {
                    accesses += 1;
                    let mem = op.mem().expect("loads carry a memory reference");
                    let value = memory.read(mem.array, i as i64, mem.offset);
                    let slot = lt_slot[opi];
                    pending.entry(t + lat).or_default().push(Write::Reg {
                        file_mask: write_mask[opi],
                        phys: phys(slot, i as i64) as u32,
                        value,
                    });
                }
                OpKind::Store => {
                    accesses += 1;
                    let mem = op.mem().expect("stores carry a memory reference");
                    let value = read(&op.inputs()[0]);
                    pending.entry(t + lat).or_default().push(Write::Mem {
                        array: mem.array,
                        iter: i as i64,
                        offset: mem.offset,
                        value,
                    });
                }
                kind => {
                    let operands: Vec<f64> = op.inputs().iter().map(&read).collect();
                    let value = apply_op(kind, &operands);
                    let slot = lt_slot[opi];
                    pending.entry(t + lat).or_default().push(Write::Reg {
                        file_mask: write_mask[opi],
                        phys: phys(slot, i as i64) as u32,
                        value,
                    });
                }
            }
        }
    }

    let cycles = if iterations == 0 { 0 } else { last_cycle + 1 };
    Ok(ExecResult {
        memory,
        cycles,
        bus: BusStats {
            accesses,
            cycles,
            ports: machine.memory_ports() as u32,
        },
    })
}

/// The *static* density of memory traffic of a schedule in steady state:
/// memory operations per iteration divided by `II * memory ports`. The
/// paper's Figure 9 reports this quantity weighted over the corpus; a long
/// execution's measured [`BusStats::density`] converges to it.
pub fn static_bus_density(l: &Loop, machine: &Machine, ii: u32) -> f64 {
    let ports = machine.memory_ports();
    if ports == 0 || ii == 0 {
        return 0.0;
    }
    l.memory_ops() as f64 / (ii as f64 * ports as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_regalloc::{allocate_unified, lifetimes};
    use ncdrf_sched::modulo_schedule;

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let a = b.invariant("a", 2.5);
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let lx = b.load("LX", x, 0);
        let ly = b.load("LY", y, 0);
        let m = b.mul("M", lx.now(), a);
        let s = b.add("A", m.now(), ly.now());
        b.store("S", z, 0, s.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn unified_execution_matches_reference() {
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let alloc = allocate_unified(&lts, sched.ii());
        let binding = Binding::unified(&lts, &alloc);
        let run = execute(&l, &machine, &sched, &binding, 16).unwrap();
        let reference = crate::reference::evaluate(&l, 16);
        let z = l.find_array("z").unwrap();
        assert_eq!(run.memory.buffer(z), reference.memory.buffer(z));
    }

    #[test]
    fn pipelined_cycles_beat_sequential() {
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let alloc = allocate_unified(&lts, sched.ii());
        let binding = Binding::unified(&lts, &alloc);
        let n = 64;
        let run = execute(&l, &machine, &sched, &binding, n).unwrap();
        // Steady state: one iteration per II cycles (plus ramp).
        let expected = (n - 1) * sched.ii() as u64 + u64::from(sched.stages() * sched.ii());
        assert!(run.cycles <= expected + sched.ii() as u64);
        assert!(run.cycles >= n * sched.ii() as u64);
    }

    #[test]
    fn bus_counts_loads_and_stores() {
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let alloc = allocate_unified(&lts, sched.ii());
        let binding = Binding::unified(&lts, &alloc);
        let run = execute(&l, &machine, &sched, &binding, 10).unwrap();
        assert_eq!(run.bus.accesses, 30); // 2 loads + 1 store per iteration
        assert!(run.bus.density() > 0.0 && run.bus.density() <= 1.0);
    }

    #[test]
    fn zero_iterations() {
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let alloc = allocate_unified(&lts, sched.ii());
        let binding = Binding::unified(&lts, &alloc);
        let run = execute(&l, &machine, &sched, &binding, 0).unwrap();
        assert_eq!(run.cycles, 0);
        assert_eq!(run.bus.accesses, 0);
    }

    #[test]
    fn static_density_formula() {
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        // 3 mem ops, 2 ports: II=2 -> 0.75.
        assert_eq!(static_bus_density(&l, &machine, 2), 0.75);
    }

    #[test]
    fn too_small_allocation_breaks_equivalence() {
        // A deliberately wrong allocation (all offsets 0, 1 register) must
        // be *detected* by comparing against the reference — this is the
        // negative control for the whole executor-as-oracle approach.
        let l = daxpy();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let broken = UnifiedAlloc {
            regs: 1,
            offsets: vec![0; lts.len()],
        };
        let binding = Binding::unified(&lts, &broken);
        let run = execute(&l, &machine, &sched, &binding, 16).unwrap();
        let reference = crate::reference::evaluate(&l, 16);
        let z = l.find_array("z").unwrap();
        assert_ne!(run.memory.buffer(z), reference.memory.buffer(z));
    }
}
