//! The iterative spill-until-fits driver of the paper's §5.4.

use crate::resched::schedule_step;
use crate::rewrite::spill_value;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError};
use ncdrf_regalloc::{lifetimes, lifetimes_into, Lifetime};
use ncdrf_sched::{modulo_schedule_with, SchedContext, Schedule, ScheduleError, SchedulerOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The sanctioned narrow into the spiller's `u32` candidate-index
/// space: asserts the index fits instead of silently wrapping.
#[inline]
fn idx32(i: usize) -> u32 {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "candidate index {i} overflows u32"
    );
    i as u32
}

/// Victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpillPolicy {
    /// The paper's choice (§5.4): spill the value with the longest
    /// lifetime, "which in general will free a higher number of registers".
    #[default]
    LongestLifetime,
    /// Spill the value occupying the most registers (`ceil(lifetime/II)`);
    /// differs from the longest lifetime only through rounding, but directly
    /// targets the allocation cost.
    MostInstances,
    /// Spill the value with the fewest consuming operations (cheapest in
    /// added reload traffic).
    FewestUses,
    /// Uniformly random spillable value from a deterministic stream
    /// (ablation baseline).
    Random(u64),
}

/// Tuning knobs for the spiller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillOptions {
    /// Victim selection.
    pub policy: SpillPolicy,
    /// Hard bound on spilled values (the loop terminates anyway when no
    /// candidate remains; this guards pathological corpora).
    pub max_spills: usize,
    /// When every value is spilled and the loop still does not fit, retry
    /// scheduling with increasing II (register pressure shrinks as II
    /// grows). This goes beyond the paper's pseudo-code — which silently
    /// assumes spilling always converges — and is required for very small
    /// register files.
    pub escalate_ii: bool,
    /// Scheduler knobs used for every (re)scheduling round.
    pub scheduler: SchedulerOptions,
}

impl Default for SpillOptions {
    fn default() -> Self {
        SpillOptions {
            policy: SpillPolicy::default(),
            max_spills: 256,
            escalate_ii: true,
            scheduler: SchedulerOptions::default(),
        }
    }
}

/// Outcome of [`spill_until_fits`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillResult {
    /// The final (possibly rewritten) loop.
    pub l: Loop,
    /// Its final schedule.
    pub sched: Schedule,
    /// The register requirement of the final schedule, per the caller's
    /// requirement function.
    pub regs: u32,
    /// Whether `regs <= budget` was reached.
    pub fits: bool,
    /// Names of the spilled values, in spill order.
    pub spilled: Vec<String>,
    /// Spill stores added.
    pub spill_stores: usize,
    /// Reload loads added.
    pub spill_loads: usize,
    /// Scheduling + allocation rounds executed.
    pub rounds: usize,
}

impl SpillResult {
    /// Total memory operations added by spilling.
    pub fn added_mem_ops(&self) -> usize {
        self.spill_stores + self.spill_loads
    }
}

/// Failure of the spill loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// A (re)scheduling round failed.
    Schedule(ScheduleError),
    /// The requirement function failed.
    Machine(MachineError),
    /// The spill rewriter produced an invalid graph (a bug; surfaced for
    /// diagnosis rather than panicking deep inside a corpus sweep).
    Rewrite(String),
    /// A persisted [`crate::TrajectorySnapshot`] does not replay on this
    /// loop/machine/options combination: a recorded victim no longer
    /// exists, or a replayed step's requirement/II/memory-op count
    /// disagrees with the recorded value (a stale or foreign artifact).
    Snapshot(String),
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Schedule(e) => write!(f, "rescheduling failed: {e}"),
            SpillError::Machine(e) => write!(f, "requirement evaluation failed: {e}"),
            SpillError::Rewrite(e) => write!(f, "spill rewrite produced an invalid graph: {e}"),
            SpillError::Snapshot(e) => {
                write!(f, "persisted spill trajectory does not replay: {e}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

impl From<ScheduleError> for SpillError {
    fn from(e: ScheduleError) -> Self {
        SpillError::Schedule(e)
    }
}

impl From<MachineError> for SpillError {
    fn from(e: MachineError) -> Self {
        SpillError::Machine(e)
    }
}

/// Computes a register requirement for a scheduled loop. The function may
/// mutate the schedule (e.g. the swapped model runs the swapping pass as
/// part of requirement evaluation).
pub type RequirementFn<'a> =
    dyn FnMut(&Loop, &Machine, &mut Schedule) -> Result<u32, MachineError> + 'a;

/// The requirement of the **unified** register file model: registers of a
/// Wands-Only/First-Fit allocation on a single rotating file.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn requirement_unified(
    l: &Loop,
    machine: &Machine,
    sched: &mut Schedule,
) -> Result<u32, MachineError> {
    let lts = lifetimes(l, machine, sched)?;
    Ok(ncdrf_regalloc::allocate_unified(&lts, sched.ii()).regs)
}

/// Runs the paper's §5.4 loop:
///
/// ```text
/// DO
///   modulo scheduling
///   register allocation
///   IF registers needed > physical registers
///     select a value to spill out
///     modify the dependence graph
/// UNTIL registers needed <= physical registers
/// ```
///
/// `requirement` abstracts "register allocation" so the same driver serves
/// the unified, partitioned and swapped models (see
/// [`requirement_unified`]; the dual-file requirements live in the `ncdrf`
/// facade crate).
///
/// # Errors
///
/// Returns [`SpillError::Schedule`] when a round cannot be scheduled and
/// [`SpillError::Machine`] when the requirement function fails.
pub fn spill_until_fits(
    l: &Loop,
    machine: &Machine,
    budget: u32,
    requirement: &mut RequirementFn<'_>,
    opts: SpillOptions,
) -> Result<SpillResult, SpillError> {
    run_spill_loop(l, machine, None, budget, requirement, opts)
}

/// [`spill_until_fits`] seeded with an already-computed base schedule for
/// the *unmodified* loop: the first round reuses `base` instead of
/// re-running modulo scheduling, so callers that schedule once and
/// evaluate many models/budgets (the `ncdrf` facade's `Session`) skip the
/// dominant cost when no spilling is needed. Later rounds — which operate
/// on spill-rewritten loops — schedule normally.
///
/// `base` must be a schedule of `l` on `machine` produced with
/// `opts.scheduler`; results are then bit-identical to the unseeded
/// driver.
///
/// # Errors
///
/// Identical to [`spill_until_fits`].
pub fn spill_until_fits_seeded(
    l: &Loop,
    machine: &Machine,
    base: Schedule,
    budget: u32,
    requirement: &mut RequirementFn<'_>,
    opts: SpillOptions,
) -> Result<SpillResult, SpillError> {
    run_spill_loop(l, machine, Some(base), budget, requirement, opts)
}

fn run_spill_loop(
    l: &Loop,
    machine: &Machine,
    mut seeded: Option<Schedule>,
    budget: u32,
    requirement: &mut RequirementFn<'_>,
    opts: SpillOptions,
) -> Result<SpillResult, SpillError> {
    // `None` means "still the caller's unmodified loop": the steady path
    // only materialises an owned copy when it actually returns or spills,
    // and all scheduling/victim scratch lives in reused arenas.
    let mut current: Option<Loop> = None;
    let mut ctx = SchedContext::new();
    let mut scratch = VictimScratch::default();
    let mut excluded: HashSet<String> = HashSet::new();
    let mut spilled = Vec::new();
    let mut spill_stores = 0usize;
    let mut spill_loads = 0usize;
    let mut rounds = 0usize;
    let mut rng = Xorshift64::for_policy(opts.policy);

    loop {
        rounds += 1;
        let cur = current.as_ref().unwrap_or(l);
        let mut sched = match seeded.take() {
            Some(base) => base,
            None => schedule_step(&mut ctx, cur, machine, opts.scheduler)?,
        };
        let regs = requirement(cur, machine, &mut sched)?;
        if regs <= budget {
            return Ok(SpillResult {
                l: take_current(current, l),
                sched,
                regs,
                fits: true,
                spilled,
                spill_stores,
                spill_loads,
                rounds,
            });
        }

        let victim = if spilled.len() < opts.max_spills {
            select_victim(
                cur,
                machine,
                &sched,
                &excluded,
                opts.policy,
                &mut rng,
                &mut scratch,
            )?
        } else {
            None
        };

        let Some(victim) = victim else {
            // Nothing left to spill. Optionally trade II for pressure.
            if opts.escalate_ii {
                return escalate_ii(
                    take_current(current, l),
                    machine,
                    budget,
                    requirement,
                    opts,
                    SpillTally {
                        spilled,
                        spill_stores,
                        spill_loads,
                        rounds,
                    },
                );
            }
            return Ok(SpillResult {
                l: take_current(current, l),
                sched,
                regs,
                fits: false,
                spilled,
                spill_stores,
                spill_loads,
                rounds,
            });
        };

        let victim_name = cur.op(victim).name().to_owned();
        let (next, reload_names, stats) =
            spill_value(cur, victim).map_err(|e| SpillError::Rewrite(e.to_string()))?;
        excluded.insert(cur.op(victim).name().to_owned());
        excluded.extend(reload_names);
        spilled.push(victim_name);
        spill_stores += stats.stores_added;
        spill_loads += stats.loads_added;
        current = Some(next);
    }
}

/// The owned loop a cold exit of the spill loop hands back: the spilled
/// state when any spill happened, an owned copy of the caller's loop
/// otherwise.
fn take_current(current: Option<Loop>, l: &Loop) -> Loop {
    current.unwrap_or_else(|| l.to_owned())
}

pub(crate) struct SpillTally {
    pub(crate) spilled: Vec<String>,
    pub(crate) spill_stores: usize,
    pub(crate) spill_loads: usize,
    pub(crate) rounds: usize,
}

/// Fallback when spilling alone cannot fit: re-schedule at increasing II
/// until the requirement drops under the budget (it eventually does — at
/// II equal to the sequential length at most a handful of values overlap).
pub(crate) fn escalate_ii(
    l: Loop,
    machine: &Machine,
    budget: u32,
    requirement: &mut RequirementFn<'_>,
    opts: SpillOptions,
    tally: SpillTally,
) -> Result<SpillResult, SpillError> {
    let base = modulo_schedule_with(&l, machine, opts.scheduler)?;
    let seq_len: u32 = l
        .ops()
        .iter()
        .map(|op| machine.latency(op.kind()).unwrap_or(1) + 1)
        .sum::<u32>()
        + 1;
    let mut rounds = tally.rounds;
    let mut last = None;
    for ii in (base.ii() + 1)..=seq_len.max(base.ii() + 1) {
        rounds += 1;
        let Some(mut sched) =
            ncdrf_sched::schedule_at_ii(&l, machine, ii).map_err(SpillError::Machine)?
        else {
            continue;
        };
        let regs = requirement(&l, machine, &mut sched)?;
        if regs <= budget {
            return Ok(SpillResult {
                l,
                sched,
                regs,
                fits: true,
                spilled: tally.spilled,
                spill_stores: tally.spill_stores,
                spill_loads: tally.spill_loads,
                rounds,
            });
        }
        last = Some((sched, regs));
    }
    let (sched, regs) = match last {
        Some(x) => x,
        None => {
            let mut sched = base;
            let regs = requirement(&l, machine, &mut sched)?;
            (sched, regs)
        }
    };
    Ok(SpillResult {
        l,
        sched,
        regs,
        fits: regs <= budget,
        spilled: tally.spilled,
        spill_stores: tally.spill_stores,
        spill_loads: tally.spill_loads,
        rounds,
    })
}

/// Reusable arena for [`select_victim`]: lifetime and consumer buffers
/// plus candidate indices, so a spill descent's per-step victim selection
/// allocates nothing once warm.
#[derive(Debug, Clone, Default)]
pub(crate) struct VictimScratch {
    lts: Vec<Lifetime>,
    consumers: Vec<Vec<(OpId, u32)>>,
    candidates: Vec<u32>,
}

/// Selects the next value to spill among spillable candidates (value
/// producers not created by the spiller and not spilled before).
pub(crate) fn select_victim(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    excluded: &HashSet<String>,
    policy: SpillPolicy,
    rng: &mut Xorshift64,
    scratch: &mut VictimScratch,
) -> Result<Option<OpId>, MachineError> {
    l.consumers_into(&mut scratch.consumers);
    lifetimes_into(l, machine, sched, &scratch.consumers, &mut scratch.lts)?;
    let (lts, consumers) = (&scratch.lts, &scratch.consumers);
    scratch.candidates.clear();
    for (i, lt) in lts.iter().enumerate() {
        let op = l.op(lt.op);
        if !excluded.contains(op.name()) && !lt.is_empty() && spillable(l, lt.op) {
            scratch.candidates.push(idx32(i));
        }
    }
    let candidates = &scratch.candidates;
    if candidates.is_empty() {
        return Ok(None);
    }
    let ii = sched.ii();
    let chosen = match policy {
        SpillPolicy::LongestLifetime => candidates
            .iter()
            .map(|&i| &lts[i as usize])
            .max_by_key(|lt| (lt.len(), std::cmp::Reverse(lt.op))),
        SpillPolicy::MostInstances => candidates
            .iter()
            .map(|&i| &lts[i as usize])
            .max_by_key(|lt| (lt.instances(ii), std::cmp::Reverse(lt.op))),
        SpillPolicy::FewestUses => candidates
            .iter()
            .map(|&i| &lts[i as usize])
            .min_by_key(|lt| (consumers[lt.op.index()].len(), lt.op)),
        SpillPolicy::Random(_) => {
            let i = (rng.next() % candidates.len() as u64) as usize;
            Some(&lts[candidates[i] as usize])
        }
    };
    Ok(chosen.map(|lt| lt.op))
}

/// A value is spillable unless it was created by the spiller itself
/// (reloads are recognisable by name; re-spilling them cannot shorten any
/// lifetime and would not terminate).
fn spillable(l: &Loop, op: OpId) -> bool {
    !l.op(op).name().starts_with("RL.") && !l.op(op).name().starts_with("SS.")
}

/// Minimal deterministic PRNG for [`SpillPolicy::Random`] (no external
/// dependency; the corpus's statistical RNG lives in `ncdrf-corpus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Xorshift64(pub(crate) u64);

impl Xorshift64 {
    /// The stream a fresh spill run starts from: seeded for
    /// [`SpillPolicy::Random`], inert (but valid) for every other policy.
    pub(crate) fn for_policy(policy: SpillPolicy) -> Self {
        Xorshift64(match policy {
            SpillPolicy::Random(seed) => seed | 1,
            _ => 1,
        })
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_machine::Machine;
    use ncdrf_sched::verify;

    /// A loop with long lifetimes: several parallel chains ending in one
    /// store, so pressure is high at II=1.
    fn pressured() -> Loop {
        let mut b = LoopBuilder::new("pressured");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", x, 1);
        let m1 = b.mul("M1", l1.now(), l2.now());
        let m2 = b.mul("M2", m1.now(), l1.now());
        let a1 = b.add("A1", m2.now(), l2.now());
        let a2 = b.add("A2", a1.now(), l1.now());
        b.store("S", z, 0, a2.now());
        b.finish(Weight::new(50, 2)).unwrap()
    }

    #[test]
    fn no_spill_when_budget_is_large() {
        let l = pressured();
        let machine = Machine::clustered(3, 1);
        let r = spill_until_fits(
            &l,
            &machine,
            256,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap();
        assert!(r.fits);
        assert!(r.spilled.is_empty());
        assert_eq!(r.added_mem_ops(), 0);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn spilling_reaches_small_budget() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let baseline = {
            let mut sched = ncdrf_sched::modulo_schedule(&l, &machine).unwrap();
            requirement_unified(&l, &machine, &mut sched).unwrap()
        };
        let budget = baseline.saturating_sub(2).max(1);
        let r = spill_until_fits(
            &l,
            &machine,
            budget,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap();
        assert!(r.fits, "requirement {} > budget {}", r.regs, budget);
        assert!(r.regs <= budget);
        assert!(!r.spilled.is_empty() || r.rounds > 1);
        verify(&r.l, &machine, &r.sched).unwrap();
    }

    #[test]
    fn spilled_loop_has_more_memory_ops() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let r = spill_until_fits(
            &l,
            &machine,
            6,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap();
        if !r.spilled.is_empty() {
            assert_eq!(
                r.l.memory_ops(),
                l.memory_ops() + r.added_mem_ops(),
                "memory-op accounting must match the rewritten graph"
            );
        }
    }

    #[test]
    fn longest_lifetime_is_spilled_first() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let sched = ncdrf_sched::modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let longest = lts
            .iter()
            .max_by_key(|lt| (lt.len(), std::cmp::Reverse(lt.op)))
            .unwrap();
        let longest_name = l.op(longest.op).name().to_owned();

        let budget = ncdrf_regalloc::allocate_unified(&lts, sched.ii())
            .regs
            .saturating_sub(1);
        let r = spill_until_fits(
            &l,
            &machine,
            budget,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap();
        assert_eq!(r.spilled.first(), Some(&longest_name));
    }

    #[test]
    fn policies_all_converge() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        for policy in [
            SpillPolicy::LongestLifetime,
            SpillPolicy::MostInstances,
            SpillPolicy::FewestUses,
            SpillPolicy::Random(42),
        ] {
            let r = spill_until_fits(
                &l,
                &machine,
                8,
                &mut requirement_unified,
                SpillOptions {
                    policy,
                    ..SpillOptions::default()
                },
            )
            .unwrap();
            assert!(r.fits, "{policy:?} failed to fit");
            verify(&r.l, &machine, &r.sched).unwrap();
        }
    }

    #[test]
    fn tiny_budget_escalates_ii_or_reports_unfit() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let r = spill_until_fits(
            &l,
            &machine,
            2,
            &mut requirement_unified,
            SpillOptions::default(),
        )
        .unwrap();
        // With II escalation the loop eventually fits (pressure at huge II
        // is the max overlap of a single iteration's values, which spilling
        // has crushed to ~2-3 registers); either way the result is honest.
        if r.fits {
            assert!(r.regs <= 2);
        } else {
            assert!(r.regs > 2);
        }
        verify(&r.l, &machine, &r.sched).unwrap();
    }

    #[test]
    fn no_escalation_reports_unfit() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let r = spill_until_fits(
            &l,
            &machine,
            1,
            &mut requirement_unified,
            SpillOptions {
                escalate_ii: false,
                ..SpillOptions::default()
            },
        )
        .unwrap();
        assert!(!r.fits);
        assert!(r.regs > 1);
    }

    #[test]
    fn max_spills_caps_rewrites() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let r = spill_until_fits(
            &l,
            &machine,
            1,
            &mut requirement_unified,
            SpillOptions {
                max_spills: 2,
                escalate_ii: false,
                ..SpillOptions::default()
            },
        )
        .unwrap();
        assert!(r.spilled.len() <= 2);
    }
}
