//! Resumable spill trajectories: the §5.4 descent as a checkpointed,
//! budget-independent sequence.
//!
//! The spill loop's *path* — which value is spilled next, what the
//! rewritten loop and its schedule look like, what the requirement drops
//! to — depends only on the loop, the machine, the requirement function
//! and the [`SpillOptions`]; the register budget only decides **where
//! along that path the loop stops** (and whether the II-escalation
//! fallback runs once the path is exhausted). A multi-budget experiment
//! that re-runs [`crate::spill_until_fits`] per budget therefore redoes
//! the same rewrites: the budget-32 run retraces every step of the
//! budget-64 run before doing its own extra ones.
//!
//! A [`SpillTrajectory`] computes each step **once** and checkpoints it.
//! Evaluating a budget scans the checkpoints for the first one that fits
//! and only extends the trajectory when none does, so a descending
//! budget ladder (64 → 48 → 32 → 16) costs exactly the steps of the
//! deepest budget. [`SpillTrajectory::evaluate`] is bit-identical to
//! [`crate::spill_until_fits_seeded`] at every budget — the repository's
//! `trajectory_identity` differential suite and `proptest_spill`
//! property tests pin this, including via the `vliw` execution oracle.
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_sched::modulo_schedule;
//! use ncdrf_spill::{requirement_unified, SpillOptions, SpillTrajectory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("chain");
//! let x = b.array_in("x");
//! let z = b.array_out("z");
//! let l1 = b.load("L1", x, 0);
//! let l2 = b.load("L2", x, 1);
//! let m = b.mul("M", l1.now(), l2.now());
//! let a = b.add("A", m.now(), l1.now());
//! b.store("S", z, 0, a.now());
//! let lp = b.finish(Weight::default())?;
//!
//! let machine = Machine::clustered(6, 1);
//! let base = modulo_schedule(&lp, &machine)?;
//! let mut traj = SpillTrajectory::from_base(
//!     &lp, &machine, base, &mut requirement_unified, SpillOptions::default())?;
//! // A descending ladder: later budgets resume where earlier ones stopped.
//! let (r64, _) = traj.evaluate(&machine, 64, &mut requirement_unified)?;
//! let (r8, s8) = traj.evaluate(&machine, 8, &mut requirement_unified)?;
//! assert!(r64.fits && r8.fits);
//! assert!(r8.spilled.len() >= r64.spilled.len());
//! assert_eq!(s8.steps_computed, r8.spilled.len() - r64.spilled.len());
//! # Ok(())
//! # }
//! ```

use crate::resched::schedule_step;
use crate::rewrite::spill_value;
use crate::spiller::{escalate_ii, select_victim, SpillTally, VictimScratch, Xorshift64};
use crate::{RequirementFn, SpillError, SpillOptions, SpillResult};
use ncdrf_ddg::Loop;
use ncdrf_machine::Machine;
use ncdrf_sched::{SchedContext, Schedule};
use std::collections::HashSet;

/// Per-checkpoint certification hook for
/// [`SpillTrajectory::replay_with_checker`]: sees the step index (0 is
/// the unspilled base), the (rewritten) loop, the post-requirement
/// schedule and the requirement; an `Err` aborts the replay.
pub type CheckpointChecker<'a> =
    &'a mut dyn FnMut(usize, &Loop, &Schedule, u32) -> Result<(), String>;

/// The heavy state of a checkpoint: the rewritten loop and its schedule.
/// Retained only on the **record-minima frontier** (see
/// [`SpillCheckpoint::loop_state`]); every other checkpoint keeps just
/// its scalars.
#[derive(Debug, Clone, PartialEq)]
struct CheckpointState {
    /// The (rewritten) loop at this point of the descent.
    l: Loop,
    /// Its schedule, **after** the requirement function ran (the swapped
    /// model's requirement applies the swap pass as a side effect, and
    /// victim selection reads this post-requirement schedule — exactly
    /// as each round of the fresh driver does).
    sched: Schedule,
}

/// One committed step of a spill trajectory: the scalar record of the
/// loop after `k` spills, plus — on the record-minima frontier only —
/// the rewritten loop and schedule themselves.
///
/// The first-fit scan serves a budget from the *first* checkpoint whose
/// requirement fits, so any servable checkpoint is a **strict record
/// minimum** of the requirement sequence (every earlier checkpoint
/// demanded strictly more registers). Checkpoints off that frontier can
/// never be served; they drop their loop/schedule as soon as the descent
/// moves past them and keep only the scalars (which the snapshot format,
/// replay verification and per-step accounting still need). The
/// *terminal* checkpoint always retains state — it is the resume point
/// for deeper budgets and the base of the II-escalation fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillCheckpoint {
    /// Rewritten loop + schedule, on the frontier; pruned elsewhere.
    state: Option<CheckpointState>,
    /// Register requirement at this checkpoint.
    pub regs: u32,
    /// Initiation interval of this checkpoint's (post-requirement)
    /// schedule.
    pub ii: u32,
    /// Memory operations per iteration of the (rewritten) loop body.
    pub mem_ops: usize,
    /// The value spilled to reach this checkpoint (`None` for checkpoint
    /// zero, which is the unspilled loop).
    pub victim: Option<String>,
    /// Cumulative spill stores added up to and including this step.
    pub spill_stores: usize,
    /// Cumulative reload loads added up to and including this step.
    pub spill_loads: usize,
}

impl SpillCheckpoint {
    /// The rewritten loop, when this checkpoint retains it: checkpoints
    /// on the record-minima frontier (strict new lows the first-fit scan
    /// can serve — checkpoint 0 included) and the terminal checkpoint.
    /// `None` for interior checkpoints the scan can never serve.
    pub fn loop_state(&self) -> Option<&Loop> {
        self.state.as_ref().map(|s| &s.l)
    }

    /// The checkpoint's (post-requirement) schedule, under the same
    /// retention rule as [`SpillCheckpoint::loop_state`].
    pub fn schedule(&self) -> Option<&Schedule> {
        self.state.as_ref().map(|s| &s.sched)
    }

    /// Whether this checkpoint retains its loop/schedule state.
    pub fn is_frontier(&self) -> bool {
        self.state.is_some()
    }
}

/// One step of a serialized trajectory: the victim choice plus the
/// scalar observations needed to *serve* the checkpoint (and to verify a
/// replay) without carrying the rewritten loop or its schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStep {
    /// Name of the value spilled at this step.
    pub victim: String,
    /// Register requirement after the step.
    pub regs: u32,
    /// Initiation interval of the step's (post-requirement) schedule.
    pub ii: u32,
    /// Memory operations per iteration of the rewritten loop body.
    pub mem_ops: usize,
    /// Cumulative spill stores added up to and including this step.
    pub spill_stores: usize,
    /// Cumulative reload loads added up to and including this step.
    pub spill_loads: usize,
}

/// A serializable checkpoint record of a [`SpillTrajectory`]: the victim
/// choices, served requirements and per-step scalars — **not** the
/// rewritten loops or schedules. Enough to
///
/// * answer any budget a recorded checkpoint fits, without recomputing
///   anything ([`TrajectorySnapshot::first_fit`] plus the step scalars
///   reproduce the evaluation result exactly), and
/// * resume the descent: [`SpillTrajectory::replay`] re-derives the full
///   checkpoint states by replaying the recorded victims (skipping
///   victim selection), verifying each step against the recorded
///   requirement, so deeper budgets extend instead of respilling from
///   zero.
///
/// The descent is budget-independent, so a snapshot taken under one
/// budget set serves any other; it is only tied to the loop, machine,
/// requirement model and [`SpillOptions`] it was recorded under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectorySnapshot {
    /// Requirement of checkpoint 0 (the unspilled loop on the base
    /// schedule).
    pub base_regs: u32,
    /// II of the base checkpoint's (post-requirement) schedule.
    pub base_ii: u32,
    /// Memory operations per iteration of the unspilled loop.
    pub base_mem_ops: usize,
    /// The committed spill steps, in descent order.
    pub steps: Vec<SnapshotStep>,
    /// Whether the descent had exhausted (no further victim, or
    /// `max_spills` reached) when the snapshot was taken.
    pub exhausted: bool,
    /// PRNG state after the last committed victim selection, so a
    /// resumed [`crate::SpillPolicy::Random`] descent draws the same
    /// stream a fresh run would.
    pub rng: u64,
}

impl TrajectorySnapshot {
    /// The first recorded checkpoint whose requirement fits `budget`
    /// (`0` is the base checkpoint, `k > 0` the `k`-th spill step) — the
    /// state a fresh spill run at that budget would stop at.
    pub fn first_fit(&self, budget: u32) -> Option<usize> {
        if self.base_regs <= budget {
            return Some(0);
        }
        self.steps
            .iter()
            .position(|s| s.regs <= budget)
            .map(|i| i + 1)
    }

    /// Number of recorded spill steps.
    pub fn steps_recorded(&self) -> usize {
        self.steps.len()
    }

    /// The smallest register requirement any recorded checkpoint
    /// reached.
    pub fn min_regs(&self) -> u32 {
        self.steps
            .iter()
            .map(|s| s.regs)
            .min()
            .map_or(self.base_regs, |m| m.min(self.base_regs))
    }
}

/// What a [`SpillTrajectory::evaluate`] call cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Spill steps (graph rewrite + reschedule + requirement) computed
    /// by this call. Zero means no step was recomputed.
    pub steps_computed: usize,
    /// Whether the per-budget II-escalation fallback ran: the exhausted
    /// descent could not fit this budget, so the call re-ran the
    /// (budget-dependent, uncached) escalation scan. Such a call is
    /// *not* a pure checkpoint hit even when `steps_computed` is zero.
    pub escalated: bool,
}

/// A checkpointed, resumable run of the paper's §5.4 spill loop.
///
/// Construct once per `(loop, machine, requirement-model, options)` with
/// [`SpillTrajectory::from_base`], then [`evaluate`](Self::evaluate) any
/// number of budgets in any order; every step of the descent is computed
/// at most once. Results are bit-identical to a fresh
/// [`crate::spill_until_fits_seeded`] per budget.
#[derive(Debug, Clone)]
pub struct SpillTrajectory {
    opts: SpillOptions,
    /// Checkpoint `k` is the state after `k` spills; checkpoint 0 always
    /// exists (the unspilled loop on the seeded base schedule).
    checkpoints: Vec<SpillCheckpoint>,
    /// Names excluded from victim selection so far (spilled values and
    /// the reloads they introduced), exactly as the fresh driver tracks.
    excluded: HashSet<String>,
    /// PRNG state for [`crate::SpillPolicy::Random`], advanced once per
    /// committed victim selection so a resumed run draws the same stream
    /// a fresh run would.
    rng: Xorshift64,
    /// No further victim exists (or `max_spills` was reached): the
    /// descent cannot be extended, only escalated per budget.
    exhausted: bool,
    /// Incremental scheduling context threaded through every extension
    /// step (see [`ncdrf_sched::SchedContext`]): each `advance` reuses
    /// the previous step's arenas and clean placements.
    ctx: SchedContext,
    /// Victim-selection arena, reused across extension steps.
    scratch: VictimScratch,
}

impl SpillTrajectory {
    /// Starts a trajectory from an already-computed base schedule of the
    /// unmodified loop (see [`crate::spill_until_fits_seeded`] for the
    /// seeding contract: `base` must be a schedule of `l` on `machine`
    /// under `opts.scheduler`).
    ///
    /// # Errors
    ///
    /// Returns [`SpillError::Machine`] when the requirement function
    /// fails on the base schedule.
    pub fn from_base(
        l: &Loop,
        machine: &Machine,
        base: Schedule,
        requirement: &mut RequirementFn<'_>,
        opts: SpillOptions,
    ) -> Result<SpillTrajectory, SpillError> {
        let mut sched = base;
        let regs = requirement(l, machine, &mut sched)?;
        let ii = sched.ii();
        Ok(SpillTrajectory {
            opts,
            checkpoints: vec![SpillCheckpoint {
                regs,
                ii,
                mem_ops: l.memory_ops(),
                victim: None,
                spill_stores: 0,
                spill_loads: 0,
                state: Some(CheckpointState {
                    l: l.clone(),
                    sched,
                }),
            }],
            excluded: HashSet::new(),
            rng: Xorshift64::for_policy(opts.policy),
            exhausted: false,
            ctx: SchedContext::new(),
            scratch: VictimScratch::default(),
        })
    }

    /// Serializes this trajectory's committed state into its
    /// checkpoint record: victim choices, served requirements and the
    /// per-step scalars — not the rewritten loops or schedules (see
    /// [`TrajectorySnapshot`]).
    pub fn snapshot(&self) -> TrajectorySnapshot {
        let base = &self.checkpoints[0];
        TrajectorySnapshot {
            base_regs: base.regs,
            base_ii: base.ii,
            base_mem_ops: base.mem_ops,
            steps: self.checkpoints[1..]
                .iter()
                .map(|c| SnapshotStep {
                    victim: c.victim.clone().expect("steps past 0 have victims"),
                    regs: c.regs,
                    ii: c.ii,
                    mem_ops: c.mem_ops,
                    spill_stores: c.spill_stores,
                    spill_loads: c.spill_loads,
                })
                .collect(),
            exhausted: self.exhausted,
            rng: self.rng.0,
        }
    }

    /// Rebuilds a live trajectory from a persisted snapshot by
    /// *replaying* the recorded victims: each step re-runs the rewrite,
    /// reschedule and requirement — but not victim selection — and is
    /// verified against the recorded requirement/II/memory-op scalars,
    /// so a stale or foreign snapshot fails loudly instead of silently
    /// diverging. The restored trajectory is bit-identical to the one
    /// the snapshot was taken from and can be extended to deeper budgets
    /// exactly where the recorded descent left off.
    ///
    /// `l`, `base` and `opts` follow the [`SpillTrajectory::from_base`]
    /// seeding contract and must match what the snapshot was recorded
    /// under.
    ///
    /// # Errors
    ///
    /// [`SpillError::Snapshot`] when the snapshot does not replay on
    /// this loop (wrong base requirement, a recorded victim that no
    /// longer exists, or a step whose replayed scalars disagree);
    /// otherwise the usual scheduling/requirement errors of the replayed
    /// steps.
    pub fn replay(
        l: &Loop,
        machine: &Machine,
        base: Schedule,
        snapshot: &TrajectorySnapshot,
        requirement: &mut RequirementFn<'_>,
        opts: SpillOptions,
    ) -> Result<SpillTrajectory, SpillError> {
        SpillTrajectory::replay_with_checker(l, machine, base, snapshot, requirement, opts, None)
    }

    /// [`SpillTrajectory::replay`] with an optional per-checkpoint
    /// certification hook: after each restored checkpoint passes the
    /// recorded-scalar verification, `checker` sees its step index (0 is
    /// the unspilled base), the (rewritten) loop, the post-requirement
    /// schedule and the requirement. A checker rejection aborts the
    /// replay as [`SpillError::Snapshot`], carrying the checker's
    /// message — the restored prefix is discarded, exactly as for a
    /// scalar mismatch.
    ///
    /// # Errors
    ///
    /// Everything [`SpillTrajectory::replay`] returns, plus checker
    /// rejections.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_with_checker(
        l: &Loop,
        machine: &Machine,
        base: Schedule,
        snapshot: &TrajectorySnapshot,
        requirement: &mut RequirementFn<'_>,
        opts: SpillOptions,
        mut checker: Option<CheckpointChecker<'_>>,
    ) -> Result<SpillTrajectory, SpillError> {
        let mut traj = SpillTrajectory::from_base(l, machine, base, requirement, opts)?;
        let base_cp = &traj.checkpoints[0];
        if base_cp.regs != snapshot.base_regs {
            return Err(SpillError::Snapshot(format!(
                "base requirement is {}, the snapshot recorded {}",
                base_cp.regs, snapshot.base_regs
            )));
        }
        if let Some(c) = checker.as_mut() {
            let state = base_cp
                .state
                .as_ref()
                .expect("the terminal checkpoint retains its state");
            c(0, &state.l, &state.sched, base_cp.regs).map_err(SpillError::Snapshot)?;
        }
        for (i, step) in snapshot.steps.iter().enumerate() {
            let (checkpoint, reload_names) = {
                let last = traj.checkpoints.last().expect("checkpoint 0 exists");
                let last_state = last
                    .state
                    .as_ref()
                    .expect("the terminal checkpoint retains its state");
                let victim = last_state
                    .l
                    .iter_ops()
                    .find(|(_, op)| op.name() == step.victim)
                    .map(|(id, _)| id)
                    .ok_or_else(|| {
                        SpillError::Snapshot(format!(
                            "step {}: no value named `{}` to respill",
                            i + 1,
                            step.victim
                        ))
                    })?;
                let (next, reload_names, stats) = spill_value(&last_state.l, victim)
                    .map_err(|e| SpillError::Rewrite(e.to_string()))?;
                let mut sched = schedule_step(&mut traj.ctx, &next, machine, opts.scheduler)?;
                let regs = requirement(&next, machine, &mut sched)?;
                if regs != step.regs || sched.ii() != step.ii || next.memory_ops() != step.mem_ops {
                    return Err(SpillError::Snapshot(format!(
                        "step {} replays to regs {} / II {} / {} mem ops, the snapshot \
                         recorded {} / {} / {}",
                        i + 1,
                        regs,
                        sched.ii(),
                        next.memory_ops(),
                        step.regs,
                        step.ii,
                        step.mem_ops
                    )));
                }
                if let Some(c) = checker.as_mut() {
                    c(i + 1, &next, &sched, regs).map_err(SpillError::Snapshot)?;
                }
                (
                    SpillCheckpoint {
                        regs,
                        ii: sched.ii(),
                        mem_ops: next.memory_ops(),
                        victim: Some(step.victim.clone()),
                        spill_stores: last.spill_stores + stats.stores_added,
                        spill_loads: last.spill_loads + stats.loads_added,
                        state: Some(CheckpointState { l: next, sched }),
                    },
                    reload_names,
                )
            };
            traj.excluded.insert(step.victim.clone());
            traj.excluded.extend(reload_names);
            traj.checkpoints.push(checkpoint);
            // Replay prunes exactly as the original descent did (the
            // rule depends only on the requirement prefix), so the
            // restored trajectory is bit-identical, retention included.
            traj.prune_interior();
        }
        // The PRNG advanced once per committed selection in the recorded
        // run; the replay skipped selection, so restore the stream
        // directly. The exhausted flag is state, not derivable.
        traj.rng = Xorshift64(snapshot.rng);
        traj.exhausted = snapshot.exhausted;
        Ok(traj)
    }

    /// The committed checkpoints, from the unspilled loop onward.
    pub fn checkpoints(&self) -> &[SpillCheckpoint] {
        &self.checkpoints
    }

    /// Number of spill steps computed so far.
    pub fn steps(&self) -> usize {
        self.checkpoints.len() - 1
    }

    /// Whether the descent ran out of spillable values (or hit
    /// `max_spills`) — deeper budgets can only be served by the
    /// per-budget II-escalation fallback.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The smallest register requirement any checkpoint reached.
    pub fn min_regs(&self) -> u32 {
        self.checkpoints
            .iter()
            .map(|c| c.regs)
            .min()
            .expect("checkpoint 0 always exists")
    }

    /// The options this trajectory was built with.
    pub fn options(&self) -> SpillOptions {
        self.opts
    }

    /// The first checkpoint whose requirement fits `budget` — the state
    /// a fresh spill run at that budget would stop at.
    fn first_fit(&self, budget: u32) -> Option<usize> {
        self.checkpoints.iter().position(|c| c.regs <= budget)
    }

    /// The spilled-value names up to checkpoint `k`, in spill order.
    fn spilled_names(&self, k: usize) -> Vec<String> {
        self.checkpoints[1..=k]
            .iter()
            .map(|c| c.victim.clone().expect("steps past 0 have victims"))
            .collect()
    }

    /// Materialises the [`SpillResult`] a fresh run stopping at
    /// checkpoint `k` would return. `rounds` is `k + 1`: the fresh
    /// driver runs one schedule/allocate round per state it visits.
    /// `k` is always a first-fit hit or the terminal checkpoint, both of
    /// which retain their state (see [`SpillCheckpoint::loop_state`]).
    fn result_at(&self, k: usize, budget: u32) -> SpillResult {
        let cp = &self.checkpoints[k];
        let state = cp
            .state
            .as_ref()
            .expect("served checkpoints are on the record-minima frontier and retain state");
        SpillResult {
            l: state.l.clone(),
            sched: state.sched.clone(),
            regs: cp.regs,
            fits: cp.regs <= budget,
            spilled: self.spilled_names(k),
            spill_stores: cp.spill_stores,
            spill_loads: cp.spill_loads,
            rounds: k + 1,
        }
    }

    /// Computes one more spill step, committing it only if the whole
    /// step (victim selection, rewrite, reschedule, requirement)
    /// succeeds. Returns `Ok(false)` when the descent is exhausted.
    ///
    /// A failing step leaves the trajectory exactly as it was — the
    /// committed prefix stays valid for budgets it already serves, and a
    /// retry deterministically repeats (and re-fails) the same step,
    /// matching what a fresh run at the same budget would do.
    fn advance(
        &mut self,
        machine: &Machine,
        requirement: &mut RequirementFn<'_>,
    ) -> Result<bool, SpillError> {
        if self.exhausted {
            return Ok(false);
        }
        if self.steps() >= self.opts.max_spills {
            self.exhausted = true;
            return Ok(false);
        }
        // Work on copies of the mutable cursor state; commit at the end.
        let mut rng = self.rng;
        let step = {
            let last = self.checkpoints.last().expect("checkpoint 0 exists");
            let last_state = last
                .state
                .as_ref()
                .expect("the terminal checkpoint retains its state");
            let victim = select_victim(
                &last_state.l,
                machine,
                &last_state.sched,
                &self.excluded,
                self.opts.policy,
                &mut rng,
                &mut self.scratch,
            )?;
            let Some(victim) = victim else {
                self.exhausted = true;
                return Ok(false);
            };
            let victim_name = last_state.l.op(victim).name().to_owned();
            let (next, reload_names, stats) = spill_value(&last_state.l, victim)
                .map_err(|e| SpillError::Rewrite(e.to_string()))?;
            let mut sched = schedule_step(&mut self.ctx, &next, machine, self.opts.scheduler)?;
            let regs = requirement(&next, machine, &mut sched)?;
            (
                SpillCheckpoint {
                    regs,
                    ii: sched.ii(),
                    mem_ops: next.memory_ops(),
                    victim: Some(last_state.l.op(victim).name().to_owned()),
                    spill_stores: last.spill_stores + stats.stores_added,
                    spill_loads: last.spill_loads + stats.loads_added,
                    state: Some(CheckpointState { l: next, sched }),
                },
                victim_name,
                reload_names,
            )
        };
        let (checkpoint, victim_name, reload_names) = step;
        self.rng = rng;
        self.excluded.insert(victim_name);
        self.excluded.extend(reload_names);
        self.checkpoints.push(checkpoint);
        self.prune_interior();
        Ok(true)
    }

    /// Applies the retention rule to the checkpoint that just stopped
    /// being terminal: it keeps its loop/schedule only if it set a
    /// **strict** new requirement low (the first-fit scan picks the
    /// *first* fitting checkpoint, so a non-strict low can never be
    /// served — an earlier, equally-low checkpoint shadows it).
    /// Checkpoint 0 is always its own record minimum.
    fn prune_interior(&mut self) {
        let idx = self.checkpoints.len() - 2;
        if idx == 0 {
            return;
        }
        let prior_min = self.checkpoints[..idx]
            .iter()
            .map(|c| c.regs)
            .min()
            .expect("checkpoint 0 exists");
        if self.checkpoints[idx].regs >= prior_min {
            self.checkpoints[idx].state = None;
        }
    }

    /// Evaluates `budget`: serves it from the first fitting checkpoint,
    /// extending the trajectory only as far as this budget needs. When
    /// the descent exhausts without fitting, the per-budget fallback of
    /// the fresh driver runs (II escalation under
    /// [`SpillOptions::escalate_ii`], an honest unfit result otherwise).
    ///
    /// The returned [`SpillResult`] is bit-identical to
    /// [`crate::spill_until_fits_seeded`] with the same base schedule,
    /// requirement function and options; [`ResumeStats`] reports how many
    /// steps this call actually computed.
    ///
    /// # Errors
    ///
    /// Exactly the errors the fresh driver would produce at this budget.
    /// A failed extension does not invalidate the committed prefix:
    /// other budgets (and other models' trajectories) are unaffected.
    pub fn evaluate(
        &mut self,
        machine: &Machine,
        budget: u32,
        requirement: &mut RequirementFn<'_>,
    ) -> Result<(SpillResult, ResumeStats), SpillError> {
        let mut stats = ResumeStats::default();
        loop {
            if let Some(k) = self.first_fit(budget) {
                return Ok((self.result_at(k, budget), stats));
            }
            if !self.advance(machine, requirement)? {
                break;
            }
            stats.steps_computed += 1;
        }
        // Exhausted and nothing fits: the fresh driver's fallback, run
        // per budget from the terminal state (budget-dependent, so never
        // checkpointed).
        let terminal = self.checkpoints.len() - 1;
        let last = &self.checkpoints[terminal];
        if self.opts.escalate_ii {
            stats.escalated = true;
            let tally = SpillTally {
                spilled: self.spilled_names(terminal),
                spill_stores: last.spill_stores,
                spill_loads: last.spill_loads,
                rounds: terminal + 1,
            };
            let r = escalate_ii(
                last.state
                    .as_ref()
                    .expect("the terminal checkpoint retains its state")
                    .l
                    .clone(),
                machine,
                budget,
                requirement,
                self.opts,
                tally,
            )?;
            return Ok((r, stats));
        }
        Ok((self.result_at(terminal, budget), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{requirement_unified, spill_until_fits_seeded, SpillPolicy};
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_sched::modulo_schedule;

    /// High-pressure loop (mirrors the spiller's own test kernel).
    fn pressured() -> Loop {
        let mut b = LoopBuilder::new("pressured");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", x, 1);
        let m1 = b.mul("M1", l1.now(), l2.now());
        let m2 = b.mul("M2", m1.now(), l1.now());
        let a1 = b.add("A1", m2.now(), l2.now());
        let a2 = b.add("A2", a1.now(), l1.now());
        b.store("S", z, 0, a2.now());
        b.finish(Weight::new(50, 2)).unwrap()
    }

    fn traj(l: &Loop, machine: &Machine, opts: SpillOptions) -> SpillTrajectory {
        let base = modulo_schedule(l, machine).unwrap();
        SpillTrajectory::from_base(l, machine, base, &mut requirement_unified, opts).unwrap()
    }

    #[test]
    fn ladder_matches_fresh_at_every_rung() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions::default();
        let mut t = traj(&l, &machine, opts);
        for budget in [64, 12, 8, 6, 4, 2] {
            let (continued, _) = t
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            let base = modulo_schedule(&l, &machine).unwrap();
            let fresh =
                spill_until_fits_seeded(&l, &machine, base, budget, &mut requirement_unified, opts)
                    .unwrap();
            assert_eq!(continued, fresh, "budget {budget}");
        }
    }

    #[test]
    fn ascending_and_descending_orders_agree() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions::default();
        let budgets = [4, 6, 8, 12, 64];
        let mut down = traj(&l, &machine, opts);
        let mut up = traj(&l, &machine, opts);
        for &b in budgets.iter().rev() {
            let (rd, _) = down
                .evaluate(&machine, b, &mut requirement_unified)
                .unwrap();
            let (ru, _) = up.evaluate(&machine, b, &mut requirement_unified).unwrap();
            assert_eq!(rd, ru, "budget {b}");
        }
        for &b in &budgets {
            let (rd, sd) = down
                .evaluate(&machine, b, &mut requirement_unified)
                .unwrap();
            let (ru, su) = up.evaluate(&machine, b, &mut requirement_unified).unwrap();
            assert_eq!(rd, ru);
            assert_eq!(sd.steps_computed, 0, "everything already computed");
            assert_eq!(su.steps_computed, 0);
        }
    }

    #[test]
    fn descending_ladder_computes_each_step_once() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let mut t = traj(&l, &machine, SpillOptions::default());
        let mut total = 0;
        for budget in [64, 12, 8, 6] {
            let (r, s) = t
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            total += s.steps_computed;
            assert_eq!(r.spilled.len(), total, "steps accumulate, never repeat");
        }
        assert_eq!(t.steps(), total);
    }

    #[test]
    fn random_policy_resumes_the_same_stream() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions {
            policy: SpillPolicy::Random(0xfeed),
            ..SpillOptions::default()
        };
        let mut t = traj(&l, &machine, opts);
        for budget in [64, 10, 6, 4] {
            let (continued, _) = t
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            let base = modulo_schedule(&l, &machine).unwrap();
            let fresh =
                spill_until_fits_seeded(&l, &machine, base, budget, &mut requirement_unified, opts)
                    .unwrap();
            assert_eq!(continued, fresh, "budget {budget}");
        }
    }

    #[test]
    fn exhausted_descent_escalates_per_budget() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions::default();
        let mut t = traj(&l, &machine, opts);
        let (r, s) = t.evaluate(&machine, 1, &mut requirement_unified).unwrap();
        assert!(t.is_exhausted() || r.fits);
        let base = modulo_schedule(&l, &machine).unwrap();
        let fresh =
            spill_until_fits_seeded(&l, &machine, base, 1, &mut requirement_unified, opts).unwrap();
        assert_eq!(r, fresh);
        // A repeat of the below-floor budget re-runs the escalation scan
        // and must say so — it is not a checkpoint hit.
        if t.is_exhausted() {
            assert!(s.escalated);
            let (r2, s2) = t.evaluate(&machine, 1, &mut requirement_unified).unwrap();
            assert_eq!(r2, r);
            assert!(s2.escalated);
            assert_eq!(s2.steps_computed, 0);
        }
        // A later, larger budget is still served from the checkpoints.
        let (r64, s64) = t.evaluate(&machine, 64, &mut requirement_unified).unwrap();
        assert!(r64.fits);
        assert_eq!(s64.steps_computed, 0);
        assert!(!s64.escalated);
    }

    #[test]
    fn no_escalation_reports_unfit_like_fresh() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions {
            escalate_ii: false,
            ..SpillOptions::default()
        };
        let mut t = traj(&l, &machine, opts);
        let (r, _) = t.evaluate(&machine, 1, &mut requirement_unified).unwrap();
        let base = modulo_schedule(&l, &machine).unwrap();
        let fresh =
            spill_until_fits_seeded(&l, &machine, base, 1, &mut requirement_unified, opts).unwrap();
        assert_eq!(r, fresh);
        assert!(!r.fits);
    }

    #[test]
    fn snapshot_replays_to_a_bit_identical_trajectory() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions::default();
        let mut t = traj(&l, &machine, opts);
        t.evaluate(&machine, 6, &mut requirement_unified).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.steps.len(), t.steps());
        assert_eq!(snap.min_regs(), t.min_regs());

        let base = modulo_schedule(&l, &machine).unwrap();
        let restored =
            SpillTrajectory::replay(&l, &machine, base, &snap, &mut requirement_unified, opts)
                .unwrap();
        assert_eq!(restored.checkpoints(), t.checkpoints());
        assert_eq!(restored.is_exhausted(), t.is_exhausted());
        // The restored descent serves and extends exactly like the
        // original: every rung matches a fresh run.
        let mut restored = restored;
        for budget in [12, 6, 4, 2] {
            let (continued, _) = restored
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            let seed = modulo_schedule(&l, &machine).unwrap();
            let fresh =
                spill_until_fits_seeded(&l, &machine, seed, budget, &mut requirement_unified, opts)
                    .unwrap();
            assert_eq!(continued, fresh, "budget {budget}");
        }
    }

    #[test]
    fn replay_resumes_the_random_policy_stream() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions {
            policy: SpillPolicy::Random(0xbead),
            ..SpillOptions::default()
        };
        let mut t = traj(&l, &machine, opts);
        t.evaluate(&machine, 8, &mut requirement_unified).unwrap();
        let snap = t.snapshot();
        let base = modulo_schedule(&l, &machine).unwrap();
        let mut restored =
            SpillTrajectory::replay(&l, &machine, base, &snap, &mut requirement_unified, opts)
                .unwrap();
        // Extending past the snapshot draws the same random victims a
        // fresh run would.
        let (continued, _) = restored
            .evaluate(&machine, 2, &mut requirement_unified)
            .unwrap();
        let seed = modulo_schedule(&l, &machine).unwrap();
        let fresh =
            spill_until_fits_seeded(&l, &machine, seed, 2, &mut requirement_unified, opts).unwrap();
        assert_eq!(continued, fresh);
    }

    #[test]
    fn first_fit_on_the_snapshot_matches_the_trajectory() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let mut t = traj(&l, &machine, SpillOptions::default());
        t.evaluate(&machine, 4, &mut requirement_unified).unwrap();
        let snap = t.snapshot();
        for budget in [0, 2, 4, 6, 8, 12, 64] {
            assert_eq!(snap.first_fit(budget), t.first_fit(budget), "{budget}");
        }
    }

    #[test]
    fn corrupt_snapshots_fail_replay_loudly() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions::default();
        let mut t = traj(&l, &machine, opts);
        t.evaluate(&machine, 6, &mut requirement_unified).unwrap();
        let snap = t.snapshot();
        assert!(!snap.steps.is_empty());
        let base = || modulo_schedule(&l, &machine).unwrap();

        // A foreign base requirement.
        let mut wrong_base = snap.clone();
        wrong_base.base_regs += 1;
        let err = SpillTrajectory::replay(
            &l,
            &machine,
            base(),
            &wrong_base,
            &mut requirement_unified,
            opts,
        )
        .unwrap_err();
        assert!(matches!(err, SpillError::Snapshot(_)), "{err}");

        // A victim that does not exist.
        let mut wrong_victim = snap.clone();
        wrong_victim.steps[0].victim = "NOPE".into();
        let err = SpillTrajectory::replay(
            &l,
            &machine,
            base(),
            &wrong_victim,
            &mut requirement_unified,
            opts,
        )
        .unwrap_err();
        assert!(err.to_string().contains("NOPE"), "{err}");

        // A step whose recorded requirement disagrees with the replay.
        let mut wrong_regs = snap.clone();
        wrong_regs.steps[0].regs += 7;
        let err = SpillTrajectory::replay(
            &l,
            &machine,
            base(),
            &wrong_regs,
            &mut requirement_unified,
            opts,
        )
        .unwrap_err();
        assert!(matches!(err, SpillError::Snapshot(_)), "{err}");
    }

    #[test]
    fn only_the_frontier_retains_loop_state() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let mut t = traj(&l, &machine, SpillOptions::default());
        t.evaluate(&machine, 2, &mut requirement_unified).unwrap();
        let cps = t.checkpoints();
        let mut min = u32::MAX;
        for (k, c) in cps.iter().enumerate() {
            let record = c.regs < min;
            min = min.min(c.regs);
            let terminal = k == cps.len() - 1;
            assert_eq!(
                c.is_frontier(),
                record || terminal,
                "checkpoint {k}: regs {} against prior min",
                c.regs
            );
            assert_eq!(c.loop_state().is_some(), c.is_frontier());
            assert_eq!(c.schedule().is_some(), c.is_frontier());
        }
        // Every budget is still served bit-identically from the pruned
        // trajectory (first-fit only ever lands on the frontier).
        let opts = SpillOptions::default();
        for budget in [64, 12, 8, 6, 4, 2] {
            let (continued, _) = t
                .evaluate(&machine, budget, &mut requirement_unified)
                .unwrap();
            let base = modulo_schedule(&l, &machine).unwrap();
            let fresh =
                spill_until_fits_seeded(&l, &machine, base, budget, &mut requirement_unified, opts)
                    .unwrap();
            assert_eq!(continued, fresh, "budget {budget}");
        }
    }

    #[test]
    fn max_spills_caps_the_trajectory() {
        let l = pressured();
        let machine = Machine::clustered(6, 1);
        let opts = SpillOptions {
            max_spills: 2,
            escalate_ii: false,
            ..SpillOptions::default()
        };
        let mut t = traj(&l, &machine, opts);
        let (r, _) = t.evaluate(&machine, 1, &mut requirement_unified).unwrap();
        assert!(r.spilled.len() <= 2);
        assert!(t.steps() <= 2);
        assert!(t.is_exhausted());
    }
}
