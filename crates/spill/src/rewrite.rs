//! Dependence-graph rewriting: inserting spill code for one value.

use ncdrf_ddg::{BuildError, Loop, LoopBuilder, OpId, OpKind, ValueRef};

/// Statistics of one spill rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// Spill stores added (always 1 per spilled value).
    pub stores_added: usize,
    /// Reload loads added (one per consuming operation and distance).
    pub loads_added: usize,
}

/// Rewrites `l` so that the value produced by `victim` lives in memory:
///
/// * a **spill store** writes the value to a fresh spill array immediately
///   after production (`spill[i] = v`),
/// * every consumer that read `v` at distance `d` instead reads a fresh
///   **reload** (`load spill[i - d]`), connected to the store by a memory
///   dependence of distance `d` so no schedule can reload before the store.
///
/// The original operations keep their ids (spill code is appended at the
/// end), which keeps victim bookkeeping across rounds simple.
///
/// Returns the rewritten loop, the names of the reload operations (so the
/// spiller can exclude them from future victim selection), and counts of
/// the memory operations added.
///
/// # Errors
///
/// Returns [`BuildError`] if the rewritten graph fails validation — this
/// indicates a bug in the rewriter, not bad input, and is surfaced rather
/// than panicking so the spiller can report it.
///
/// # Panics
///
/// Panics if `victim` does not produce a value (stores cannot be spilled)
/// or is out of range for `l`.
pub fn spill_value(
    l: &Loop,
    victim: OpId,
) -> Result<(Loop, Vec<String>, RewriteStats), BuildError> {
    let vop = l.op(victim);
    assert!(
        vop.kind().produces_value(),
        "victim `{}` produces no value",
        vop.name()
    );

    let mut b = LoopBuilder::new(l.name());

    // Re-declare invariants and arrays, preserving ids.
    for inv in l.invariants() {
        b.invariant(inv.name(), inv.value());
    }
    for arr in l.arrays() {
        match arr.role() {
            ncdrf_ddg::ArrayRole::Input => b.array_in(arr.name()),
            ncdrf_ddg::ArrayRole::Output => b.array_out(arr.name()),
            ncdrf_ddg::ArrayRole::InOut => b.array_inout(arr.name()),
        };
    }
    // The spill slot array. Spill arrays are written then read, at
    // distances >= 0: InOut.
    let slot = b.array_inout(format!("spill.{}", vop.name()));

    // Recreate every original op with its original inputs (patched below),
    // preserving ids. Reserve-then-bind handles recurrences uniformly.
    for (_, op) in l.iter_ops() {
        let id = match op.kind() {
            OpKind::FpAdd => b.reserve_add(op.name()),
            OpKind::FpSub => b.reserve_sub(op.name()),
            OpKind::FpMul => b.reserve_mul(op.name()),
            OpKind::FpDiv => b.reserve_div(op.name()),
            OpKind::Conv => {
                let id = b.conv(op.name(), ValueRef::Const(0.0));
                b.bind(id, []); // operands patched below
                id
            }
            OpKind::Load => {
                let mem = op.mem().expect("loads carry a memory reference");
                b.load(op.name(), mem.array, mem.offset)
            }
            OpKind::Store => {
                let mem = op.mem().expect("stores carry a memory reference");
                let id = b.store(op.name(), mem.array, mem.offset, ValueRef::Const(0.0));
                b.bind(id, []); // operand patched below
                id
            }
        };
        b.set_init(id, op.init());
    }

    // The spill store, fed by the victim's value in the same iteration.
    let spill_store = b.store(format!("SS.{}", vop.name()), slot, 0, victim.now());
    let mut reload_names = vec![];
    let mut loads_added = 0;

    // Patch consumers: each op that read the victim gets reload(s).
    for (id, op) in l.iter_ops() {
        let mut inputs: Vec<ValueRef> = op.inputs().to_vec();
        let mut reload_for_dist: Vec<(u32, OpId)> = Vec::new();
        for input in inputs.iter_mut() {
            let ValueRef::Op { id: from, dist } = *input else {
                continue;
            };
            if from != victim {
                continue;
            }
            let reload = match reload_for_dist.iter().find(|(d, _)| *d == dist) {
                Some(&(_, r)) => r,
                None => {
                    let name = format!("RL.{}.{}.{}", vop.name(), op.name(), dist);
                    let r = b.load(&name, slot, -(dist as i64));
                    // The reload of iteration i reads spill[i - dist],
                    // written `dist` iterations earlier.
                    b.mem_dep(spill_store, r, dist);
                    reload_names.push(name);
                    loads_added += 1;
                    reload_for_dist.push((dist, r));
                    r
                }
            };
            *input = reload.now();
        }
        b.bind(id, inputs);
    }

    // Carry over explicit dependence edges (ids are unchanged).
    for dep in l.deps() {
        match dep.kind {
            ncdrf_ddg::DepKind::Mem => b.mem_dep(dep.from, dep.to, dep.dist),
            ncdrf_ddg::DepKind::Order => b.order_dep(dep.from, dep.to, dep.dist),
        }
    }

    let stats = RewriteStats {
        stores_added: 1,
        loads_added,
    };
    Ok((b.finish(l.weight())?, reload_names, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};

    fn chain() -> Loop {
        // L -> M -> A -> S, plus A also reads L (two consumers for L).
        let mut b = LoopBuilder::new("chain");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        let a = b.add("A", m.now(), l.now());
        b.store("S", z, 0, a.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn spill_adds_store_and_reloads() {
        let l = chain();
        let victim = l.find_op("L").unwrap();
        let (l2, reloads, stats) = spill_value(&l, victim).unwrap();
        assert_eq!(stats.stores_added, 1);
        // Two consuming ops (M and A), each at distance 0 -> 2 reloads.
        assert_eq!(stats.loads_added, 2);
        assert_eq!(reloads.len(), 2);
        assert_eq!(l2.ops().len(), l.ops().len() + 3);
        // The victim's only remaining consumer is the spill store.
        let consumers = l2.consumers();
        assert_eq!(consumers[victim.index()].len(), 1);
    }

    #[test]
    fn same_consumer_two_slots_shares_one_reload() {
        let l = chain();
        let victim = l.find_op("L").unwrap();
        let (l2, _, _) = spill_value(&l, victim).unwrap();
        // M read L twice (both operands): both slots now read one reload.
        let m = l2.find_op("M").unwrap();
        let ins = l2.op(m).inputs();
        assert_eq!(ins[0], ins[1]);
    }

    #[test]
    fn original_ids_preserved() {
        let l = chain();
        let victim = l.find_op("M").unwrap();
        let (l2, _, _) = spill_value(&l, victim).unwrap();
        for (id, op) in l.iter_ops() {
            assert_eq!(l2.op(id).name(), op.name());
            assert_eq!(l2.op(id).kind(), op.kind());
        }
    }

    #[test]
    fn cross_iteration_consumer_gets_negative_offset_reload() {
        // s = s + x: spill the reduction value s (consumed at distance 1).
        let mut b = LoopBuilder::new("sum");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        let l = b.finish(Weight::default()).unwrap();
        let (l2, reloads, stats) = spill_value(&l, s).unwrap();
        assert_eq!(stats.loads_added, 1);
        let r = l2.find_op(&reloads[0]).unwrap();
        assert_eq!(l2.op(r).mem().unwrap().offset, -1);
        // The add now reads the reload at distance 0 instead of itself at 1.
        assert_eq!(l2.op(s).inputs()[1], r.now());
        // A mem dep store -> reload at distance 1 exists.
        assert!(l2
            .deps()
            .iter()
            .any(|d| d.dist == 1 && d.to == r && l2.op(d.from).name().starts_with("SS.")));
    }

    #[test]
    fn rewritten_loop_validates_and_schedules() {
        use ncdrf_machine::Machine;
        use ncdrf_sched::{modulo_schedule, verify};
        let l = chain();
        let victim = l.find_op("L").unwrap();
        let (l2, _, _) = spill_value(&l, victim).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l2, &machine).unwrap();
        verify(&l2, &machine, &sched).unwrap();
    }

    #[test]
    #[should_panic(expected = "produces no value")]
    fn spilling_a_store_panics() {
        let l = chain();
        let s = l.find_op("S").unwrap();
        let _ = spill_value(&l, s);
    }
}
