//! The "naive" spiller of the paper's §5.4.
//!
//! When a loop's register requirement exceeds the physical register file,
//! the paper inserts spill code and retries:
//!
//! ```text
//! DO
//!   modulo scheduling
//!   register allocation
//!   IF registers needed > physical registers
//!     select a value to spill out
//!     modify the dependence graph
//! UNTIL registers needed <= physical registers
//! ```
//!
//! The victim is "the value with the highest lifetime, which in general
//! will free a higher number of registers". Spilling a value rewrites the
//! dependence graph: a spill store writes the value to memory right after
//! production, and every consumer reads a fresh reload instead (see
//! [`spill_value`]). Spill code is exactly what the paper's evaluation
//! measures: it raises the resource-constrained II when memory ports
//! saturate (hurting performance, Figure 8) and raises the density of
//! memory traffic (Figure 9).
//!
//! The driver [`spill_until_fits`] is generic over the *requirement
//! function* so the same loop serves the unified model
//! ([`requirement_unified`]) and the dual-file models (whose requirements
//! involve classification and optionally the swapping pass; the `ncdrf`
//! facade provides those).
//!
//! # Example
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_spill::{spill_until_fits, requirement_unified, SpillOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("axpy");
//! let a = b.invariant("a", 3.0);
//! let x = b.array_in("x");
//! let z = b.array_out("z");
//! let l = b.load("L", x, 0);
//! let m = b.mul("M", l.now(), a);
//! b.store("S", z, 0, m.now());
//! let lp = b.finish(Weight::default())?;
//!
//! let machine = Machine::clustered(6, 1);
//! let result = spill_until_fits(
//!     &lp, &machine, 32, &mut requirement_unified, SpillOptions::default())?;
//! assert!(result.fits);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod resched;
mod rewrite;
mod spiller;
mod trajectory;

pub use resched::{full_resched_forced, set_full_resched};
pub use rewrite::{spill_value, RewriteStats};
pub use spiller::{
    requirement_unified, spill_until_fits, spill_until_fits_seeded, RequirementFn, SpillError,
    SpillOptions, SpillPolicy, SpillResult,
};
pub use trajectory::{
    ResumeStats, SnapshotStep, SpillCheckpoint, SpillTrajectory, TrajectorySnapshot,
};
