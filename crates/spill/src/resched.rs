//! Rescheduling-mode selection for the spill descent: the incremental
//! [`SchedContext`] path by default, the reference scheduler on demand.
//!
//! Every round of the §5.4 spill loop re-schedules the rewritten loop.
//! Both available paths are **bit-identical** for every input (pinned by
//! the repository's `incremental_resched` differential suite), so the
//! toggle only trades speed for diagnosability:
//!
//! * **incremental** (default): [`SchedContext::schedule`], which reuses
//!   arena scratch across rounds and re-enters only the dirty ops of the
//!   previous round's schedule;
//! * **full**: [`modulo_schedule_with`], the reference implementation,
//!   forced by setting the environment variable `NCDRF_FULL_RESCHED=1`
//!   (read once per process) or calling [`set_full_resched`] at runtime.

use ncdrf_ddg::Loop;
use ncdrf_machine::Machine;
use ncdrf_sched::{modulo_schedule_with, SchedContext, Schedule, ScheduleError, SchedulerOptions};
use std::sync::atomic::{AtomicU8, Ordering};

const UNREAD: u8 = 0;
const FULL: u8 = 1;
const INCREMENTAL: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(UNREAD);

/// Whether the spill descent is currently forced onto the reference
/// full-reschedule path. Decided by the first call from the environment
/// variable `NCDRF_FULL_RESCHED` (`"1"` forces the reference path), or
/// by the latest [`set_full_resched`] override.
pub fn full_resched_forced() -> bool {
    match MODE.load(Ordering::Relaxed) {
        FULL => true,
        INCREMENTAL => false,
        _ => {
            let full = std::env::var("NCDRF_FULL_RESCHED").is_ok_and(|v| v == "1");
            MODE.store(if full { FULL } else { INCREMENTAL }, Ordering::Relaxed);
            full
        }
    }
}

/// Overrides the rescheduling mode at runtime: `Some(true)` forces the
/// reference full-reschedule path, `Some(false)` forces the incremental
/// path, `None` re-reads `NCDRF_FULL_RESCHED` on the next decision.
///
/// Because the two paths are bit-identical, flipping the mode mid-run is
/// benign — the differential suites flip it freely to compare outputs.
pub fn set_full_resched(force: Option<bool>) {
    MODE.store(
        match force {
            Some(true) => FULL,
            Some(false) => INCREMENTAL,
            None => UNREAD,
        },
        Ordering::Relaxed,
    );
}

/// One (re)scheduling round of the spill descent, through whichever path
/// the mode selects. `ctx` carries the incremental state between rounds;
/// the full path ignores it (and the context's own cache validation makes
/// stale state harmless if the mode flips back).
pub(crate) fn schedule_step(
    ctx: &mut SchedContext,
    l: &Loop,
    machine: &Machine,
    opts: SchedulerOptions,
) -> Result<Schedule, ScheduleError> {
    if full_resched_forced() {
        modulo_schedule_with(l, machine, opts)
    } else {
        ctx.schedule(l, machine, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_over_env() {
        set_full_resched(Some(true));
        assert!(full_resched_forced());
        set_full_resched(Some(false));
        assert!(!full_resched_forced());
        set_full_resched(None);
        // Re-read from the environment: the test harness does not set
        // NCDRF_FULL_RESCHED, so the default is incremental.
        if std::env::var("NCDRF_FULL_RESCHED").map_or(true, |v| v != "1") {
            assert!(!full_resched_forced());
        }
        set_full_resched(None);
    }
}
