//! Lower bounds on the initiation interval.

use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// The two lower bounds on the initiation interval and their maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiiInfo {
    /// Resource-constrained minimum II.
    pub res: u32,
    /// Recurrence-constrained minimum II.
    pub rec: u32,
    /// `max(res, rec, 1)` — the minimum II any modulo schedule can achieve.
    pub mii: u32,
}

/// Resource-constrained minimum initiation interval: for each
/// functional-unit group, `ceil(ops_served / units)`; the maximum over
/// groups.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of the loop.
pub fn res_mii(l: &Loop, machine: &Machine) -> Result<u32, MachineError> {
    let mut per_group = vec![0u32; machine.groups().len()];
    for op in l.ops() {
        per_group[machine.group_for(op.kind())?] += 1;
    }
    Ok(per_group
        .iter()
        .zip(machine.groups())
        .map(|(&n, g)| n.div_ceil(g.count() as u32))
        .max()
        .unwrap_or(1)
        .max(1))
}

/// Recurrence-constrained minimum initiation interval: the smallest II for
/// which no dependence cycle has positive slack deficit, i.e.
/// `max over cycles C of ceil(latency(C) / distance(C))`.
///
/// Computed by binary search on II with a Bellman–Ford positive-cycle check
/// on the graph whose edge weights are `latency(from) - II * distance`.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of the loop.
pub fn rec_mii(l: &Loop, machine: &Machine) -> Result<u32, MachineError> {
    let edges = weighted_edges(l, machine)?;
    let has_recurrence = edges.iter().any(|&(_, _, _, dist)| dist > 0);
    if !has_recurrence {
        return Ok(1);
    }
    // Upper bound: at II = sum of latencies + 1, every cycle (distance >= 1)
    // has non-positive weight.
    let hi: u32 = l
        .ops()
        .iter()
        .map(|op| machine.latency(op.kind()).unwrap_or(1))
        .sum::<u32>()
        .max(1);
    let mut lo = 1u32;
    let mut hi = hi + 1;
    // Invariant: feasible(hi) is true, feasible(lo - 1)... search smallest
    // feasible value in [lo, hi].
    debug_assert!(feasible(l, &edges, hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(l, &edges, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Both bounds plus their maximum.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of the loop.
pub fn mii(l: &Loop, machine: &Machine) -> Result<MiiInfo, MachineError> {
    let res = res_mii(l, machine)?;
    let rec = rec_mii(l, machine)?;
    Ok(MiiInfo {
        res,
        rec,
        mii: res.max(rec).max(1),
    })
}

/// Edge list `(from, to, latency(from), dist)`.
fn weighted_edges(
    l: &Loop,
    machine: &Machine,
) -> Result<Vec<(OpId, OpId, u32, u32)>, MachineError> {
    l.sched_edges()
        .into_iter()
        .map(|(from, to, dist)| {
            let lat = machine.latency(l.op(from).kind())?;
            Ok((from, to, lat, dist))
        })
        .collect()
}

/// True if no dependence cycle has positive weight at the given II, i.e.
/// a schedule with this II can satisfy all recurrence constraints.
fn feasible(l: &Loop, edges: &[(OpId, OpId, u32, u32)], ii: u32) -> bool {
    // Bellman–Ford longest-path relaxation: a positive-weight cycle exists
    // iff relaxation still updates after n passes.
    let n = l.ops().len();
    let mut dist = vec![0i64; n];
    for pass in 0..=n {
        let mut changed = false;
        for &(from, to, lat, d) in edges {
            let w = lat as i64 - ii as i64 * d as i64;
            let cand = dist[from.index()] + w;
            if cand > dist[to.index()] {
                dist[to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
        if pass == n {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, ValueRef, Weight};
    use ncdrf_machine::Machine;

    fn simple_chain() -> Loop {
        let mut b = LoopBuilder::new("chain");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        let a = b.add("A", m.now(), ValueRef::Const(1.0));
        b.store("S", z, 0, a.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn res_mii_counts_group_pressure() {
        let l = simple_chain();
        // P1L3: 1 adder, 1 multiplier, 2 load ports, 1 store port.
        let m = Machine::pxly(1, 3);
        assert_eq!(res_mii(&l, &m), Ok(1));

        // Two multiplies on one multiplier => ResMII 2.
        let mut b = LoopBuilder::new("two_muls");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        let m1 = b.mul("M1", ld.now(), ld.now());
        let m2 = b.mul("M2", m1.now(), ld.now());
        b.store("S", z, 0, m2.now());
        let l2 = b.finish(Weight::default()).unwrap();
        assert_eq!(res_mii(&l2, &m), Ok(2));
    }

    #[test]
    fn rec_mii_of_acyclic_graph_is_one() {
        let l = simple_chain();
        let m = Machine::pxly(1, 6);
        assert_eq!(rec_mii(&l, &m), Ok(1));
    }

    #[test]
    fn rec_mii_of_self_recurrence_is_latency_over_distance() {
        // s = s + x[i]  with add latency 6 and distance 1 => RecMII = 6.
        let mut b = LoopBuilder::new("sum");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::pxly(1, 6);
        assert_eq!(rec_mii(&l, &m), Ok(6));
        // Distance 3 divides the latency across iterations: ceil(6/3) = 2.
        let mut b = LoopBuilder::new("sum3");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(3)]);
        let l = b.finish(Weight::default()).unwrap();
        assert_eq!(rec_mii(&l, &m), Ok(2));
    }

    #[test]
    fn rec_mii_of_two_op_cycle() {
        // a = b@-1 + x; b = a * y  => cycle latency 3+3=6 over distance 1.
        let mut b = LoopBuilder::new("cyc2");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let a = b.reserve_add("A");
        let mu = b.mul("M", a.now(), ld.now());
        b.bind(a, [mu.prev(1), ld.now()]);
        let l = b.finish(Weight::default()).unwrap();
        let m3 = Machine::pxly(1, 3);
        assert_eq!(rec_mii(&l, &m3), Ok(6));
        let m6 = Machine::pxly(1, 6);
        assert_eq!(rec_mii(&l, &m6), Ok(12));
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut b = LoopBuilder::new("mix");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::pxly(1, 3);
        let info = mii(&l, &m).unwrap();
        assert_eq!(info.res, 1);
        assert_eq!(info.rec, 3);
        assert_eq!(info.mii, 3);
    }

    #[test]
    fn mem_deps_affect_rec_mii() {
        // store a[i]; load a[i-1] next iteration: cycle store->load (dist 1)
        // -> consumer -> store (dist 0): latencies 1 (store) + 1 (load) + 3
        // (add) over distance 1 => RecMII 5.
        let mut b = LoopBuilder::new("memrec");
        let a = b.array_inout("a");
        let ld = b.load("L", a, -1);
        let ad = b.add("A", ld.now(), ld.now());
        let st = b.store("S", a, 0, ad.now());
        b.mem_dep(st, ld, 1);
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::pxly(1, 3);
        assert_eq!(rec_mii(&l, &m), Ok(5));
    }
}
