//! Rendering the full modulo-schedule table (the paper's Figure 3): one
//! row per cycle of a single iteration's span, one column per functional
//! unit, clusters separated — the flat view the kernel is folded from.

use crate::schedule::Schedule;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{ClusterId, Machine, UnitRef};
use std::fmt;

/// A flat (unfolded) view of one iteration's schedule, Figure-3 style.
#[derive(Debug, Clone)]
pub struct ScheduleTable {
    /// `cells[cycle][column]` is the op issuing there, if any.
    cells: Vec<Vec<Option<OpId>>>,
    columns: Vec<(UnitRef, ClusterId)>,
    names: Vec<String>,
    ii: u32,
}

impl ScheduleTable {
    /// Builds the flat schedule table of iteration 0.
    pub fn new(l: &Loop, machine: &Machine, sched: &Schedule) -> Self {
        let mut columns = Vec::new();
        for (g, grp) in machine.groups().iter().enumerate() {
            for instance in 0..grp.count() {
                let unit = UnitRef { group: g, instance };
                columns.push((unit, machine.cluster_of(unit)));
            }
        }
        // Order columns cluster-first so the "||" separator can sit
        // between clusters.
        columns.sort_by_key(|&(u, c)| (c, u.group, u.instance));

        let span = l
            .iter_ops()
            .map(|(id, op)| sched.start(id) + machine.latency(op.kind()).expect("servable loop"))
            .max()
            .unwrap_or(1);
        let mut cells = vec![vec![None; columns.len()]; span as usize];
        for (id, _) in l.iter_ops() {
            let col = columns
                .iter()
                .position(|&(u, _)| u == sched.unit(id))
                .expect("every bound unit is a column");
            cells[sched.start(id) as usize][col] = Some(id);
        }
        ScheduleTable {
            cells,
            columns,
            names: l.ops().iter().map(|o| o.name().to_string()).collect(),
            ii: sched.ii(),
        }
    }

    /// Number of cycles an iteration spans (table height).
    pub fn span(&self) -> usize {
        self.cells.len()
    }

    /// The op issuing at `cycle` on column `col`, if any.
    pub fn cell(&self, cycle: usize, col: usize) -> Option<OpId> {
        self.cells[cycle][col]
    }

    /// The unit/cluster of each column.
    pub fn columns(&self) -> &[(UnitRef, ClusterId)] {
        &self.columns
    }
}

impl fmt::Display for ScheduleTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.names.iter().map(String::len).max().unwrap_or(3).max(3);
        for (t, row) in self.cells.iter().enumerate() {
            write!(f, "{t:>3} |")?;
            let mut prev_cluster = None;
            for (cell, &(_, cluster)) in row.iter().zip(&self.columns) {
                if prev_cluster.is_some() && prev_cluster != Some(cluster) {
                    write!(f, " ||")?;
                }
                prev_cluster = Some(cluster);
                match cell {
                    Some(op) => write!(f, " {:>width$}", self.names[op.index()])?,
                    None => write!(f, " {:>width$}", "-")?,
                }
            }
            // Mark kernel-row boundaries (every II cycles).
            if (t + 1) % self.ii as usize == 0 && t + 1 != self.cells.len() {
                writeln!(f, "  <- stage boundary")?;
            } else {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::modulo_schedule;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_machine::Machine;

    fn sample() -> (Loop, Machine, Schedule) {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        let a = b.add("A", m.now(), l.now());
        b.store("S", z, 0, a.now());
        let lp = b.finish(Weight::default()).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&lp, &machine).unwrap();
        (lp, machine, sched)
    }

    #[test]
    fn table_places_every_op_once() {
        let (l, machine, sched) = sample();
        let table = ScheduleTable::new(&l, &machine, &sched);
        let placed: usize = (0..table.span())
            .map(|t| {
                (0..table.columns().len())
                    .filter(|&c| table.cell(t, c).is_some())
                    .count()
            })
            .sum();
        assert_eq!(placed, l.ops().len());
    }

    #[test]
    fn table_height_is_the_iteration_span() {
        let (l, machine, sched) = sample();
        let table = ScheduleTable::new(&l, &machine, &sched);
        // Span >= last issue + 1 and <= stages * II.
        let last_issue = l.iter_ops().map(|(id, _)| sched.start(id)).max().unwrap() as usize;
        assert!(table.span() > last_issue);
        assert!(table.span() <= (sched.stages() * sched.ii()) as usize);
    }

    #[test]
    fn display_renders_ops_and_cluster_separator() {
        let (l, machine, sched) = sample();
        let table = ScheduleTable::new(&l, &machine, &sched);
        let text = table.to_string();
        assert!(text.contains(" L"));
        assert!(text.contains("||"), "cluster separator expected");
        assert_eq!(text.lines().count(), table.span());
    }

    #[test]
    fn columns_are_cluster_contiguous() {
        let (_, machine, sched) = sample();
        let (l, ..) = sample();
        let table = ScheduleTable::new(&l, &machine, &sched);
        let clusters: Vec<_> = table.columns().iter().map(|&(_, c)| c).collect();
        // Once the cluster changes it never changes back.
        let mut switches = 0;
        for w in clusters.windows(2) {
            if w[0] != w[1] {
                switches += 1;
            }
        }
        assert!(switches <= 1);
    }
}
