//! Iterative modulo scheduling (IMS) for VLIW loops.
//!
//! Modulo scheduling (Rau & Glaeser, 1981; the paper's §2) overlaps loop
//! iterations: a new iteration starts every *initiation interval* (II)
//! cycles, and every operation occupies the same slot of a *modulo
//! reservation table* of II rows. This crate implements:
//!
//! * the **lower bounds** on the II — [`res_mii`] (resource-constrained)
//!   and [`rec_mii`] (recurrence-constrained, via positive-cycle detection
//!   on the dependence graph) — combined by [`mii`];
//! * **iterative modulo scheduling** ([`modulo_schedule`],
//!   [`schedule_at_ii`]) following Rau's IMS: height-based priorities,
//!   earliest-start windows of II slots, budgeted eviction, and II escalation
//!   when the budget is exhausted;
//! * the resulting [`Schedule`]: per-operation start cycles and
//!   functional-unit bindings, from which kernel slot, stage and — on a
//!   clustered machine — the operation's *cluster* are derived;
//! * [`verify`]: an independent checker for dependence and resource
//!   constraints, used by tests and downstream passes.
//!
//! # Example
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_sched::{mii, modulo_schedule};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("axpy");
//! let a = b.invariant("a", 3.0);
//! let x = b.array_in("x");
//! let z = b.array_out("z");
//! let l = b.load("L", x, 0);
//! let m = b.mul("M", l.now(), a);
//! b.store("S", z, 0, m.now());
//! let lp = b.finish(Weight::default())?;
//!
//! let machine = Machine::clustered(3, 1);
//! let sched = modulo_schedule(&lp, &machine)?;
//! assert_eq!(sched.ii(), mii(&lp, &machine)?.mii);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod context;
mod ims;
mod kernel;
mod mii;
mod mrt;
mod schedule;
mod table;

pub use context::SchedContext;
pub use ims::{
    modulo_schedule, modulo_schedule_with, schedule_at_ii, Priority, ScheduleError,
    SchedulerOptions,
};
pub use kernel::{KernelSlotEntry, KernelView};
pub use mii::{mii, rec_mii, res_mii, MiiInfo};
pub use schedule::{verify, Schedule, VerifyError};
pub use table::ScheduleTable;
