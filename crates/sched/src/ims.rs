//! Iterative modulo scheduling (Rau's IMS).

use crate::mii::mii;
use crate::mrt::ModuloReservationTable;
use crate::schedule::Schedule;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError, UnitRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tuning knobs for the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerOptions {
    /// Scheduling-step budget per II attempt, as a multiple of the
    /// operation count. When exhausted the scheduler gives up on the
    /// current II and retries with II+1.
    pub budget_ratio: u32,
    /// Hard ceiling on the II search (defaults to the sequential schedule
    /// length, at which scheduling always succeeds).
    pub max_ii: Option<u32>,
    /// Operation-selection priority (see [`Priority`]).
    pub priority: Priority,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            budget_ratio: 8,
            max_ii: None,
            priority: Priority::Height,
        }
    }
}

/// How the IMS main loop picks the next operation to (re)schedule, and
/// which occupant it evicts on a forced placement.
///
/// Rau's IMS uses height-based priorities; the `ablation_priority` bench
/// compares them against plain program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Height above the graph's sinks under the current II (Rau's IMS).
    #[default]
    Height,
    /// Program (input) order: earlier operations first.
    InputOrder,
}

/// Failure to produce a modulo schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The machine cannot execute the loop at all.
    Machine(MachineError),
    /// No schedule was found up to the II ceiling (only possible with an
    /// explicit, too-small [`SchedulerOptions::max_ii`]).
    NoSchedule {
        /// Largest II attempted.
        tried_up_to: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Machine(e) => write!(f, "machine cannot serve loop: {e}"),
            ScheduleError::NoSchedule { tried_up_to } => {
                write!(f, "no modulo schedule found up to II={tried_up_to}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<MachineError> for ScheduleError {
    fn from(e: MachineError) -> Self {
        ScheduleError::Machine(e)
    }
}

/// Schedules `l` on `machine` with default options, searching IIs upward
/// from the MII.
///
/// # Errors
///
/// See [`ScheduleError`].
pub fn modulo_schedule(l: &Loop, machine: &Machine) -> Result<Schedule, ScheduleError> {
    modulo_schedule_with(l, machine, SchedulerOptions::default())
}

/// Schedules `l` on `machine`, searching IIs upward from the MII.
///
/// # Errors
///
/// See [`ScheduleError`].
pub fn modulo_schedule_with(
    l: &Loop,
    machine: &Machine,
    opts: SchedulerOptions,
) -> Result<Schedule, ScheduleError> {
    let info = mii(l, machine)?;
    let seq_len: u32 = l
        .ops()
        .iter()
        .map(|op| machine.latency(op.kind()).unwrap_or(1))
        .sum::<u32>()
        + l.ops().len() as u32
        + 1;
    // An explicit `max_ii` is a *hard* ceiling: a loop whose MII already
    // exceeds it fails with `NoSchedule` instead of silently scheduling
    // above the cap (the cap used to be raised to the MII, which made it
    // impossible to bound the II search — e.g. to reject spill rewrites
    // whose added memory traffic outgrew a machine's ports).
    let max_ii = match opts.max_ii {
        Some(cap) => cap,
        None => seq_len.max(info.mii),
    };
    for ii in info.mii..=max_ii {
        if let Some(s) = schedule_at_ii_opts(l, machine, ii, opts)? {
            return Ok(s);
        }
    }
    Err(ScheduleError::NoSchedule {
        tried_up_to: max_ii,
    })
}

/// Attempts to schedule `l` at exactly the given II (one IMS pass with the
/// default budget). Returns `Ok(None)` when the budget is exhausted without
/// a valid schedule.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn schedule_at_ii(
    l: &Loop,
    machine: &Machine,
    ii: u32,
) -> Result<Option<Schedule>, MachineError> {
    schedule_at_ii_opts(l, machine, ii, SchedulerOptions::default())
}

fn schedule_at_ii_opts(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    opts: SchedulerOptions,
) -> Result<Option<Schedule>, MachineError> {
    assert!(ii > 0, "II must be positive");
    let n = l.ops().len();
    let mut group = vec![0usize; n];
    let mut lat = vec![0u32; n];
    for (id, op) in l.iter_ops() {
        group[id.index()] = machine.group_for(op.kind())?;
        lat[id.index()] = machine.latency(op.kind())?;
        if machine.groups()[group[id.index()]].count() == 0 {
            return Err(MachineError::Unserved(op.kind()));
        }
    }

    // Quick infeasibility check: a self-dependence tighter than II.
    let edges = l.sched_edges();
    for &(from, to, dist) in &edges {
        if from == to && lat[from.index()] as i64 > ii as i64 * dist as i64 {
            return Ok(None);
        }
    }

    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for &(from, to, dist) in &edges {
        preds[to.index()].push((from.index(), dist));
        succs[from.index()].push((to.index(), dist));
    }

    let height = match opts.priority {
        Priority::Height => compute_heights(n, &succs, &lat, ii),
        Priority::InputOrder => (0..n).map(|v| (n - v) as i64).collect(),
    };

    let mut mrt = ModuloReservationTable::new(machine, ii);
    let mut start: Vec<Option<u32>> = vec![None; n];
    let mut instance: Vec<usize> = vec![0; n];
    let mut prev_time: Vec<Option<u32>> = vec![None; n];
    let mut budget: u64 = (opts.budget_ratio as u64).saturating_mul(n as u64).max(64);

    // Highest-priority unscheduled op; ties broken by index for
    // determinism.
    while let Some(op) = (0..n)
        .filter(|&v| start[v].is_none())
        .max_by(|&a, &b| height[a].cmp(&height[b]).then(b.cmp(&a)))
    {
        if budget == 0 {
            return Ok(None);
        }
        budget -= 1;

        let mut estart: i64 = 0;
        for &(p, dist) in &preds[op] {
            if let Some(sp) = start[p] {
                estart = estart.max(sp as i64 + lat[p] as i64 - ii as i64 * dist as i64);
            }
        }
        let estart = estart.max(0) as u32;
        let min_t = match prev_time[op] {
            Some(pt) => estart.max(pt + 1),
            None => estart,
        };

        // First resource-free slot in the II-wide window.
        let mut placed = None;
        for t in min_t..min_t + ii {
            if let Some(inst) = mrt.free_instance(group[op], t) {
                placed = Some((t, inst));
                break;
            }
        }
        let (t, inst) = match placed {
            Some(p) => p,
            None => {
                // Forced placement at min_t: evict the lowest-priority
                // occupant of the group's row.
                let occ = mrt.occupants(group[op], min_t);
                let &(evict_inst, evict_op) = occ
                    .iter()
                    .min_by_key(|&&(_, o)| height[o.index()])
                    .expect("full row has occupants");
                let et = start[evict_op.index()].expect("occupant is scheduled");
                mrt.remove(evict_op, group[evict_op.index()], evict_inst, et);
                start[evict_op.index()] = None;
                (min_t, evict_inst)
            }
        };

        start[op] = Some(t);
        instance[op] = inst;
        prev_time[op] = Some(t);
        mrt.place(OpId::from_index(op), group[op], inst, t);

        // Evict scheduled successors whose dependence is now violated.
        for &(s, dist) in &succs[op] {
            if s == op {
                continue; // self-edges were pre-checked
            }
            if let Some(ts) = start[s] {
                if (ts as i64) < t as i64 + lat[op] as i64 - ii as i64 * dist as i64 {
                    mrt.remove(OpId::from_index(s), group[s], instance[s], ts);
                    start[s] = None;
                }
            }
        }
    }

    // Normalize so the earliest op starts at cycle 0 while preserving
    // kernel slots (shift by a multiple of II).
    let t0 = start.iter().map(|s| s.unwrap()).min().unwrap_or(0);
    let shift = (t0 / ii) * ii;
    let starts: Vec<u32> = start.iter().map(|s| s.unwrap() - shift).collect();
    let units: Vec<UnitRef> = (0..n)
        .map(|v| UnitRef {
            group: group[v],
            instance: instance[v],
        })
        .collect();
    let sched = Schedule::from_parts(l, machine, ii, starts, units);
    debug_assert_eq!(crate::schedule::verify(l, machine, &sched), Ok(()));
    Ok(Some(sched))
}

/// Height-based priorities: `height[v] = max over edges v->w of
/// lat(v) - II*dist + height[w]`, clamped at 0. Relaxed to a fixpoint,
/// bounded by `n` passes (heights diverge only when II < RecMII, in which
/// case the scheduling attempt fails anyway).
fn compute_heights(n: usize, succs: &[Vec<(usize, u32)>], lat: &[u32], ii: u32) -> Vec<i64> {
    let mut height = vec![0i64; n];
    for _ in 0..=n {
        let mut changed = false;
        for v in 0..n {
            for &(w, dist) in &succs[v] {
                let cand = lat[v] as i64 - ii as i64 * dist as i64 + height[w];
                if cand > height[v] {
                    height[v] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    height
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::mii;
    use crate::schedule::verify;
    use ncdrf_ddg::{LoopBuilder, ValueRef, Weight};
    use ncdrf_machine::Machine;

    fn chain(n_mults: usize) -> Loop {
        let mut b = LoopBuilder::new("chain");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let mut prev = l.now();
        for i in 0..n_mults {
            let m = b.mul(format!("M{i}"), prev, ValueRef::Const(1.5));
            prev = m.now();
        }
        b.store("S", z, 0, prev);
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn achieves_mii_on_simple_chain() {
        let l = chain(3);
        let m = Machine::pxly(1, 3);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), mii(&l, &m).unwrap().mii);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    fn resource_bound_is_respected() {
        // 4 multiplies on 1 multiplier: II = 4.
        let l = chain(4);
        let m = Machine::pxly(1, 3);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), 4);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    fn recurrence_bound_is_respected() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::pxly(2, 6);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), 6);
        assert!(verify(&l, &m, &sched).is_ok());
        // The self-recurrence really is tight: S -> S distance 1.
        assert!(sched.start(s) + 6 <= sched.start(s) + sched.ii());
    }

    #[test]
    fn paper_example_schedules_at_ii_1() {
        // The §4.1 example: 2 loads, 2 muls, 2 adds, 1 store on a machine
        // with 2 adders, 2 multipliers, 4 load/store units => II = 1,
        // 14 stages (latency 3 for add/mul, 1 for mem).
        let l = example_loop();
        let m = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), 1);
        assert_eq!(sched.stages(), 14);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    /// The worked example of §4.1: z[i] = (x[i]*r + y[i])*t + x[i].
    fn example_loop() -> Loop {
        let mut b = LoopBuilder::new("hpca95_example");
        let r = b.invariant("r", 2.0);
        let t = b.invariant("t", 3.0);
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", y, 0);
        let m3 = b.mul("M3", l1.now(), r);
        let a4 = b.add("A4", m3.now(), l2.now());
        let m5 = b.mul("M5", a4.now(), t);
        let a6 = b.add("A6", m5.now(), l1.now());
        b.store("S7", z, 0, a6.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn tight_memory_ports_raise_ii() {
        // 3 memory ops on a machine with 2 combined mem ports (1/cluster):
        // ResMII = ceil(3/2) = 2.
        let mut b = LoopBuilder::new("mem_heavy");
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", y, 0);
        let a = b.add("A", l1.now(), l2.now());
        b.store("S", z, 0, a.now());
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), 2);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    fn cross_iteration_cycle_with_mem_dep() {
        let mut b = LoopBuilder::new("memrec");
        let a = b.array_inout("a");
        let ld = b.load("L", a, -1);
        let ad = b.add("A", ld.now(), ld.now());
        let st = b.store("S", a, 0, ad.now());
        b.mem_dep(st, ld, 1);
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &m).unwrap();
        assert_eq!(sched.ii(), 5); // 1 + 3 + 1 over distance 1
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    fn explicit_max_ii_can_fail() {
        let l = chain(4);
        let m = Machine::pxly(1, 3);
        let err = modulo_schedule_with(
            &l,
            &m,
            SchedulerOptions {
                max_ii: Some(3),
                ..SchedulerOptions::default()
            },
        );
        // MII is 4 (> max_ii), so the II loop never runs — the explicit
        // ceiling is hard, and the failure is deterministic.
        assert!(matches!(
            err,
            Err(ScheduleError::NoSchedule { tried_up_to: 3 })
        ));
    }

    #[test]
    fn input_order_priority_still_schedules_validly() {
        let l = chain(6);
        let m = Machine::pxly(2, 3);
        let sched = modulo_schedule_with(
            &l,
            &m,
            SchedulerOptions {
                priority: Priority::InputOrder,
                ..SchedulerOptions::default()
            },
        )
        .unwrap();
        crate::schedule::verify(&l, &m, &sched).unwrap();
    }

    #[test]
    fn height_priority_never_worse_on_chains() {
        // On serial chains both priorities reach the same II; height
        // priorities matter on mixed-width graphs (exercised in the
        // ablation bench), but must never produce an invalid schedule.
        let l = chain(8);
        let m = Machine::pxly(1, 3);
        let h = modulo_schedule_with(&l, &m, SchedulerOptions::default()).unwrap();
        let f = modulo_schedule_with(
            &l,
            &m,
            SchedulerOptions {
                priority: Priority::InputOrder,
                ..SchedulerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(h.ii(), f.ii());
    }

    #[test]
    fn schedule_at_exact_ii() {
        let l = chain(2);
        let m = Machine::pxly(1, 3);
        let s = schedule_at_ii(&l, &m, 5).unwrap().unwrap();
        assert_eq!(s.ii(), 5);
        assert!(verify(&l, &m, &s).is_ok());
    }

    #[test]
    fn wide_graph_saturates_both_clusters() {
        // 4 independent multiply chains: 4 muls on 2 multipliers => II 2.
        let mut b = LoopBuilder::new("wide");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let mut outs = Vec::new();
        for i in 0..4 {
            let l = b.load(format!("L{i}"), x, i);
            let m = b.mul(format!("M{i}"), l.now(), ValueRef::Const(2.0));
            outs.push(m);
        }
        let a1 = b.add("A1", outs[0].now(), outs[1].now());
        let a2 = b.add("A2", outs[2].now(), outs[3].now());
        let a3 = b.add("A3", a1.now(), a2.now());
        b.store("S", z, 0, a3.now());
        let l = b.finish(Weight::default()).unwrap();
        let m = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &m).unwrap();
        // ResMII: 4 loads + 1 store on 4 mem ports => 2; 4 muls on 2 => 2;
        // 3 adds on 2 => 2.
        assert_eq!(sched.ii(), 2);
        assert!(verify(&l, &m, &sched).is_ok());
        // Both multiplier instances are used.
        let g = m.group_for(ncdrf_ddg::OpKind::FpMul).unwrap();
        let instances: std::collections::HashSet<usize> = l
            .iter_ops()
            .filter(|(_, op)| op.kind() == ncdrf_ddg::OpKind::FpMul)
            .map(|(id, _)| sched.unit(id).instance)
            .collect();
        assert_eq!(instances.len(), m.groups()[g].count().min(2));
    }
}
