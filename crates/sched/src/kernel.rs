//! Rendering the steady-state kernel (the paper's Figures 4 and 5).

use crate::schedule::Schedule;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{ClusterId, Machine, UnitRef};
use std::fmt;

/// One slot of the kernel table: a functional unit at a kernel row, and
/// the operation occupying it (if any) with its stage number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSlotEntry {
    /// The functional unit.
    pub unit: UnitRef,
    /// The unit's cluster.
    pub cluster: ClusterId,
    /// Kernel row (0..II).
    pub row: u32,
    /// The occupying operation and its stage (counted from 1, as in the
    /// paper's bracketed figures), or `None` for a no-op slot.
    pub op: Option<(OpId, u32)>,
}

/// A fully-expanded view of the kernel: `II` rows × all unit instances,
/// grouped by cluster. This is the same information as the paper's kernel
/// code figures (e.g. `[11] A6 | [2] M3 | [1] L1 | [1] L2 || [5] A4 | ...`).
#[derive(Debug, Clone)]
pub struct KernelView {
    entries: Vec<KernelSlotEntry>,
    ii: u32,
    names: Vec<String>,
}

impl KernelView {
    /// Builds the kernel view of a schedule.
    pub fn new(l: &Loop, machine: &Machine, sched: &Schedule) -> Self {
        let mut entries = Vec::new();
        for row in 0..sched.ii() {
            for (g, grp) in machine.groups().iter().enumerate() {
                for instance in 0..grp.count() {
                    let unit = UnitRef { group: g, instance };
                    let op = sched
                        .occupant(unit, row)
                        .map(|op| (op, sched.stage(op) + 1));
                    entries.push(KernelSlotEntry {
                        unit,
                        cluster: machine.cluster_of(unit),
                        row,
                        op,
                    });
                }
            }
        }
        KernelView {
            entries,
            ii: sched.ii(),
            names: l.ops().iter().map(|o| o.name().to_string()).collect(),
        }
    }

    /// All slots, ordered by row then group then instance.
    pub fn entries(&self) -> &[KernelSlotEntry] {
        &self.entries
    }

    /// The initiation interval (number of kernel rows).
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The slots of one cluster in one row.
    pub fn row_for_cluster(&self, row: u32, cluster: ClusterId) -> Vec<&KernelSlotEntry> {
        self.entries
            .iter()
            .filter(|e| e.row == row && e.cluster == cluster)
            .collect()
    }
}

impl fmt::Display for KernelView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clusters: Vec<ClusterId> = {
            let mut cs: Vec<ClusterId> = self.entries.iter().map(|e| e.cluster).collect();
            cs.sort();
            cs.dedup();
            cs
        };
        for row in 0..self.ii {
            write!(f, "cycle {row:2}: ")?;
            for (ci, &c) in clusters.iter().enumerate() {
                if ci > 0 {
                    write!(f, " || ")?;
                }
                let slots = self.row_for_cluster(row, c);
                for (i, slot) in slots.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    match slot.op {
                        Some((op, stage)) => write!(f, "[{stage}] {}", self.names[op.index()])?,
                        None => write!(f, "nop")?,
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::modulo_schedule;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_machine::Machine;

    #[test]
    fn kernel_view_covers_all_slots() {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        b.store("S", z, 0, m.now());
        let lp = b.finish(Weight::default()).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&lp, &machine).unwrap();
        let view = KernelView::new(&lp, &machine, &sched);
        assert_eq!(
            view.entries().len(),
            (sched.ii() as usize) * machine.total_units()
        );
        let occupied = view.entries().iter().filter(|e| e.op.is_some()).count();
        assert_eq!(occupied, lp.ops().len());
        let text = view.to_string();
        assert!(text.contains("[1] L") || text.contains("L"));
        assert!(text.contains("||")); // two clusters rendered
    }
}
