//! The modulo reservation table (MRT).

use ncdrf_ddg::OpId;
use ncdrf_machine::Machine;

/// Resource occupancy of a schedule-in-progress: for every functional-unit
/// group, II rows of per-instance slots.
///
/// An operation scheduled at absolute cycle `t` occupies row `t % II` of
/// one instance of its group for one cycle (all units are fully pipelined).
#[derive(Debug, Clone)]
pub(crate) struct ModuloReservationTable {
    ii: u32,
    /// `slots[group][row][instance]`
    slots: Vec<Vec<Vec<Option<OpId>>>>,
}

impl ModuloReservationTable {
    pub(crate) fn new(machine: &Machine, ii: u32) -> Self {
        let slots = machine
            .groups()
            .iter()
            .map(|g| vec![vec![None; g.count()]; ii as usize])
            .collect();
        ModuloReservationTable { ii, slots }
    }

    /// First free instance of `group` at absolute time `t`, if any.
    pub(crate) fn free_instance(&self, group: usize, t: u32) -> Option<usize> {
        let row = (t % self.ii) as usize;
        self.slots[group][row].iter().position(Option::is_none)
    }

    /// Occupies an instance. Panics if taken (internal logic error).
    pub(crate) fn place(&mut self, op: OpId, group: usize, instance: usize, t: u32) {
        let row = (t % self.ii) as usize;
        let cell = &mut self.slots[group][row][instance];
        debug_assert!(cell.is_none(), "MRT cell already occupied");
        *cell = Some(op);
    }

    /// Frees the cell occupied by `op`. Panics if the cell does not hold
    /// `op` (internal logic error).
    pub(crate) fn remove(&mut self, op: OpId, group: usize, instance: usize, t: u32) {
        let row = (t % self.ii) as usize;
        let cell = &mut self.slots[group][row][instance];
        debug_assert_eq!(*cell, Some(op), "MRT cell does not hold the evicted op");
        *cell = None;
    }

    /// All occupants of `group`'s row at time `t`, with their instance.
    pub(crate) fn occupants(&self, group: usize, t: u32) -> Vec<(usize, OpId)> {
        let row = (t % self.ii) as usize;
        self.slots[group][row]
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| cell.map(|op| (i, op)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;

    #[test]
    fn place_and_free_roundtrip() {
        let m = Machine::clustered(3, 1);
        let mut mrt = ModuloReservationTable::new(&m, 2);
        let op = OpId::from_index(0);
        assert_eq!(mrt.free_instance(0, 5), Some(0));
        mrt.place(op, 0, 0, 5);
        // Row 5 % 2 == 1: instance 0 taken, instance 1 free.
        assert_eq!(mrt.free_instance(0, 3), Some(1));
        // Row 0 untouched.
        assert_eq!(mrt.free_instance(0, 4), Some(0));
        let occ = mrt.occupants(0, 1);
        assert_eq!(occ, vec![(0, op)]);
        mrt.remove(op, 0, 0, 5);
        assert_eq!(mrt.free_instance(0, 3), Some(0));
    }

    #[test]
    fn full_row_reports_no_free_instance() {
        let m = Machine::clustered(3, 1);
        let mut mrt = ModuloReservationTable::new(&m, 1);
        mrt.place(OpId::from_index(0), 0, 0, 0);
        mrt.place(OpId::from_index(1), 0, 1, 7);
        assert_eq!(mrt.free_instance(0, 3), None);
    }
}
