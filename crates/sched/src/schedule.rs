//! The [`Schedule`] type and independent verification.

use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{ClusterId, Machine, UnitRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A modulo schedule: an initiation interval plus, per operation, an
/// absolute start cycle (of iteration 0) and a functional-unit binding.
///
/// Derived quantities:
///
/// * **kernel slot** `start % II` — the row of the kernel the operation
///   occupies,
/// * **stage** `start / II` — which overlapped iteration the kernel row
///   belongs to (the bracketed numbers of the paper's Figures 4–5),
/// * **cluster** — the cluster of the bound unit on a clustered machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    ii: u32,
    start: Vec<u32>,
    unit: Vec<UnitRef>,
    stages: u32,
}

impl Schedule {
    /// Assembles a schedule from raw parts. `starts` and `units` are
    /// indexed by [`OpId::index`]. The stage count is computed from the
    /// machine's latencies (an iteration spans `ceil(max(start+lat)/II)`
    /// stages, matching the paper's "14 pipestages" accounting).
    ///
    /// # Panics
    ///
    /// Panics if the vectors' length differs from the loop's op count or if
    /// `ii == 0`.
    pub fn from_parts(
        l: &Loop,
        machine: &Machine,
        ii: u32,
        start: Vec<u32>,
        unit: Vec<UnitRef>,
    ) -> Self {
        assert!(ii > 0, "II must be positive");
        assert_eq!(start.len(), l.ops().len());
        assert_eq!(unit.len(), l.ops().len());
        let span = l
            .iter_ops()
            .map(|(id, op)| start[id.index()] + machine.latency(op.kind()).expect("servable loop"))
            .max()
            .unwrap_or(ii);
        let stages = span.div_ceil(ii).max(1);
        Schedule {
            ii,
            start,
            unit,
            stages,
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Absolute start cycle of `op` (iteration 0).
    pub fn start(&self, op: OpId) -> u32 {
        self.start[op.index()]
    }

    /// Functional-unit binding of `op`.
    pub fn unit(&self, op: OpId) -> UnitRef {
        self.unit[op.index()]
    }

    /// Kernel row of `op` (`start % II`).
    pub fn kernel_slot(&self, op: OpId) -> u32 {
        self.start[op.index()] % self.ii
    }

    /// Pipeline stage of `op` (`start / II`), counted from 0. The paper's
    /// figures display stages counted from 1; [`KernelView`] adds the
    /// offset when rendering.
    ///
    /// [`KernelView`]: crate::KernelView
    pub fn stage(&self, op: OpId) -> u32 {
        self.start[op.index()] / self.ii
    }

    /// Number of pipeline stages an iteration spans.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// The cluster executing `op`.
    pub fn cluster(&self, op: OpId, machine: &Machine) -> ClusterId {
        machine.cluster_of(self.unit[op.index()])
    }

    /// Rebinds `op` to another instance of the *same* group at the *same*
    /// kernel slot. Used by the swapping pass.
    ///
    /// # Panics
    ///
    /// Panics if the new unit's group differs from the current binding's.
    pub fn rebind(&mut self, op: OpId, unit: UnitRef) {
        assert_eq!(
            self.unit[op.index()].group,
            unit.group,
            "rebind must stay within the op's functional-unit group"
        );
        self.unit[op.index()] = unit;
    }

    /// Swaps the unit bindings of two operations (same group, same kernel
    /// slot — the legal "swap" of the paper's §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the ops are bound to different groups or occupy different
    /// kernel slots.
    pub fn swap_units(&mut self, a: OpId, b: OpId) {
        assert_eq!(
            self.unit[a.index()].group,
            self.unit[b.index()].group,
            "swapped ops must use the same kind of functional unit"
        );
        assert_eq!(
            self.kernel_slot(a),
            self.kernel_slot(b),
            "swapped ops must be scheduled in the same kernel cycle"
        );
        self.unit.swap(a.index(), b.index());
    }

    /// The op bound to `unit` at kernel slot `slot`, if any.
    pub fn occupant(&self, unit: UnitRef, slot: u32) -> Option<OpId> {
        (0..self.start.len())
            .map(OpId::from_index)
            .find(|&op| self.unit[op.index()] == unit && self.kernel_slot(op) == slot)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule II={} stages={} ops={}",
            self.ii,
            self.stages,
            self.start.len()
        )
    }
}

/// A constraint violated by a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A dependence `from -> to` with distance `dist` is not satisfied.
    Dependence {
        /// Producer op index.
        from: usize,
        /// Consumer op index.
        to: usize,
        /// Dependence distance.
        dist: u32,
    },
    /// Two operations share a functional-unit instance in the same kernel
    /// row.
    ResourceConflict {
        /// First op index.
        a: usize,
        /// Second op index.
        b: usize,
    },
    /// An operation is bound to a unit that cannot execute it or does not
    /// exist.
    BadBinding {
        /// Offending op index.
        op: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Dependence { from, to, dist } => {
                write!(f, "dependence op{from} -> op{to} (dist {dist}) violated")
            }
            VerifyError::ResourceConflict { a, b } => {
                write!(f, "ops op{a} and op{b} collide on a functional unit")
            }
            VerifyError::BadBinding { op } => write!(f, "op op{op} has an illegal unit binding"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Independently checks that `sched` satisfies every dependence
/// (`start(to) >= start(from) + latency(from) - II*dist`) and that no two
/// operations collide on a functional-unit instance in the same kernel row.
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn verify(l: &Loop, machine: &Machine, sched: &Schedule) -> Result<(), VerifyError> {
    let ii = sched.ii() as i64;
    for (from, to, dist) in l.sched_edges() {
        let lat = machine
            .latency(l.op(from).kind())
            .map_err(|_| VerifyError::BadBinding { op: from.index() })? as i64;
        let lhs = sched.start(to) as i64;
        let rhs = sched.start(from) as i64 + lat - ii * dist as i64;
        if lhs < rhs {
            return Err(VerifyError::Dependence {
                from: from.index(),
                to: to.index(),
                dist,
            });
        }
    }
    // Bindings are legal and conflict-free.
    let n = l.ops().len();
    for (id, op) in l.iter_ops() {
        let unit = sched.unit(id);
        let group = machine
            .group_for(op.kind())
            .map_err(|_| VerifyError::BadBinding { op: id.index() })?;
        if unit.group != group || unit.instance >= machine.groups()[group].count() {
            return Err(VerifyError::BadBinding { op: id.index() });
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            let (ida, idb) = (OpId::from_index(a), OpId::from_index(b));
            if sched.unit(ida) == sched.unit(idb)
                && sched.kernel_slot(ida) == sched.kernel_slot(idb)
            {
                return Err(VerifyError::ResourceConflict { a, b });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_machine::Machine;

    fn tiny() -> (Loop, Machine) {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        b.store("S", z, 0, m.now());
        (
            b.finish(Weight::default()).unwrap(),
            Machine::clustered(3, 1),
        )
    }

    fn unit(machine: &Machine, l: &Loop, op: OpId, instance: usize) -> UnitRef {
        UnitRef {
            group: machine.group_for(l.op(op).kind()).unwrap(),
            instance,
        }
    }

    #[test]
    fn stage_and_slot_derivation() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        let sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 1, 4],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 1),
            ],
        );
        assert_eq!(sched.kernel_slot(mu), 1);
        assert_eq!(sched.stage(mu), 0);
        assert_eq!(sched.stage(st), 2);
        // span = max(0+1, 1+3, 4+1) = 5 -> ceil(5/2) = 3 stages.
        assert_eq!(sched.stages(), 3);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    fn verify_catches_dependence_violation() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        // M starts at 0 but depends on L (latency 1).
        let sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 0, 4],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 1),
            ],
        );
        assert!(matches!(
            verify(&l, &m, &sched),
            Err(VerifyError::Dependence { .. })
        ));
    }

    #[test]
    fn verify_catches_resource_conflict() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        // L and S both on mem instance 0, same kernel slot (0 and 4, II=2
        // -> slots 0 and 0).
        let sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 1, 4],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 0),
            ],
        );
        assert!(matches!(
            verify(&l, &m, &sched),
            Err(VerifyError::ResourceConflict { .. })
        ));
    }

    #[test]
    fn swap_units_exchanges_bindings() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        let mut sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 1, 4],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 1),
            ],
        );
        // L (slot 0) and S (slot 4 % 2 == 0) are both mem ops: swappable.
        sched.swap_units(lo, st);
        assert_eq!(sched.unit(lo).instance, 1);
        assert_eq!(sched.unit(st).instance, 0);
        assert!(verify(&l, &m, &sched).is_ok());
    }

    #[test]
    #[should_panic(expected = "same kernel cycle")]
    fn swap_units_rejects_different_slots() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        let mut sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 1, 5],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 1),
            ],
        );
        sched.swap_units(lo, st);
    }

    #[test]
    fn occupant_lookup() {
        let (l, m) = tiny();
        let (lo, mu, st) = (
            OpId::from_index(0),
            OpId::from_index(1),
            OpId::from_index(2),
        );
        let sched = Schedule::from_parts(
            &l,
            &m,
            2,
            vec![0, 1, 4],
            vec![
                unit(&m, &l, lo, 0),
                unit(&m, &l, mu, 0),
                unit(&m, &l, st, 1),
            ],
        );
        assert_eq!(sched.occupant(unit(&m, &l, lo, 0), 0), Some(lo));
        assert_eq!(sched.occupant(unit(&m, &l, lo, 0), 1), None);
        assert_eq!(sched.occupant(unit(&m, &l, st, 1), 0), Some(st));
    }
}
