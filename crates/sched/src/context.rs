//! [`SchedContext`]: an arena-backed scheduling context with an
//! incremental rescheduling entry point for the spill descent.
//!
//! The paper's §5.4 spill loop re-runs a *full* IMS reschedule after
//! every spill step, even though each step appends a handful of ops
//! (one spill store plus reloads) and patches a few operand edges. A
//! `SchedContext` removes the redundant work on two axes — without
//! changing a single output bit:
//!
//! * **Arena/SoA scratch.** All scheduling state (the modulo
//!   reservation table, CSR predecessor/successor lists, heights,
//!   start/instance/pick arrays, the priority heap) lives in flat,
//!   `u32`-indexed buffers owned by the context and reused across
//!   calls, so the steady path of a spill descent allocates nothing
//!   per II attempt. The reference scheduler
//!   ([`modulo_schedule_with`](crate::modulo_schedule_with)) allocates
//!   ~10 vectors per attempt.
//! * **Incremental rescheduling.** The context caches the raw
//!   (pre-normalization) placements, unit instances, per-op scheduling
//!   budget consumption and final II of its previous successful run.
//!   When the next loop extends the cached one — same name, machine
//!   and options, ops appended at the end (exactly what a spill
//!   rewrite produces) — the context computes a **dirty set**: the
//!   closure of the appended ops and every changed edge/op under
//!   dependence edges *and* functional-unit-group sharing, in both the
//!   old and the new graph. Ops outside the closure (the *clean*
//!   component) provably schedule to identical slots, so at the cached
//!   II only dirty ops re-enter the scheduling queue; clean placements
//!   are reused verbatim and the reference budget accounting is
//!   preserved by charging the clean component's recorded pick count.
//!
//! The dirty closure is a sound over-approximation by construction —
//! the seeds are recomputed from the actual graph difference, not from
//! a caller contract — and when it grows to the whole loop the
//! incremental path degrades to exactly the full-reschedule result
//! (the merged attempt *is* a full attempt when the clean component is
//! empty). Bit-identity of `SchedContext::schedule` against the
//! reference scheduler, for every II search and on every grid preset,
//! is pinned by the repository's `incremental_resched` differential
//! suite and the `proptest_spill` property tests.

use crate::ims::{ScheduleError, SchedulerOptions};
use crate::mii::mii;
use crate::schedule::Schedule;
use crate::Priority;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError, UnitRef};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "unscheduled" / "never placed" in the flat arrays.
const UNSCHED: u32 = u32::MAX;

/// The sanctioned narrow into the context's `u32` SoA index space
/// (ops, groups, edges): asserts the index fits instead of silently
/// wrapping on a loop the arenas were never sized for.
#[inline]
fn idx32(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "SoA index {i} overflows u32");
    i as u32
}

/// The sanctioned narrow for non-negative schedule times computed in
/// `i64` (earliest-start arithmetic): asserts the cycle fits in the
/// `u32` start arrays.
#[inline]
fn time32(t: i64) -> u32 {
    debug_assert!(
        (0..=i64::from(u32::MAX)).contains(&t),
        "schedule time {t} outside u32"
    );
    t as u32
}

/// The cached outcome of the previous successful scheduling run: enough
/// to (a) decide whether the next loop is an extension of this one,
/// (b) recompute the dirty closure soundly from the real graph
/// difference, and (c) reuse clean placements bit-identically.
#[derive(Debug, Clone)]
struct RunCache {
    loop_name: String,
    machine: Machine,
    opts: SchedulerOptions,
    /// Op count of the cached loop.
    n: usize,
    /// Final (successful) II.
    ii: u32,
    /// Raw start cycles *before* the kernel-preserving normalization
    /// shift — the shift is global, so merging reused and re-run
    /// placements must happen in raw coordinates.
    raw_start: Vec<u32>,
    /// Unit instance per op.
    instance: Vec<u32>,
    /// Times each op was picked (= budget units it consumed) during the
    /// final successful II attempt.
    picks: Vec<u32>,
    /// Functional-unit group per op, at cache time.
    group: Vec<u32>,
    /// Latency per op, at cache time.
    lat: Vec<u32>,
    /// Scheduling edges `(from, to, dist)` of the cached loop, sorted
    /// (for the multiset difference against the next loop's edges).
    edges: Vec<(u32, u32, u32)>,
}

/// Reusable arena for modulo scheduling, plus the incremental-reschedule
/// cache. See the module docs for the design; `SchedContext::schedule`
/// is bit-identical to [`modulo_schedule_with`](crate::modulo_schedule_with)
/// for every input.
#[derive(Debug, Clone, Default)]
pub struct SchedContext {
    // Per-call analysis (rebuilt each `schedule`, allocation-free once warm).
    edge_scratch: Vec<(OpId, OpId, u32)>,
    edges: Vec<(u32, u32, u32)>,
    group: Vec<u32>,
    lat: Vec<u32>,
    num_groups: usize,
    pred_off: Vec<u32>,
    pred_edge: Vec<u32>,
    succ_off: Vec<u32>,
    succ_edge: Vec<u32>,
    cursor: Vec<u32>,
    // Per-attempt scratch.
    height: Vec<i64>,
    start: Vec<u32>,
    instance: Vec<u32>,
    prev_time: Vec<u32>,
    picks: Vec<u32>,
    heap: BinaryHeap<(i64, Reverse<u32>)>,
    mrt_off: Vec<u32>,
    mrt_cnt: Vec<u32>,
    mrt: Vec<u32>,
    // Dirty-closure scratch.
    dirty: Vec<bool>,
    gdirty_new: Vec<bool>,
    gdirty_old: Vec<bool>,
    new_restricted: Vec<(u32, u32, u32)>,
    // Observability for the differential/property suites.
    clean: Vec<bool>,
    clean_valid: bool,
    last_reused: usize,
    // Previous successful run.
    cache: Option<RunCache>,
}

impl SchedContext {
    /// Creates an empty context. The first `schedule` call sizes the
    /// arenas; later calls on similarly-shaped loops allocate nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached previous run: the next `schedule` call takes
    /// the full (non-incremental) path. Scratch capacity is kept.
    pub fn invalidate(&mut self) {
        self.cache = None;
        self.clean_valid = false;
        self.last_reused = 0;
    }

    /// Ops whose placements were reused verbatim from the cached run in
    /// the last `schedule` call (0 when the full path ran, when the
    /// dirty closure covered the whole loop, or when the merged attempt
    /// failed and a different II won).
    pub fn last_reused_ops(&self) -> usize {
        self.last_reused
    }

    /// Per-op clean mask of the last `schedule` call, when its result
    /// came from the merged (placement-reusing) attempt: `true` means
    /// the op was outside the dirty closure and kept its cached
    /// placement. `None` when the full path produced the result.
    pub fn last_clean_mask(&self) -> Option<&[bool]> {
        self.clean_valid.then_some(self.clean.as_slice())
    }

    /// Whether the context holds a cached run usable as an incremental
    /// base for a loop with this name and at least `prev_ops` ops.
    pub fn has_cached_run(&self, loop_name: &str, prev_ops: usize) -> bool {
        self.cache
            .as_ref()
            .is_some_and(|c| c.loop_name == loop_name && c.n == prev_ops)
    }

    /// Schedules `l` on `machine`, searching IIs upward from the MII —
    /// bit-identical to [`modulo_schedule_with`](crate::modulo_schedule_with)
    /// — reusing this context's arenas and, when `l` extends the
    /// previously scheduled loop, the cached clean-component placements.
    ///
    /// # Errors
    ///
    /// Exactly those of [`modulo_schedule_with`](crate::modulo_schedule_with).
    pub fn schedule(
        &mut self,
        l: &Loop,
        machine: &Machine,
        opts: SchedulerOptions,
    ) -> Result<Schedule, ScheduleError> {
        // Take the previous run out so the borrow checker lets the
        // scratch arenas and the cache be used together; a new cache is
        // written back only on success, so every failure path leaves the
        // context safely invalidated.
        let prev = self.cache.take();
        self.last_reused = 0;
        self.clean_valid = false;

        let info = mii(l, machine)?;
        let n = l.ops().len();
        let seq_len: u32 = l
            .ops()
            .iter()
            .map(|op| machine.latency(op.kind()).unwrap_or(1))
            .sum::<u32>()
            + idx32(n)
            + 1;
        let max_ii = match opts.max_ii {
            Some(cap) => cap,
            None => seq_len.max(info.mii),
        };
        self.analyze(l, machine)?;

        // The II at which the merged (clean-placement-reusing) attempt
        // may replace the full attempt, when the cached run extends to
        // this loop and the dirty closure leaves a clean component.
        let merge_ii = prev
            .as_ref()
            .and_then(|p| self.prepare_incremental(l, machine, opts, p));

        for ii in info.mii..=max_ii {
            // Quick infeasibility check: a self-dependence tighter than
            // II (the reference scheduler's per-II pre-check).
            if self
                .edges
                .iter()
                .any(|&(f, t, d)| f == t && self.lat[f as usize] as i64 > ii as i64 * d as i64)
            {
                continue;
            }
            let total_budget: u64 = (opts.budget_ratio as u64).saturating_mul(n as u64).max(64);
            let ok = if Some(ii) == merge_ii {
                let p = prev.as_ref().expect("merge_ii implies a cached run");
                self.attempt_merged(p, n, ii, opts, total_budget)
            } else {
                self.attempt(n, ii, opts.priority, total_budget, false)
            };
            if ok {
                return Ok(self.commit(l, machine, ii, opts, prev));
            }
        }
        Err(ScheduleError::NoSchedule {
            tried_up_to: max_ii,
        })
    }

    /// The incremental entry point, spelled out: schedules `l` assuming
    /// the context's cached run covers its first `prev_ops` ops (the
    /// spill-rewrite contract — ops are only appended, never removed or
    /// reordered). This is [`SchedContext::schedule`] plus a debug
    /// assertion of that precondition; the dirty closure itself never
    /// trusts it (seeds are recomputed from the real graph difference),
    /// so a violated contract costs performance, not correctness.
    ///
    /// # Errors
    ///
    /// Exactly those of [`modulo_schedule_with`](crate::modulo_schedule_with).
    pub fn reschedule_extended(
        &mut self,
        l: &Loop,
        machine: &Machine,
        opts: SchedulerOptions,
        prev_ops: usize,
    ) -> Result<Schedule, ScheduleError> {
        debug_assert!(
            self.has_cached_run(l.name(), prev_ops),
            "reschedule_extended: no cached run for `{}` at {prev_ops} ops",
            l.name()
        );
        debug_assert!(prev_ops <= l.ops().len());
        self.schedule(l, machine, opts)
    }

    /// Builds per-op groups/latencies, the flat edge list and the CSR
    /// predecessor/successor indices for `l` into the arenas.
    fn analyze(&mut self, l: &Loop, machine: &Machine) -> Result<(), MachineError> {
        let n = l.ops().len();
        self.group.clear();
        self.lat.clear();
        for (_, op) in l.iter_ops() {
            let g = machine.group_for(op.kind())?;
            let lt = machine.latency(op.kind())?;
            if machine.groups()[g].count() == 0 {
                return Err(MachineError::Unserved(op.kind()));
            }
            self.group.push(idx32(g));
            self.lat.push(lt);
        }
        self.num_groups = machine.groups().len();
        self.mrt_cnt.clear();
        for g in machine.groups() {
            self.mrt_cnt.push(idx32(g.count()));
        }

        l.sched_edges_into(&mut self.edge_scratch);
        self.edges.clear();
        for &(f, t, d) in &self.edge_scratch {
            self.edges.push((idx32(f.index()), idx32(t.index()), d));
        }
        let ne = self.edges.len();

        // CSR by destination (preds) and by source (succs); the cursor
        // fill preserves edge order within each bucket, matching the
        // reference scheduler's push order.
        self.pred_off.clear();
        self.pred_off.resize(n + 1, 0);
        for &(_, t, _) in &self.edges {
            self.pred_off[t as usize + 1] += 1;
        }
        for i in 0..n {
            self.pred_off[i + 1] += self.pred_off[i];
        }
        self.pred_edge.clear();
        self.pred_edge.resize(ne, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.pred_off[..n]);
        for e in 0..ne {
            let t = self.edges[e].1 as usize;
            self.pred_edge[self.cursor[t] as usize] = idx32(e);
            self.cursor[t] += 1;
        }

        self.succ_off.clear();
        self.succ_off.resize(n + 1, 0);
        for &(f, _, _) in &self.edges {
            self.succ_off[f as usize + 1] += 1;
        }
        for i in 0..n {
            self.succ_off[i + 1] += self.succ_off[i];
        }
        self.succ_edge.clear();
        self.succ_edge.resize(ne, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.succ_off[..n]);
        for e in 0..ne {
            let f = self.edges[e].0 as usize;
            self.succ_edge[self.cursor[f] as usize] = idx32(e);
            self.cursor[f] += 1;
        }
        Ok(())
    }

    /// Decides whether the cached run can seed an incremental attempt
    /// for `l`, and computes the dirty closure if so. Returns the II at
    /// which the merged attempt replaces the full attempt (the cached
    /// final II), or `None` when the cache does not apply or no op
    /// stays clean.
    fn prepare_incremental(
        &mut self,
        l: &Loop,
        machine: &Machine,
        opts: SchedulerOptions,
        prev: &RunCache,
    ) -> Option<u32> {
        let n = l.ops().len();
        if prev.loop_name != l.name() || prev.opts != opts || prev.n > n || prev.machine != *machine
        {
            return None;
        }
        let m = prev.n;

        // Seeds: appended ops, ops whose group/latency changed, and the
        // endpoints of every edge in the multiset difference between the
        // cached and the current graph (restricted to the shared ops).
        self.dirty.clear();
        self.dirty.resize(n, false);
        for d in self.dirty[m..n].iter_mut() {
            *d = true;
        }
        for v in 0..m {
            if prev.group[v] != self.group[v] || prev.lat[v] != self.lat[v] {
                self.dirty[v] = true;
            }
        }
        self.new_restricted.clear();
        for &(f, t, d) in &self.edges {
            if (f as usize) < m && (t as usize) < m {
                self.new_restricted.push((f, t, d));
            }
        }
        self.new_restricted.sort_unstable();
        // Sorted multiset walk: any edge present in one graph but not
        // the other (multiplicity included) dirties both endpoints.
        let (mut i, mut j) = (0usize, 0usize);
        while i < prev.edges.len() || j < self.new_restricted.len() {
            let take_old = match (prev.edges.get(i), self.new_restricted.get(j)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            let &(f, t, _) = if take_old {
                let e = &prev.edges[i];
                i += 1;
                e
            } else {
                let e = &self.new_restricted[j];
                j += 1;
                e
            };
            self.dirty[f as usize] = true;
            self.dirty[t as usize] = true;
        }

        // Closure under dependence edges (old and new) and functional-
        // unit-group sharing (old and new groups): clean ops must be
        // isolated in *both* graphs for their cached trace to equal
        // their trace in a full re-run.
        let mut dirty_count = self.dirty.iter().filter(|&&d| d).count();
        if dirty_count == n {
            return None;
        }
        let old_groups = prev
            .group
            .iter()
            .map(|&g| g as usize + 1)
            .max()
            .unwrap_or(0);
        self.gdirty_new.clear();
        self.gdirty_new.resize(self.num_groups, false);
        self.gdirty_old.clear();
        self.gdirty_old.resize(old_groups, false);
        loop {
            let mut changed = false;
            for &(f, t, _) in &self.edges {
                let (f, t) = (f as usize, t as usize);
                if self.dirty[f] != self.dirty[t] {
                    self.dirty[f] = true;
                    self.dirty[t] = true;
                    dirty_count += 1;
                    changed = true;
                }
            }
            for &(f, t, _) in &prev.edges {
                let (f, t) = (f as usize, t as usize);
                if self.dirty[f] != self.dirty[t] {
                    self.dirty[f] = true;
                    self.dirty[t] = true;
                    dirty_count += 1;
                    changed = true;
                }
            }
            // A saturated closure can never un-dirty: bail out before
            // paying the group-spread and confirmation passes.
            if dirty_count == n {
                return None;
            }
            for g in self.gdirty_new.iter_mut() {
                *g = false;
            }
            for g in self.gdirty_old.iter_mut() {
                *g = false;
            }
            for v in 0..n {
                if self.dirty[v] {
                    self.gdirty_new[self.group[v] as usize] = true;
                    if v < m {
                        self.gdirty_old[prev.group[v] as usize] = true;
                    }
                }
            }
            for v in 0..n {
                if !self.dirty[v]
                    && (self.gdirty_new[self.group[v] as usize]
                        || (v < m && self.gdirty_old[prev.group[v] as usize]))
                {
                    self.dirty[v] = true;
                    dirty_count += 1;
                    changed = true;
                }
            }
            if dirty_count == n {
                return None;
            }
            if !changed {
                break;
            }
        }

        Some(prev.ii)
    }

    /// One IMS attempt at `ii` over the analyzed loop, using the arena
    /// scratch. With `restricted`, only dirty ops enter the queue (the
    /// clean component is merged afterwards). Returns success; on
    /// success `start`/`instance`/`picks` hold the raw outcome.
    ///
    /// The pick loop replaces the reference scheduler's O(n) max-scan
    /// with a lazy max-heap over the same total order
    /// `(height, Reverse(index))`: heights are fixed per attempt, so
    /// duplicate entries are indistinguishable and stale entries (ops
    /// currently scheduled) are skipped on pop — the sequence of valid
    /// pops is exactly the reference's sequence of max-scans, and the
    /// budget is charged on valid pops only, exactly as the reference
    /// charges it per pick.
    fn attempt(
        &mut self,
        n: usize,
        ii: u32,
        priority: Priority,
        mut budget: u64,
        restricted: bool,
    ) -> bool {
        self.compute_heights(n, ii, priority);
        self.start.clear();
        self.start.resize(n, UNSCHED);
        self.instance.clear();
        self.instance.resize(n, 0);
        self.prev_time.clear();
        self.prev_time.resize(n, UNSCHED);
        self.picks.clear();
        self.picks.resize(n, 0);

        self.mrt_off.clear();
        let mut total = 0u32;
        for g in 0..self.num_groups {
            self.mrt_off.push(total);
            total += ii * self.mrt_cnt[g];
        }
        self.mrt.clear();
        self.mrt.resize(total as usize, UNSCHED);

        self.heap.clear();
        for v in 0..n {
            if !restricted || self.dirty[v] {
                self.heap.push((self.height[v], Reverse(idx32(v))));
            }
        }

        while let Some((_, Reverse(vid))) = self.heap.pop() {
            let op = vid as usize;
            if self.start[op] != UNSCHED {
                continue; // stale entry: op was rescheduled since
            }
            if budget == 0 {
                return false;
            }
            budget -= 1;
            self.picks[op] += 1;

            let mut estart: i64 = 0;
            for k in self.pred_off[op]..self.pred_off[op + 1] {
                let (p, _, dist) = self.edges[self.pred_edge[k as usize] as usize];
                let p = p as usize;
                if self.start[p] != UNSCHED {
                    estart = estart
                        .max(self.start[p] as i64 + self.lat[p] as i64 - ii as i64 * dist as i64);
                }
            }
            let estart = time32(estart.max(0));
            let min_t = if self.prev_time[op] != UNSCHED {
                estart.max(self.prev_time[op] + 1)
            } else {
                estart
            };

            let g = self.group[op] as usize;
            let cnt = self.mrt_cnt[g];
            let base = self.mrt_off[g];
            // First resource-free slot in the II-wide window.
            let mut placed = None;
            'window: for t in min_t..min_t + ii {
                let row = base + (t % ii) * cnt;
                for inst in 0..cnt {
                    if self.mrt[(row + inst) as usize] == UNSCHED {
                        placed = Some((t, inst));
                        break 'window;
                    }
                }
            }
            let (t, inst) = match placed {
                Some(p) => p,
                None => {
                    // Forced placement at min_t: evict the lowest-
                    // priority occupant (first minimum in ascending
                    // instance order, as the reference's `min_by_key`).
                    let row = base + (min_t % ii) * cnt;
                    let mut evict_inst = 0u32;
                    let mut evict_op = self.mrt[row as usize];
                    for inst in 1..cnt {
                        let occ = self.mrt[(row + inst) as usize];
                        if self.height[occ as usize] < self.height[evict_op as usize] {
                            evict_op = occ;
                            evict_inst = inst;
                        }
                    }
                    debug_assert_ne!(evict_op, UNSCHED, "full row has occupants");
                    let eop = evict_op as usize;
                    self.mrt[(row + evict_inst) as usize] = UNSCHED;
                    self.start[eop] = UNSCHED;
                    self.heap.push((self.height[eop], Reverse(evict_op)));
                    (min_t, evict_inst)
                }
            };

            self.start[op] = t;
            self.instance[op] = inst;
            self.prev_time[op] = t;
            self.mrt[(base + (t % ii) * cnt + inst) as usize] = vid;

            // Evict scheduled successors whose dependence is now
            // violated (self-edges were pre-checked).
            for k in self.succ_off[op]..self.succ_off[op + 1] {
                let (_, sid, dist) = self.edges[self.succ_edge[k as usize] as usize];
                let s = sid as usize;
                if s == op {
                    continue;
                }
                let ts = self.start[s];
                if ts != UNSCHED
                    && (ts as i64) < t as i64 + self.lat[op] as i64 - ii as i64 * dist as i64
                {
                    let sg = self.group[s] as usize;
                    let cell = self.mrt_off[sg] + (ts % ii) * self.mrt_cnt[sg] + self.instance[s];
                    debug_assert_eq!(self.mrt[cell as usize], sid);
                    self.mrt[cell as usize] = UNSCHED;
                    self.start[s] = UNSCHED;
                    self.heap.push((self.height[s], Reverse(sid)));
                }
            }
        }
        true
    }

    /// The incremental attempt at the cached II: re-run only the dirty
    /// component, with the budget share the clean component's recorded
    /// picks leave over, then merge the cached clean placements back in
    /// raw coordinates. Succeeds exactly when the full attempt would
    /// (total picks `p_clean + p_dirty` against the same total budget —
    /// pick counts are interleaving-independent because the two
    /// components share no edges and no functional-unit groups).
    fn attempt_merged(
        &mut self,
        prev: &RunCache,
        n: usize,
        ii: u32,
        opts: SchedulerOptions,
        total_budget: u64,
    ) -> bool {
        let mut p_clean: u64 = 0;
        for v in 0..prev.n {
            if !self.dirty[v] {
                p_clean += prev.picks[v] as u64;
            }
        }
        if p_clean > total_budget {
            return false;
        }
        if !self.attempt(n, ii, opts.priority, total_budget - p_clean, true) {
            return false;
        }
        let mut reused = 0usize;
        for v in 0..prev.n {
            if !self.dirty[v] {
                self.start[v] = prev.raw_start[v];
                self.instance[v] = prev.instance[v];
                self.picks[v] = prev.picks[v];
                reused += 1;
            }
        }
        self.last_reused = reused;
        self.clean.clear();
        self.clean.extend(self.dirty.iter().map(|&d| !d));
        self.clean_valid = true;
        true
    }

    /// Normalizes the successful attempt into a [`Schedule`] (earliest
    /// op at cycle 0, kernel slots preserved — the reference's shift by
    /// a multiple of II) and refreshes the run cache for the next
    /// incremental call.
    fn commit(
        &mut self,
        l: &Loop,
        machine: &Machine,
        ii: u32,
        opts: SchedulerOptions,
        prev: Option<RunCache>,
    ) -> Schedule {
        let n = l.ops().len();
        let t0 = self.start[..n].iter().copied().min().unwrap_or(0);
        let shift = (t0 / ii) * ii;
        let starts: Vec<u32> = self.start[..n].iter().map(|&s| s - shift).collect();
        let units: Vec<UnitRef> = (0..n)
            .map(|v| UnitRef {
                group: self.group[v] as usize,
                instance: self.instance[v] as usize,
            })
            .collect();
        let sched = Schedule::from_parts(l, machine, ii, starts, units);
        debug_assert_eq!(crate::schedule::verify(l, machine, &sched), Ok(()));

        // Refresh the run cache, recycling the retired cache's
        // allocations (the common spill-descent case commits once per
        // step with near-identical sizes).
        let mut c = match prev {
            Some(mut c) => {
                if c.loop_name != l.name() {
                    c.loop_name.clear();
                    c.loop_name.push_str(l.name());
                }
                if c.machine != *machine {
                    c.machine = machine.clone();
                }
                c.raw_start.clear();
                c.instance.clear();
                c.picks.clear();
                c.group.clear();
                c.lat.clear();
                c.edges.clear();
                c
            }
            None => RunCache {
                loop_name: l.name().to_owned(),
                machine: machine.clone(),
                opts,
                n,
                ii,
                raw_start: Vec::new(),
                instance: Vec::new(),
                picks: Vec::new(),
                group: Vec::new(),
                lat: Vec::new(),
                edges: Vec::new(),
            },
        };
        c.opts = opts;
        c.n = n;
        c.ii = ii;
        c.raw_start.extend_from_slice(&self.start[..n]);
        c.instance.extend_from_slice(&self.instance[..n]);
        c.picks.extend_from_slice(&self.picks[..n]);
        c.group.extend_from_slice(&self.group[..n]);
        c.lat.extend_from_slice(&self.lat[..n]);
        c.edges.extend_from_slice(&self.edges);
        c.edges.sort_unstable();
        self.cache = Some(c);
        sched
    }

    /// Height priorities into the arena: the reference's fixpoint
    /// relaxation for [`Priority::Height`], program order for
    /// [`Priority::InputOrder`].
    fn compute_heights(&mut self, n: usize, ii: u32, priority: Priority) {
        self.height.clear();
        match priority {
            Priority::InputOrder => {
                for v in 0..n {
                    self.height.push((n - v) as i64);
                }
            }
            Priority::Height => {
                self.height.resize(n, 0);
                for _ in 0..=n {
                    let mut changed = false;
                    for v in 0..n {
                        for k in self.succ_off[v]..self.succ_off[v + 1] {
                            let (_, w, dist) = self.edges[self.succ_edge[k as usize] as usize];
                            let cand = self.lat[v] as i64 - ii as i64 * dist as i64
                                + self.height[w as usize];
                            if cand > self.height[v] {
                                self.height[v] = cand;
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ims::{modulo_schedule_with, Priority};
    use crate::SchedulerOptions;
    use ncdrf_ddg::{LoopBuilder, ValueRef, Weight};
    use ncdrf_machine::Machine;

    fn chain(n_mults: usize) -> Loop {
        let mut b = LoopBuilder::new("chain");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let mut prev = l.now();
        for i in 0..n_mults {
            let m = b.mul(format!("M{i}"), prev, ValueRef::Const(1.5));
            prev = m.now();
        }
        b.store("S", z, 0, prev);
        b.finish(Weight::default()).unwrap()
    }

    /// A loop with a memory component (load feeding a store) and a pure
    /// ALU self-recurrence that never touches memory: the two share no
    /// edges and no functional-unit groups, so a spill-style extension
    /// of the memory side leaves the recurrence clean.
    fn separable() -> Loop {
        let mut b = LoopBuilder::new("separable");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        b.store("S", z, 0, ld.now());
        let a = b.reserve_add("ACC");
        b.bind(a, [ValueRef::Const(1.0), a.prev(1)]);
        b.finish(Weight::default()).unwrap()
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::clustered(3, 1),
            Machine::clustered(6, 1),
            Machine::clustered(3, 2),
            Machine::pxly(1, 3),
            Machine::pxly(2, 6),
        ]
    }

    #[test]
    fn context_matches_reference_on_fresh_loops() {
        for machine in machines() {
            for size in [1, 2, 4, 8] {
                let l = chain(size);
                let mut ctx = SchedContext::new();
                let got = ctx
                    .schedule(&l, &machine, SchedulerOptions::default())
                    .unwrap();
                let want = modulo_schedule_with(&l, &machine, SchedulerOptions::default()).unwrap();
                assert_eq!(got, want, "{} chain({size})", machine.name());
                assert_eq!(ctx.last_reused_ops(), 0);
            }
        }
    }

    #[test]
    fn context_matches_reference_under_input_order_priority() {
        let opts = SchedulerOptions {
            priority: Priority::InputOrder,
            ..SchedulerOptions::default()
        };
        for machine in machines() {
            let l = chain(6);
            let mut ctx = SchedContext::new();
            assert_eq!(
                ctx.schedule(&l, &machine, opts).unwrap(),
                modulo_schedule_with(&l, &machine, opts).unwrap(),
                "{}",
                machine.name()
            );
        }
    }

    #[test]
    fn context_reproduces_reference_failures() {
        let l = chain(4);
        let m = Machine::pxly(1, 3);
        let opts = SchedulerOptions {
            max_ii: Some(3),
            ..SchedulerOptions::default()
        };
        let mut ctx = SchedContext::new();
        assert_eq!(
            ctx.schedule(&l, &m, opts).unwrap_err(),
            modulo_schedule_with(&l, &m, opts).unwrap_err()
        );
        // A failed call invalidates the cache.
        assert!(!ctx.has_cached_run("chain", l.ops().len()));
    }

    #[test]
    fn cache_reuse_on_same_loop_is_bit_identical() {
        let l = chain(5);
        let m = Machine::clustered(3, 2);
        let mut ctx = SchedContext::new();
        let first = ctx.schedule(&l, &m, SchedulerOptions::default()).unwrap();
        // Second run hits the cache (the whole loop is clean) and must
        // reproduce the reference output exactly.
        let second = ctx.schedule(&l, &m, SchedulerOptions::default()).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            second,
            modulo_schedule_with(&l, &m, SchedulerOptions::default()).unwrap()
        );
        assert_eq!(ctx.last_reused_ops(), l.ops().len());
    }

    #[test]
    fn stale_cache_from_a_different_loop_is_ignored() {
        let m = Machine::clustered(3, 1);
        let mut ctx = SchedContext::new();
        ctx.schedule(&chain(3), &m, SchedulerOptions::default())
            .unwrap();
        let other = chain(7);
        let got = ctx
            .schedule(&other, &m, SchedulerOptions::default())
            .unwrap();
        // Same name but shorter cached loop: the graph diff dirties the
        // changed suffix; whatever path runs, the output is identical.
        assert_eq!(
            got,
            modulo_schedule_with(&other, &m, SchedulerOptions::default()).unwrap()
        );
        // A machine switch invalidates outright.
        let m2 = Machine::clustered(6, 1);
        let got = ctx
            .schedule(&other, &m2, SchedulerOptions::default())
            .unwrap();
        assert_eq!(
            got,
            modulo_schedule_with(&other, &m2, SchedulerOptions::default()).unwrap()
        );
        assert_eq!(ctx.last_reused_ops(), 0);
    }

    #[test]
    fn separable_extension_reuses_the_clean_component() {
        let l = separable();
        let m = Machine::clustered(3, 1);
        let mut ctx = SchedContext::new();
        ctx.schedule(&l, &m, SchedulerOptions::default()).unwrap();

        // Extend the memory side the way a spill rewrite would: rebuild
        // the loop with an extra load consumed by an extra store. The
        // ACC/MACC recurrence keeps its ops, edges and groups.
        let mut b = LoopBuilder::new("separable");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let x2 = b.array_in("x2");
        let z2 = b.array_out("z2");
        let ld = b.load("L", x, 0);
        b.store("S", z, 0, ld.now());
        let a = b.reserve_add("ACC");
        b.bind(a, [ValueRef::Const(1.0), a.prev(1)]);
        let ld2 = b.load("L2", x2, 0);
        b.store("S2", z2, 0, ld2.now());
        let extended = b.finish(Weight::default()).unwrap();

        let got = ctx
            .reschedule_extended(&extended, &m, SchedulerOptions::default(), l.ops().len())
            .unwrap();
        let want = modulo_schedule_with(&extended, &m, SchedulerOptions::default()).unwrap();
        assert_eq!(got, want);
        // The ALU recurrence (ACC) was reused; the mem ops were dirtied
        // by the appended load/store sharing their port group.
        assert!(
            ctx.last_reused_ops() >= 1,
            "reused {}",
            ctx.last_reused_ops()
        );
        let mask = ctx.last_clean_mask().expect("merged attempt ran");
        let acc = extended.find_op("ACC").unwrap();
        assert!(mask[acc.index()]);
        for (id, op) in extended.iter_ops() {
            if op.kind().is_memory() {
                assert!(!mask[id.index()], "{} must be dirty", op.name());
            }
        }
    }

    #[test]
    fn invalidate_forces_the_full_path() {
        let l = separable();
        let m = Machine::clustered(3, 1);
        let mut ctx = SchedContext::new();
        ctx.schedule(&l, &m, SchedulerOptions::default()).unwrap();
        ctx.invalidate();
        let again = ctx.schedule(&l, &m, SchedulerOptions::default()).unwrap();
        assert_eq!(ctx.last_reused_ops(), 0);
        assert!(ctx.last_clean_mask().is_none());
        assert_eq!(
            again,
            modulo_schedule_with(&l, &m, SchedulerOptions::default()).unwrap()
        );
    }
}
