//! The no-execution artifact auditor: structural checks over a
//! directory of shard artifacts, without re-running any sweep.
//!
//! The auditor re-reads every `*.json` file through the same parser the
//! merge pipeline uses and then checks the cross-file invariants the
//! parser cannot see on its own:
//!
//! * every file parses as a shard artifact (corruption, truncation and
//!   foreign files are findings, not skips — except rendered
//!   sweep/partial-sweep reports, which are recognized siblings and
//!   only noted),
//! * per-cell cache-counter sums equal the shard's declared totals
//!   (re-derived structurally, independent of the parser's own check),
//! * shard-role sanity (a primary `i/n` shard must have `i < n`),
//! * no two files answer the same farm lease (at-least-once delivery
//!   may duplicate *cells*, never `(job, lease)` provenance),
//! * each signature group reconciles — signatures compatible, every
//!   cell inside the declared grid, duplicates collapsible to one
//!   winner per slot.
//!
//! Benign redundancy (the same cell covered by several artifacts, as
//! mid-flight farm directories legitimately contain) is reported as a
//! *note*, not a finding: notes never fail an audit.

use ncdrf::{CacheStats, ShardRole, SweepShard};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The file at fault, when the finding is file-scoped.
    pub path: Option<PathBuf>,
    /// Stable rule identifier (`parse`, `counters`, `role`,
    /// `duplicate-lease`, `reconcile`).
    pub rule: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.path {
            Some(p) => write!(f, "[{}] {}: {}", self.rule, p.display(), self.detail),
            None => write!(f, "[{}] {}", self.rule, self.detail),
        }
    }
}

/// The outcome of one audit pass.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// `*.json` files examined.
    pub files: usize,
    /// Files that parsed as shard artifacts.
    pub shards: usize,
    /// Distinct grid signatures among them.
    pub groups: usize,
    /// Failed invariants; any entry fails the audit.
    pub findings: Vec<Finding>,
    /// Benign observations (duplicate cell coverage, heal artifacts);
    /// never fail the audit.
    pub notes: Vec<String>,
}

impl AuditReport {
    /// Whether the directory passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Sums the per-cell counters of a shard by re-merging it alone through
/// [`SweepShard::reconcile`] — the winner rule over a single artifact
/// keeps every cell, so the result's totals *are* the per-cell sum.
fn per_cell_sum(shard: &SweepShard) -> Result<CacheStats, String> {
    SweepShard::reconcile(std::slice::from_ref(shard))
        .map(|consolidated| consolidated.scheduling())
        .map_err(|e| e.to_string())
}

/// Whether a file that failed shard parsing is one of the *other* wire
/// artifacts of this workspace — a rendered sweep report or partial
/// sweep — checked through the real parsers, not by sniffing bytes.
fn parses_as_report(path: &Path) -> bool {
    std::fs::read_to_string(path).is_ok_and(|text| {
        ncdrf::parse_sweep_report(&text).is_ok() || ncdrf::parse_partial_sweep(&text).is_ok()
    })
}

/// Audits `dir`.
///
/// # Errors
///
/// The directory itself being unreadable (not a file-level problem —
/// those are findings).
pub fn audit_dir(dir: &Path) -> Result<AuditReport, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();

    let mut report = AuditReport::default();
    let mut parsed: Vec<(PathBuf, SweepShard)> = Vec::new();
    for path in entries {
        report.files += 1;
        match ncdrf::read_shard(&path) {
            Ok(shard) => parsed.push((path, shard)),
            // A rendered report parked next to the shards (a daemon or
            // operator export) is a recognized sibling, not corruption.
            Err(_) if parses_as_report(&path) => report
                .notes
                .push(format!("{}: rendered report, not a shard", path.display())),
            Err(e) => report.findings.push(Finding {
                path: Some(path),
                rule: "parse",
                detail: format!("not a readable shard artifact: {e}"),
            }),
        }
    }
    report.shards = parsed.len();

    // File-local invariants.
    for (path, shard) in &parsed {
        match per_cell_sum(shard) {
            Ok(sum) => {
                if sum != shard.scheduling() {
                    report.findings.push(Finding {
                        path: Some(path.clone()),
                        rule: "counters",
                        detail: format!(
                            "per-cell cache-counter sum {:?} disagrees with the declared total {:?}",
                            sum,
                            shard.scheduling()
                        ),
                    });
                }
            }
            Err(e) => report.findings.push(Finding {
                path: Some(path.clone()),
                rule: "counters",
                detail: format!("artifact does not self-reconcile: {e}"),
            }),
        }
        if shard.role() == ShardRole::Shard && shard.count() > 0 && shard.index() >= shard.count() {
            report.findings.push(Finding {
                path: Some(path.clone()),
                rule: "role",
                detail: format!(
                    "primary shard claims partition {}/{}",
                    shard.index(),
                    shard.count()
                ),
            });
        }
        if shard.role() == ShardRole::Heal {
            report.notes.push(format!(
                "{}: heal artifact ({} cells)",
                path.display(),
                shard.cell_count()
            ));
        }
    }

    // Duplicate lease provenance: the farm writes one file per lease.
    let mut by_lease: BTreeMap<(String, u64), Vec<&Path>> = BTreeMap::new();
    for (path, shard) in &parsed {
        if let Some(p) = shard.provenance() {
            by_lease
                .entry((p.job.clone(), p.lease))
                .or_default()
                .push(path);
        }
    }
    for ((job, lease), paths) in &by_lease {
        if paths.len() > 1 {
            for path in paths {
                report.findings.push(Finding {
                    path: Some(path.to_path_buf()),
                    rule: "duplicate-lease",
                    detail: format!("{} files answer lease {lease} of job {job}", paths.len()),
                });
            }
        }
    }

    // Signature groups: compatibility + reconcilability, and duplicate
    // cell coverage as a note.
    let mut groups: BTreeMap<String, Vec<&SweepShard>> = BTreeMap::new();
    for (_, shard) in &parsed {
        groups
            .entry(ncdrf::render_grid_signature(shard.signature()))
            .or_default()
            .push(shard);
    }
    report.groups = groups.len();
    for (sig, members) in &groups {
        let owned: Vec<SweepShard> = members.iter().map(|&s| s.clone()).collect();
        if let Err(e) = SweepShard::reconcile(&owned) {
            report.findings.push(Finding {
                path: None,
                rule: "reconcile",
                detail: format!(
                    "signature group `{sig}` ({} artifacts) does not reconcile: {e}",
                    members.len()
                ),
            });
            continue;
        }
        let mut coverage: BTreeMap<u64, usize> = BTreeMap::new();
        for shard in members {
            for t in shard.tasks() {
                *coverage.entry(t).or_insert(0) += 1;
            }
        }
        let duplicated = coverage.values().filter(|&&n| n > 1).count();
        if duplicated > 0 {
            report.notes.push(format!(
                "signature group `{sig}`: {duplicated} cells covered more than once \
                 (benign under at-least-once delivery)"
            ));
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf::corpus::Corpus;
    use ncdrf::{Provenance, Render, ReportFormat, Sweep};

    fn sweep(corpus: &Corpus) -> Sweep<'_> {
        Sweep::new(corpus)
            .clustered_latencies([3])
            .models([ncdrf::Model::Unified])
            .budget(32)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ncdrf-audit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn a_healthy_shard_pair_audits_clean() {
        let corpus = Corpus::small().take(2);
        let sweep = sweep(&corpus);
        let dir = temp_dir("clean");
        for i in 0..2u32 {
            let shard = sweep.shard(i, 2).expect("shard");
            ncdrf::write_artifact(
                dir.join(format!("shard-{i}.json")),
                &shard.render(ReportFormat::Json),
            )
            .expect("write");
        }
        let report = audit_dir(&dir).expect("audit runs");
        assert!(report.clean(), "unexpected findings: {:?}", report.findings);
        assert_eq!((report.files, report.shards, report.groups), (2, 2, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_and_duplicate_leases_are_findings() {
        let corpus = Corpus::small().take(2);
        let sweep = sweep(&corpus);
        let dir = temp_dir("dirty");
        let shard = sweep
            .shard(0, 2)
            .expect("shard")
            .with_provenance(Provenance {
                job: "job-1".to_owned(),
                lease: 7,
            });
        let body = shard.render(ReportFormat::Json);
        ncdrf::write_artifact(dir.join("a.json"), &body).expect("write");
        ncdrf::write_artifact(dir.join("b.json"), &body).expect("write");
        ncdrf::write_artifact(dir.join("c.json"), &body[..body.len() / 2]).expect("truncate");
        let report = audit_dir(&dir).expect("audit runs");
        assert!(!report.clean());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&"parse"),
            "truncated file flagged: {rules:?}"
        );
        assert!(
            rules.contains(&"duplicate-lease"),
            "duplicate lease flagged: {rules:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_rendered_report_next_to_the_shards_is_a_note_not_a_finding() {
        let corpus = Corpus::small().take(2);
        let sweep = sweep(&corpus);
        let dir = temp_dir("sibling-report");
        let shard = sweep.shard(0, 1).expect("shard");
        ncdrf::write_artifact(dir.join("shard.json"), &shard.render(ReportFormat::Json))
            .expect("write shard");
        // What a farm daemon or operator parks next to the artifacts.
        let report_body = sweep
            .run_sequential()
            .expect("run")
            .render(ReportFormat::Json);
        ncdrf::write_artifact(dir.join("served.json"), &report_body).expect("write report");
        let report = audit_dir(&dir).expect("audit runs");
        assert!(report.clean(), "unexpected findings: {:?}", report.findings);
        assert_eq!((report.files, report.shards), (2, 1));
        assert!(
            report.notes.iter().any(|n| n.contains("rendered report")),
            "the sibling is noted: {:?}",
            report.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_unreadable_directory_is_an_error_not_a_finding() {
        let missing = std::env::temp_dir().join("ncdrf-audit-definitely-missing");
        assert!(audit_dir(&missing).is_err());
    }
}
