//! `ncdrf_analyze` — the model checker, artifact auditor and schedule
//! certifier, as a CLI.
//!
//! ```text
//! ncdrf_analyze check [--max-schedules N] [--preemption-bound N] [--json]
//! ncdrf_analyze audit DIR
//! ncdrf_analyze certify [--json] [--golden DIR] [DIR ...]
//! ```
//!
//! `check` explores every interleaving of the pool and farm scenarios
//! (see `ncdrf_analyze::scenarios`), failing on any counterexample,
//! race candidate or lock-order cycle; `--json` replaces the prose with
//! one machine-readable object (exact integers, parseable by the
//! vendored `serde_json`). `audit` runs the structural artifact checks
//! over a directory. `certify` runs the independent `ncdrf-certify`
//! validator offline: `--golden DIR` re-runs the pinned grids in
//! certify mode and byte-compares the seven fixtures, and each
//! positional `DIR` is scanned for shard/consolidated artifacts whose
//! cells are re-certified one by one.
//!
//! Exit codes: `0` clean, `1` findings/counterexample, `2` usage,
//! `3` target unreadable.

use ncdrf_analyze::certify::{certify_artifact_dir, certify_golden, ArtifactCheck, GoldenCheck};
use ncdrf_analyze::emit::{json_array, json_string, JsonObject};
use ncdrf_analyze::scenarios::{farm_lease_scenario, pool_scenario, FarmProbes};
use ncdrf_analyze::{audit, check, model, CheckReport};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: ncdrf_analyze check [--max-schedules N] [--preemption-bound N] [--json]\n\
         \x20      ncdrf_analyze audit DIR\n\
         \x20      ncdrf_analyze certify [--json] [--golden DIR] [DIR ...]"
    );
    exit(2);
}

/// One model-checked scenario's outcome, flattened for both renderers.
struct ScenarioOutcome {
    name: &'static str,
    schedules: usize,
    traces: usize,
    complete: bool,
    counterexample: Option<String>,
    races: Vec<String>,
    lock_cycles: Vec<String>,
}

impl ScenarioOutcome {
    fn from_report(name: &'static str, report: &CheckReport) -> ScenarioOutcome {
        ScenarioOutcome {
            name,
            schedules: report.exploration.schedules,
            traces: report.analysis.traces(),
            complete: report.exploration.complete,
            counterexample: report
                .exploration
                .counterexample
                .as_ref()
                .map(|cx| format!("{:?}", cx.kind)),
            races: report
                .analysis
                .races()
                .map(|r| format!("{} vs {} (write: {})", r.first, r.second, r.on_write))
                .collect(),
            lock_cycles: report
                .analysis
                .lock_cycles()
                .iter()
                .map(|c| c.join(" <-> "))
                .collect(),
        }
    }

    fn clean(&self) -> bool {
        self.complete
            && self.counterexample.is_none()
            && self.races.is_empty()
            && self.lock_cycles.is_empty()
    }

    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.string("scenario", self.name);
        o.integer("schedules", self.schedules as u128);
        o.integer("traces", self.traces as u128);
        o.boolean("complete", self.complete);
        match &self.counterexample {
            Some(cx) => o.raw("counterexample", &json_string(cx)),
            None => o.raw("counterexample", "null"),
        }
        o.raw(
            "races",
            &json_array(self.races.iter().map(|r| json_string(r))),
        );
        o.raw(
            "lock_cycles",
            &json_array(self.lock_cycles.iter().map(|c| json_string(c))),
        );
        o.finish()
    }

    fn print(&self, report: &CheckReport) {
        println!(
            "   {} schedule(s), {} trace(s) analysed, complete: {}",
            self.schedules, self.traces, self.complete,
        );
        if let Some(cx) = &report.exploration.counterexample {
            println!("   COUNTEREXAMPLE [{}]: {:?}", self.name, cx.kind);
            println!("   schedule: {:?}", cx.trace.schedule);
            for event in &cx.trace.events {
                println!("     t{} {:?}", event.tid, event.op);
            }
        }
        for race in &self.races {
            println!("   RACE CANDIDATE [{}]: {race}", self.name);
        }
        for cycle in &self.lock_cycles {
            println!("   LOCK-ORDER CYCLE [{}]: {cycle}", self.name);
        }
    }
}

fn run_check(config: &model::Config, json: bool) -> bool {
    let mut outcomes = Vec::new();
    let quiet = json;

    if !quiet {
        println!("== pool scenario: 2 workers, 3 tasks ==");
    }
    let report = check(config, pool_scenario(2, 3, None));
    let outcome = ScenarioOutcome::from_report("pool", &report);
    if !quiet {
        outcome.print(&report);
    }
    outcomes.push(outcome);

    if !quiet {
        println!("== pool scenario: 2 workers, 3 tasks, task 1 panics ==");
    }
    // The seeded panic is caught by the pool's isolation, so the model
    // sees no counterexample; the scenario asserts the slot contents.
    let report = check(config, pool_scenario(2, 3, Some(1)));
    let outcome = ScenarioOutcome::from_report("pool-panic", &report);
    if !quiet {
        outcome.print(&report);
    }
    outcomes.push(outcome);

    if !quiet {
        println!("== farm scenario: claim / deliver / tick / expiry ==");
    }
    // The farm scenario runs two workers, a ticker and the root: raw
    // exhaustion is intractable, but its protocol corners all fit in
    // two preemptions, so it defaults to a bounded (still exhaustive
    // within the bound) exploration unless the caller chose one.
    let farm_config = model::Config {
        preemption_bound: config.preemption_bound.or(Some(2)),
        ..config.clone()
    };
    let probes = Arc::new(FarmProbes::default());
    let report = check(&farm_config, farm_lease_scenario(Arc::clone(&probes)));
    let outcome = ScenarioOutcome::from_report("farm", &report);
    if !quiet {
        outcome.print(&report);
    }
    outcomes.push(outcome);
    let with_expiry = probes.schedules_with_expiry.load(Ordering::SeqCst);
    let with_duplicates = probes.schedules_with_duplicates.load(Ordering::SeqCst);
    if !quiet {
        println!(
            "   coverage: {with_expiry} schedule(s) with lease expiry, \
             {with_duplicates} with duplicate delivery"
        );
        if with_expiry == 0 {
            println!("   WARNING: no schedule exercised lease expiry");
        }
    }

    let clean = outcomes.iter().all(ScenarioOutcome::clean) && with_expiry > 0;
    if json {
        let mut o = JsonObject::new();
        o.boolean("clean", clean);
        o.raw(
            "scenarios",
            &json_array(outcomes.iter().map(ScenarioOutcome::to_json)),
        );
        let mut coverage = JsonObject::new();
        coverage.integer("schedules_with_expiry", with_expiry as u128);
        coverage.integer("schedules_with_duplicates", with_duplicates as u128);
        o.raw("coverage", &coverage.finish());
        println!("{}", o.finish());
    }
    clean
}

fn golden_json(c: &GoldenCheck) -> String {
    let mut o = JsonObject::new();
    o.string("fixture", &c.fixture);
    o.boolean("certified", c.fault.is_none());
    if let Some(fault) = &c.fault {
        o.string("fault", fault);
    }
    o.finish()
}

fn artifact_json(c: &ArtifactCheck) -> String {
    let mut o = JsonObject::new();
    o.string("artifact", &c.path.display().to_string());
    o.boolean("certified", c.faults.is_empty());
    o.raw(
        "faults",
        &json_array(c.faults.iter().map(|f| {
            let mut fo = JsonObject::new();
            fo.integer("task", u128::from(f.task));
            fo.string("loop", &f.loop_name);
            fo.string("machine", &f.machine);
            fo.string("detail", &f.detail);
            fo.finish()
        })),
    );
    o.finish()
}

fn run_certify(golden: Option<PathBuf>, dirs: Vec<PathBuf>, json: bool) -> ! {
    let golden_checks: Vec<GoldenCheck> =
        golden.map(|dir| certify_golden(&dir)).unwrap_or_default();
    let mut artifact_checks: Vec<ArtifactCheck> = Vec::new();
    for dir in dirs {
        match certify_artifact_dir(&dir) {
            Ok(mut checks) => artifact_checks.append(&mut checks),
            Err(e) => {
                eprintln!("ncdrf_analyze: {e}");
                exit(3);
            }
        }
    }

    let golden_faults = golden_checks.iter().filter(|c| c.fault.is_some()).count();
    let cell_faults: usize = artifact_checks.iter().map(|c| c.faults.len()).sum();
    let clean = golden_faults == 0 && cell_faults == 0;

    if json {
        let mut o = JsonObject::new();
        o.boolean("clean", clean);
        o.raw("golden", &json_array(golden_checks.iter().map(golden_json)));
        o.raw(
            "artifacts",
            &json_array(artifact_checks.iter().map(artifact_json)),
        );
        println!("{}", o.finish());
    } else {
        for c in &golden_checks {
            match &c.fault {
                None => println!("golden {}: certified, byte-identical", c.fixture),
                Some(fault) => println!("golden {}: FAILED: {fault}", c.fixture),
            }
        }
        for c in &artifact_checks {
            if c.faults.is_empty() {
                println!("artifact {}: certified", c.path.display());
            } else {
                println!(
                    "artifact {}: {} cell(s) FAILED certification",
                    c.path.display(),
                    c.faults.len()
                );
                for f in &c.faults {
                    println!("   {f}");
                }
            }
        }
        if clean {
            println!("ncdrf_analyze: clean");
        } else {
            eprintln!(
                "ncdrf_analyze: {} golden fault(s), {} cell fault(s)",
                golden_faults, cell_faults
            );
        }
    }
    exit(if clean { 0 } else { 1 });
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let mut config = model::Config::default();
            let mut json = false;
            while let Some(flag) = args.next() {
                let mut value = |name: &str| -> usize {
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("ncdrf_analyze: {name} needs a count");
                        exit(2);
                    })
                };
                match flag.as_str() {
                    "--max-schedules" => config.max_schedules = value("--max-schedules"),
                    "--preemption-bound" => {
                        config.preemption_bound = Some(value("--preemption-bound"));
                    }
                    "--json" => json = true,
                    _ => usage(),
                }
            }
            if run_check(&config, json) {
                if !json {
                    println!("ncdrf_analyze: clean");
                }
            } else {
                exit(1);
            }
        }
        Some("audit") => {
            let Some(dir) = args.next() else { usage() };
            if args.next().is_some() {
                usage();
            }
            match audit::audit_dir(&PathBuf::from(dir)) {
                Ok(report) => {
                    println!(
                        "audited {} file(s): {} shard artifact(s) in {} signature group(s)",
                        report.files, report.shards, report.groups
                    );
                    for note in &report.notes {
                        println!("   note: {note}");
                    }
                    for finding in &report.findings {
                        println!("   {finding}");
                    }
                    if report.clean() {
                        println!("ncdrf_analyze: clean");
                    } else {
                        eprintln!("ncdrf_analyze: {} finding(s)", report.findings.len());
                        exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("ncdrf_analyze: {e}");
                    exit(3);
                }
            }
        }
        Some("certify") => {
            let mut json = false;
            let mut golden: Option<PathBuf> = None;
            let mut dirs: Vec<PathBuf> = Vec::new();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--golden" => {
                        let Some(dir) = args.next() else {
                            eprintln!("ncdrf_analyze: --golden needs a directory");
                            exit(2);
                        };
                        golden = Some(PathBuf::from(dir));
                    }
                    flag if flag.starts_with("--") => usage(),
                    dir => dirs.push(PathBuf::from(dir)),
                }
            }
            if golden.is_none() && dirs.is_empty() {
                usage();
            }
            run_certify(golden, dirs, json);
        }
        _ => usage(),
    }
}
