//! `ncdrf_analyze` — the model checker and artifact auditor, as a CLI.
//!
//! ```text
//! ncdrf_analyze check [--max-schedules N] [--preemption-bound N]
//! ncdrf_analyze audit DIR
//! ```
//!
//! `check` explores every interleaving of the pool and farm scenarios
//! (see `ncdrf_analyze::scenarios`), failing on any counterexample,
//! race candidate or lock-order cycle. `audit` runs the structural
//! artifact checks over a directory.
//!
//! Exit codes: `0` clean, `1` findings/counterexample, `2` usage,
//! `3` target unreadable.

use ncdrf_analyze::scenarios::{farm_lease_scenario, pool_scenario, FarmProbes};
use ncdrf_analyze::{audit, check, model};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: ncdrf_analyze check [--max-schedules N] [--preemption-bound N]\n\
         \x20      ncdrf_analyze audit DIR"
    );
    exit(2);
}

fn run_check(config: &model::Config) -> bool {
    let mut clean = true;

    println!("== pool scenario: 2 workers, 3 tasks ==");
    let report = check(config, pool_scenario(2, 3, None));
    clean &= summarize("pool", &report);

    println!("== pool scenario: 2 workers, 3 tasks, task 1 panics ==");
    // The seeded panic is caught by the pool's isolation, so the model
    // sees no counterexample; the scenario asserts the slot contents.
    let report = check(config, pool_scenario(2, 3, Some(1)));
    clean &= summarize("pool-panic", &report);

    println!("== farm scenario: claim / deliver / tick / expiry ==");
    // The farm scenario runs two workers, a ticker and the root: raw
    // exhaustion is intractable, but its protocol corners all fit in
    // two preemptions, so it defaults to a bounded (still exhaustive
    // within the bound) exploration unless the caller chose one.
    let farm_config = model::Config {
        preemption_bound: config.preemption_bound.or(Some(2)),
        ..config.clone()
    };
    let probes = Arc::new(FarmProbes::default());
    let report = check(&farm_config, farm_lease_scenario(Arc::clone(&probes)));
    clean &= summarize("farm", &report);
    println!(
        "   coverage: {} schedule(s) with lease expiry, {} with duplicate delivery",
        probes.schedules_with_expiry.load(Ordering::SeqCst),
        probes.schedules_with_duplicates.load(Ordering::SeqCst),
    );
    if probes.schedules_with_expiry.load(Ordering::SeqCst) == 0 {
        println!("   WARNING: no schedule exercised lease expiry");
        clean = false;
    }

    clean
}

fn summarize(name: &str, report: &ncdrf_analyze::CheckReport) -> bool {
    println!(
        "   {} schedule(s), {} trace(s) analysed, complete: {}",
        report.exploration.schedules,
        report.analysis.traces(),
        report.exploration.complete,
    );
    if let Some(cx) = &report.exploration.counterexample {
        println!("   COUNTEREXAMPLE [{name}]: {:?}", cx.kind);
        println!("   schedule: {:?}", cx.trace.schedule);
        for event in &cx.trace.events {
            println!("     t{} {:?}", event.tid, event.op);
        }
    }
    for race in report.analysis.races() {
        println!(
            "   RACE CANDIDATE [{name}]: {} vs {} (write: {})",
            race.first, race.second, race.on_write
        );
    }
    for cycle in report.analysis.lock_cycles() {
        println!("   LOCK-ORDER CYCLE [{name}]: {}", cycle.join(" <-> "));
    }
    report.exploration.counterexample.is_none()
        && report.exploration.complete
        && report.analysis.races().count() == 0
        && report.analysis.lock_cycles().is_empty()
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let mut config = model::Config::default();
            while let Some(flag) = args.next() {
                let mut value = |name: &str| -> usize {
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("ncdrf_analyze: {name} needs a count");
                        exit(2);
                    })
                };
                match flag.as_str() {
                    "--max-schedules" => config.max_schedules = value("--max-schedules"),
                    "--preemption-bound" => {
                        config.preemption_bound = Some(value("--preemption-bound"));
                    }
                    _ => usage(),
                }
            }
            if run_check(&config) {
                println!("ncdrf_analyze: clean");
            } else {
                exit(1);
            }
        }
        Some("audit") => {
            let Some(dir) = args.next() else { usage() };
            if args.next().is_some() {
                usage();
            }
            match audit::audit_dir(&PathBuf::from(dir)) {
                Ok(report) => {
                    println!(
                        "audited {} file(s): {} shard artifact(s) in {} signature group(s)",
                        report.files, report.shards, report.groups
                    );
                    for note in &report.notes {
                        println!("   note: {note}");
                    }
                    for finding in &report.findings {
                        println!("   {finding}");
                    }
                    if report.clean() {
                        println!("ncdrf_analyze: clean");
                    } else {
                        eprintln!("ncdrf_analyze: {} finding(s)", report.findings.len());
                        exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("ncdrf_analyze: {e}");
                    exit(3);
                }
            }
        }
        _ => usage(),
    }
}
