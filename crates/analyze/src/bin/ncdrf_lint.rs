//! `ncdrf_lint [ROOT]` — run the repo-invariant lint over the
//! workspace tree (default: the current directory) and print one line
//! per finding.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error.

use ncdrf_analyze::lint::lint_tree;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let root = args
        .next()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    if args.next().is_some() {
        eprintln!("usage: ncdrf_lint [ROOT]");
        exit(2);
    }
    match lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("ncdrf_lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("ncdrf_lint: {} finding(s)", findings.len());
            exit(1);
        }
        Err(e) => {
            eprintln!("ncdrf_lint: {e}");
            exit(2);
        }
    }
}
