//! Happens-before analysis over scheduler traces: vector-clock race
//! candidates and a lock-acquisition-order graph.
//!
//! [`Analysis::absorb`] replays one [`Trace`] (the event log of one
//! explored schedule) through per-thread vector clocks:
//!
//! * lock release → next acquire of the same lock is an ordering edge,
//! * condvar notify → the wakeups it causes is an ordering edge,
//! * spawn → child begin and child exit → join are ordering edges.
//!
//! A [`trace_access`](parking_lot::trace_access) annotation that is not
//! ordered (in vector-clock terms) against the previous write — or, for
//! a write, against previous reads — of the same location becomes a
//! *race candidate*. Candidates accumulate across every absorbed trace
//! and are reported by the location labels involved, deduplicated, so
//! one data race shows up once no matter how many schedules expose it.
//!
//! Independently, every `Acquire` taken while other locks are held adds
//! `held → acquired` edges to a lock-order graph keyed on lock *names*.
//! A cycle in that graph ([`Analysis::lock_cycles`]) is an
//! acquisition-order inversion: two schedules exist whose nested
//! acquisitions oppose each other — the classic AB/BA deadlock recipe —
//! even if no explored schedule actually deadlocked.

use parking_lot::model::{Op, Tid, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// A vector clock: thread id → logical time.
type VClock = BTreeMap<Tid, u64>;

fn join_into(into: &mut VClock, other: &VClock) {
    for (&tid, &t) in other {
        let slot = into.entry(tid).or_insert(0);
        *slot = (*slot).max(t);
    }
}

/// `a ≤ b` componentwise: everything `a` knew, `b` knows.
fn leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .all(|(tid, &t)| b.get(tid).copied().unwrap_or(0) >= t)
}

/// One unordered pair of conflicting accesses, reported by label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceCandidate {
    /// Label of the earlier access in the trace.
    pub first: String,
    /// Label of the later access.
    pub second: String,
    /// Whether the later access was a write (a read/write or
    /// write/write conflict; read/read pairs never race).
    pub on_write: bool,
}

/// Accumulated happens-before facts across every absorbed trace.
#[derive(Debug, Default)]
pub struct Analysis {
    traces: usize,
    races: BTreeSet<RaceCandidate>,
    /// Lock-order edges `held → acquired`, by lock name, with the
    /// number of times each nesting was observed.
    edges: BTreeMap<(String, String), u64>,
}

/// Per-location access history (FastTrack-style, simplified: full
/// clocks, no epochs — traces are tiny).
#[derive(Default)]
struct Location {
    last_write: Option<(Tid, VClock, String)>,
    /// Reads since the last write, per thread.
    reads: BTreeMap<Tid, (VClock, String)>,
}

impl Analysis {
    /// An empty analysis.
    pub fn new() -> Analysis {
        Analysis::default()
    }

    /// Traces absorbed so far.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Race candidates found so far, deduplicated by label pair.
    pub fn races(&self) -> impl Iterator<Item = &RaceCandidate> {
        self.races.iter()
    }

    /// Observed lock-order edges `(held, acquired) → count`.
    pub fn lock_edges(&self) -> impl Iterator<Item = (&(String, String), u64)> {
        self.edges.iter().map(|(e, &n)| (e, n))
    }

    /// Cycles in the lock-order graph: each returned set of lock names
    /// is a strongly-connected component with at least one internal
    /// edge, i.e. a witness that nested acquisition order is inverted
    /// somewhere in the explored schedules.
    pub fn lock_cycles(&self) -> Vec<Vec<String>> {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (a, b) in self.edges.keys() {
            nodes.insert(a);
            nodes.insert(b);
        }
        let nodes: Vec<&str> = nodes.into_iter().collect();
        let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut self_loop = vec![false; nodes.len()];
        for (a, b) in self.edges.keys() {
            let (ia, ib) = (index[a.as_str()], index[b.as_str()]);
            if ia == ib {
                self_loop[ia] = true;
            } else {
                succ[ia].push(ib);
            }
        }

        // Tarjan's SCC, iterative to keep recursion out of test stacks.
        let n = nodes.len();
        let mut idx = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if idx[start] != usize::MAX {
                continue;
            }
            // (node, next successor position)
            let mut call: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut pos)) = call.last_mut() {
                if *pos == 0 {
                    idx[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succ[v].get(*pos) {
                    *pos += 1;
                    if idx[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(idx[w]);
                    }
                } else {
                    if low[v] == idx[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }

        let mut cycles: Vec<Vec<String>> = sccs
            .into_iter()
            .filter(|c| c.len() > 1 || (c.len() == 1 && self_loop[c[0]]))
            .map(|c| {
                let mut names: Vec<String> = c.into_iter().map(|i| nodes[i].to_owned()).collect();
                names.sort();
                names
            })
            .collect();
        cycles.sort();
        cycles
    }

    /// Replays one trace through the vector clocks, accumulating race
    /// candidates and lock-order edges.
    pub fn absorb(&mut self, trace: &Trace) {
        self.traces += 1;
        let mut clocks: BTreeMap<Tid, VClock> = BTreeMap::new();
        let mut lock_release: BTreeMap<usize, VClock> = BTreeMap::new();
        let mut cv_clock: BTreeMap<usize, VClock> = BTreeMap::new();
        let mut held: BTreeMap<Tid, Vec<usize>> = BTreeMap::new();
        let mut locations: BTreeMap<usize, Location> = BTreeMap::new();

        for event in &trace.events {
            let tid = event.tid;
            {
                let clock = clocks.entry(tid).or_default();
                *clock.entry(tid).or_insert(0) += 1;
            }
            match &event.op {
                Op::Begin | Op::Exit { .. } => {}
                Op::Spawn { child } => {
                    let parent = clocks.entry(tid).or_default().clone();
                    join_into(clocks.entry(*child).or_default(), &parent);
                }
                Op::Join { child } => {
                    let final_clock = clocks.entry(*child).or_default().clone();
                    join_into(clocks.entry(tid).or_default(), &final_clock);
                }
                Op::Acquire { lock } => {
                    if let Some(release) = lock_release.get(lock) {
                        join_into(clocks.entry(tid).or_default(), release);
                    }
                    let stack = held.entry(tid).or_default();
                    for &h in stack.iter() {
                        let edge = (trace.name_of(h), trace.name_of(*lock));
                        *self.edges.entry(edge).or_insert(0) += 1;
                    }
                    stack.push(*lock);
                }
                Op::Release { lock } => {
                    lock_release.insert(*lock, clocks.entry(tid).or_default().clone());
                    if let Some(stack) = held.get_mut(&tid) {
                        if let Some(pos) = stack.iter().rposition(|l| l == lock) {
                            stack.remove(pos);
                        }
                    }
                }
                Op::Wait { cv: _, lock } => {
                    // The wait releases the lock; the matching Wake
                    // reacquires it.
                    lock_release.insert(*lock, clocks.entry(tid).or_default().clone());
                    if let Some(stack) = held.get_mut(&tid) {
                        if let Some(pos) = stack.iter().rposition(|l| l == lock) {
                            stack.remove(pos);
                        }
                    }
                }
                Op::Wake { cv, lock } => {
                    let notify = cv_clock.entry(*cv).or_default().clone();
                    let clock = clocks.entry(tid).or_default();
                    join_into(clock, &notify);
                    if let Some(release) = lock_release.get(lock) {
                        join_into(clock, release);
                    }
                    held.entry(tid).or_default().push(*lock);
                }
                Op::NotifyOne { cv, .. } | Op::NotifyAll { cv, .. } => {
                    let clock = clocks.entry(tid).or_default().clone();
                    join_into(cv_clock.entry(*cv).or_default(), &clock);
                }
                Op::Access { addr, write, label } => {
                    let clock = clocks.entry(tid).or_default().clone();
                    let loc = locations.entry(*addr).or_default();
                    if let Some((wtid, wclock, wlabel)) = &loc.last_write {
                        if *wtid != tid && !leq(wclock, &clock) {
                            self.races.insert(RaceCandidate {
                                first: wlabel.clone(),
                                second: (*label).to_owned(),
                                on_write: *write,
                            });
                        }
                    }
                    if *write {
                        for (rtid, (rclock, rlabel)) in &loc.reads {
                            if *rtid != tid && !leq(rclock, &clock) {
                                self.races.insert(RaceCandidate {
                                    first: rlabel.clone(),
                                    second: (*label).to_owned(),
                                    on_write: true,
                                });
                            }
                        }
                        loc.last_write = Some((tid, clock, (*label).to_owned()));
                        loc.reads.clear();
                    } else {
                        loc.reads.insert(tid, (clock, (*label).to_owned()));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::model::Event;

    fn ev(tid: Tid, op: Op) -> Event {
        Event { tid, op }
    }

    fn named(events: Vec<Event>, names: &[(usize, &str)]) -> Trace {
        Trace {
            events,
            names: names.iter().map(|&(k, n)| (k, n.to_owned())).collect(),
            schedule: Vec::new(),
        }
    }

    #[test]
    fn unlocked_concurrent_writes_are_race_candidates() {
        let mut a = Analysis::new();
        a.absorb(&named(
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(
                    0,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "cell",
                    },
                ),
                ev(1, Op::Begin),
                ev(
                    1,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "cell",
                    },
                ),
                ev(1, Op::Exit { panicked: false }),
                ev(0, Op::Join { child: 1 }),
            ],
            &[],
        ));
        let races: Vec<_> = a.races().collect();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first, "cell");
        assert!(races[0].on_write);
    }

    #[test]
    fn lock_protected_writes_are_ordered() {
        let mut a = Analysis::new();
        a.absorb(&named(
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Acquire { lock: 100 }),
                ev(
                    0,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "cell",
                    },
                ),
                ev(0, Op::Release { lock: 100 }),
                ev(1, Op::Begin),
                ev(1, Op::Acquire { lock: 100 }),
                ev(
                    1,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "cell",
                    },
                ),
                ev(1, Op::Release { lock: 100 }),
                ev(1, Op::Exit { panicked: false }),
                ev(0, Op::Join { child: 1 }),
            ],
            &[(100, "the.lock")],
        ));
        assert_eq!(a.races().count(), 0);
    }

    #[test]
    fn join_orders_child_accesses_before_parent_reads() {
        let mut a = Analysis::new();
        a.absorb(&named(
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(1, Op::Begin),
                ev(
                    1,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "result",
                    },
                ),
                ev(1, Op::Exit { panicked: false }),
                ev(0, Op::Join { child: 1 }),
                ev(
                    0,
                    Op::Access {
                        addr: 8,
                        write: false,
                        label: "result",
                    },
                ),
            ],
            &[],
        ));
        assert_eq!(a.races().count(), 0);
    }

    #[test]
    fn opposed_nestings_form_a_lock_cycle() {
        let mut a = Analysis::new();
        // Schedule 1 nests a→b, schedule 2 nests b→a.
        a.absorb(&named(
            vec![
                ev(0, Op::Acquire { lock: 1 }),
                ev(0, Op::Acquire { lock: 2 }),
                ev(0, Op::Release { lock: 2 }),
                ev(0, Op::Release { lock: 1 }),
            ],
            &[(1, "lock.a"), (2, "lock.b")],
        ));
        assert!(a.lock_cycles().is_empty(), "one nesting is no inversion");
        a.absorb(&named(
            vec![
                ev(0, Op::Acquire { lock: 2 }),
                ev(0, Op::Acquire { lock: 1 }),
                ev(0, Op::Release { lock: 1 }),
                ev(0, Op::Release { lock: 2 }),
            ],
            &[(1, "lock.a"), (2, "lock.b")],
        ));
        assert_eq!(
            a.lock_cycles(),
            vec![vec!["lock.a".to_owned(), "lock.b".to_owned()]]
        );
    }

    #[test]
    fn condvar_notify_orders_the_wakeup() {
        let mut a = Analysis::new();
        a.absorb(&named(
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(1, Op::Begin),
                ev(1, Op::Acquire { lock: 100 }),
                ev(1, Op::Wait { cv: 200, lock: 100 }),
                ev(
                    0,
                    Op::Access {
                        addr: 8,
                        write: true,
                        label: "payload",
                    },
                ),
                ev(
                    0,
                    Op::NotifyOne {
                        cv: 200,
                        woken: Some(1),
                    },
                ),
                ev(1, Op::Wake { cv: 200, lock: 100 }),
                ev(
                    1,
                    Op::Access {
                        addr: 8,
                        write: false,
                        label: "payload",
                    },
                ),
                ev(1, Op::Release { lock: 100 }),
                ev(1, Op::Exit { panicked: false }),
                ev(0, Op::Join { child: 1 }),
            ],
            &[(100, "m"), (200, "cv")],
        ));
        assert_eq!(a.races().count(), 0);
    }
}
