//! Token-level repo-invariant lint for the workspace source tree.
//!
//! The rules encode invariants earlier PRs fixed bugs against, so they
//! stay fixed:
//!
//! * **wall-clock** — no `SystemTime::now` / `Instant::now` outside the
//!   injected-clock module, the bench/profiling harnesses and the one
//!   deadline-polling e2e helper. Everything timing-sensitive takes a
//!   `Clock` (or an explicit `now` parameter) so it is steerable under
//!   test and under the model checker.
//! * **float-format** — no float formatting (`{:.N}`, `{:e}`) inside a
//!   JSON-building string literal of the wire/artifact render files;
//!   `json_number` is the one sanctioned float serializer, keeping
//!   artifact bytes exact across round-trips.
//! * **daemon-unwrap** — no `.unwrap(` / `.expect(` in the farm's
//!   request-handling files; a malformed request must map to an HTTP
//!   error, never a daemon panic.
//! * **kind-literal / kind-orphan** — artifact kind strings
//!   (`ncdrf-sweep-shard`-shaped) may appear only as `const … : &str`
//!   initializers, and each such const must be referenced at least
//!   twice outside tests (the renderer *and* the parser), so the two
//!   sides cannot silently disagree.
//! * **version-literal** — wire `version` members must be written from
//!   a named const, never a bare integer literal.
//! * **model-name-literal** — model wire names (`"unified"`, …) may be
//!   spelled out only in the model registry (which owns them) and the
//!   wire parser (whose frozen v3 table must spell the legacy names);
//!   everywhere else goes through `ModelId` constants or
//!   `ModelRegistry::resolve`, so adding a model never means hunting
//!   stringly-typed call sites.
//! * **spill-hot-clone** — no `.clone(` inside the spill descent's
//!   per-step hot functions ([`SPILL_HOT_FNS`]): the arena/SoA refactor
//!   removed the per-step loop/schedule/lifetime copies, and a clone
//!   creeping back in would silently undo it. Cold exits in those
//!   functions use `.to_owned()`, which reads as a deliberate copy.
//! * **truncating-cast** — no bare `as u32` / `as u16` narrows in the
//!   u32-SoA files (`crates/sched/src/context.rs` and `crates/spill/`)
//!   outside the sanctioned index-constructor helpers
//!   ([`CAST_SANCTIONED`]): every index that crosses into the arena's
//!   u32 space goes through a helper that asserts it fits, closing the
//!   silent-overflow hole a bare cast leaves open.
//! * **dead-allowlist** — every path (and `(file, fn)` pair) in this
//!   lint's own watch tables must still exist in the tree; a refactor
//!   that moves a file or renames a function must update the table, or
//!   the allowlist would silently stop covering anything.
//!
//! The scanner is a small hand-rolled Rust lexer (strings, raw strings,
//! nested block comments, char-vs-lifetime disambiguation), so rules
//! see token sequences, not raw text — a mention of `SystemTime::now`
//! in a comment or a string fixture does not trip the rule. Tokens at
//! and after a `#[cfg(test)]` marker are ignored: unit tests may use
//! whatever they like.

use std::path::{Path, PathBuf};

/// Files (or directory prefixes, ending in `/`) where wall-clock reads
/// are sanctioned.
const WALL_CLOCK_ALLOW: &[&str] = &[
    // The injected-clock abstraction itself: the one sanctioned
    // `SystemTime::now` of the non-bench tree.
    "crates/farm/src/clock.rs",
    // Benchmarks and profiling harnesses measure real elapsed time.
    "crates/bench/",
    "crates/experiments/src/bin/profile_stages.rs",
    "crates/experiments/src/bin/cache_scan.rs",
    // The e2e helper polls a real daemon with a real deadline.
    "tests/farm_e2e.rs",
];

/// The wire/artifact render-and-parse files: everything whose bytes
/// must survive a round-trip exactly.
const WIRE_FILES: &[&str] = &[
    "crates/core/src/report.rs",
    "crates/core/src/artifact.rs",
    "crates/farm/src/json.rs",
    "crates/farm/src/api.rs",
    "crates/farm/src/worker.rs",
    "crates/farm/src/http.rs",
];

/// The farm's request-handling files: panics here take the daemon down.
const DAEMON_FILES: &[&str] = &["crates/farm/src/api.rs", "crates/farm/src/http.rs"];

/// The stable model wire names the registry owns. A literal equal to one
/// of these outside [`MODEL_NAME_ALLOW`] is a hardcoded model reference
/// that the registry redesign exists to eliminate.
const MODEL_NAMES: &[&str] = &[
    "ideal",
    "unified",
    "partitioned",
    "swapped",
    "port-limited",
    "compressed",
];

/// Where model-name literals are sanctioned: the registry itself (it
/// defines the names), the wire parser (its frozen v3 name table must
/// spell the legacy names out so old artifacts can never drift), and
/// this file's own watch table.
const MODEL_NAME_ALLOW: &[&str] = &[
    "crates/core/src/model.rs",
    "crates/core/src/report.rs",
    "crates/analyze/src/lint.rs",
];

/// The spill descent's per-step hot functions, as `(file, fn)` pairs:
/// one rewrite + reschedule + requirement round runs through each of
/// these per spill step, so a `.clone()` of the loop, schedule, DDG or
/// lifetime structures here is a per-step deep copy. Deliberate copies
/// on cold exits spell `.to_owned()` instead; per-commit caching lives
/// in functions outside this table (e.g. `SchedContext::commit`).
const SPILL_HOT_FNS: &[(&str, &str)] = &[
    ("crates/spill/src/spiller.rs", "run_spill_loop"),
    ("crates/spill/src/spiller.rs", "select_victim"),
    ("crates/spill/src/trajectory.rs", "advance"),
    ("crates/sched/src/context.rs", "schedule"),
    ("crates/sched/src/context.rs", "attempt"),
    ("crates/sched/src/context.rs", "attempt_merged"),
];

/// The files of the u32 SoA index space, watched by the
/// `truncating-cast` rule: `crates/sched/src/context.rs` plus
/// everything under this prefix.
const CAST_WATCH_DIR: &str = "crates/spill/";

/// The sanctioned index-constructor helpers, as `(file, fn)` pairs: the
/// only places in the watched files where `as u32` / `as u16` may be
/// spelled. Each helper asserts the value fits before narrowing, so a
/// grown arena cannot silently wrap an index.
const CAST_SANCTIONED: &[(&str, &str)] = &[
    ("crates/sched/src/context.rs", "idx32"),
    ("crates/sched/src/context.rs", "time32"),
    ("crates/spill/src/spiller.rs", "idx32"),
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.detail
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

/// Lexes `source` into the token stream the rules inspect. Comments and
/// lifetimes produce no tokens; string literals keep their raw inner
/// text (escapes unprocessed — the rules only substring-match).
fn lex(source: &str) -> Vec<Token> {
    let b: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();
    let bump = |c: char, line: &mut usize| {
        if c == '\n' {
            *line += 1;
        }
    };
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        bump(b[i], &mut line);
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let mut text = String::new();
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        bump(b[i + 1], &mut line);
                        i += 2;
                    } else if b[i] == '"' {
                        i += 1;
                        break;
                    } else {
                        bump(b[i], &mut line);
                        text.push(b[i]);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Str(text),
                    line: start_line,
                });
            }
            'r' | 'b' if is_raw_string_start(&b, i) => {
                // r"…", r#"…"#, br#"…"# — find the opening quote, count
                // hashes, then scan to `"` + the same number of hashes.
                let start_line = line;
                let mut j = i;
                while b[j] != 'r' {
                    j += 1;
                }
                j += 1;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(b[j], '"');
                j += 1;
                let mut text = String::new();
                while j < n {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < n && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    bump(b[j], &mut line);
                    text.push(b[j]);
                    j += 1;
                }
                i = j;
                tokens.push(Token {
                    tok: Tok::Str(text),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'static`) or char literal (`'a'`, `'\n'`).
                if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    let mut j = i + 2;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        i = j + 1; // char literal like 'a'
                    } else {
                        i = j; // lifetime: emit nothing
                    }
                } else {
                    // Escaped or symbolic char literal.
                    let mut j = i + 1;
                    if j < n && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < n && b[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while i < n
                    && (b[i].is_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.'
                            && i + 1 < n
                            && b[i + 1].is_ascii_digit()
                            && !text.contains('.')))
                {
                    text.push(b[i]);
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Num(text),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    text.push(b[i]);
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            other => {
                tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // r" r# b" (byte strings treated like plain strings elsewhere) br"
    let n = b.len();
    match b[i] {
        'r' => i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#'),
        'b' => {
            if i + 1 < n && b[i + 1] == '"' {
                false // b"…" is an ordinary (byte) string; lex as ident+str
            } else {
                i + 2 < n && b[i + 1] == 'r' && (b[i + 2] == '"' || b[i + 2] == '#')
            }
        }
        _ => false,
    }
}

/// Truncates the token stream at the first `#[cfg(test)]`: unit-test
/// modules sit at the bottom of their files by workspace convention,
/// and nothing after the marker participates in lint rules.
fn strip_tests(tokens: Vec<Token>) -> Vec<Token> {
    let ident = |t: &Token, s: &str| matches!(&t.tok, Tok::Ident(i) if i == s);
    let punct = |t: &Token, c: char| t.tok == Tok::Punct(c);
    for w in 0..tokens.len().saturating_sub(5) {
        if punct(&tokens[w], '#')
            && punct(&tokens[w + 1], '[')
            && ident(&tokens[w + 2], "cfg")
            && punct(&tokens[w + 3], '(')
            && ident(&tokens[w + 4], "test")
        {
            return tokens[..w].to_vec();
        }
    }
    tokens
}

/// Token-index spans of the bodies of the named functions: each span
/// runs from the `fn`'s opening brace to its matching close, so a rule
/// can scope itself inside (or outside) specific function bodies.
fn fn_body_spans(tokens: &[Token], names: &[&str]) -> Vec<(usize, usize)> {
    let ident = |t: &Token, s: &str| matches!(&t.tok, Tok::Ident(i) if i == s);
    let punct = |t: &Token, c: char| t.tok == Tok::Punct(c);
    let mut spans = Vec::new();
    let mut w = 0usize;
    while w + 1 < tokens.len() {
        let hit = ident(&tokens[w], "fn")
            && matches!(&tokens[w + 1].tok, Tok::Ident(name) if names.contains(&name.as_str()));
        if !hit {
            w += 1;
            continue;
        }
        let mut j = w + 2;
        while j < tokens.len() && !punct(&tokens[j], '{') {
            j += 1;
        }
        let start = j;
        let mut depth = 0usize;
        while j < tokens.len() {
            if punct(&tokens[j], '{') {
                depth += 1;
            } else if punct(&tokens[j], '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        spans.push((start, j));
        w = j.max(w + 1);
    }
    spans
}

fn allowed(rel: &str, allowlist: &[&str]) -> bool {
    allowlist
        .iter()
        .any(|a| rel == *a || (a.ends_with('/') && rel.starts_with(a)))
}

fn is_kind_literal(s: &str) -> bool {
    let prefix = concat!("ncdrf", "-");
    match s.strip_prefix(prefix) {
        Some(rest) => {
            !rest.is_empty()
                && rest
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        }
        None => false,
    }
}

fn has_float_format(s: &str) -> bool {
    // `{:.2}`, `{v:.3}`, `{:e}`, `{:E}` — precision or exponent specs.
    let chars: Vec<char> = s.chars().collect();
    for i in 0..chars.len() {
        if chars[i] != ':' {
            continue;
        }
        // Inside a format placeholder? Look back for `{` without `}`.
        let mut j = i;
        let mut in_placeholder = false;
        while j > 0 {
            j -= 1;
            match chars[j] {
                '{' => {
                    in_placeholder = true;
                    break;
                }
                '}' | ' ' | '"' => break,
                _ => {}
            }
        }
        if !in_placeholder {
            continue;
        }
        if matches!(chars.get(i + 1), Some('.') | Some('e') | Some('E')) {
            return true;
        }
    }
    false
}

/// Lints one file's source. `rel` is the repo-relative path with
/// forward slashes; the rules applied depend on it.
pub fn lint_source(rel: &str, source: &str) -> Vec<LintFinding> {
    let tokens = strip_tests(lex(source));
    let mut findings = Vec::new();
    let ident = |t: &Token, s: &str| matches!(&t.tok, Tok::Ident(i) if i == s);
    let punct = |t: &Token, c: char| t.tok == Tok::Punct(c);

    // wall-clock
    if !allowed(rel, WALL_CLOCK_ALLOW) {
        for w in 0..tokens.len().saturating_sub(3) {
            let root = match &tokens[w].tok {
                Tok::Ident(i) if i == "SystemTime" || i == "Instant" => i.clone(),
                _ => continue,
            };
            if punct(&tokens[w + 1], ':')
                && punct(&tokens[w + 2], ':')
                && ident(&tokens[w + 3], "now")
            {
                findings.push(LintFinding {
                    path: rel.to_owned(),
                    line: tokens[w].line,
                    rule: "wall-clock",
                    detail: format!(
                        "`{root}::now` outside the injected-clock allowlist; take a `Clock` \
                         or an explicit `now` parameter instead"
                    ),
                });
            }
        }
    }

    // float-format (wire files only): a float spec inside a string that
    // also builds JSON (contains a quote).
    if WIRE_FILES.contains(&rel) {
        for t in &tokens {
            if let Tok::Str(s) = &t.tok {
                if has_float_format(s) && s.contains('"') {
                    findings.push(LintFinding {
                        path: rel.to_owned(),
                        line: t.line,
                        rule: "float-format",
                        detail: "float formatting inside a JSON-building literal; \
                                 route the value through `json_number`"
                            .to_owned(),
                    });
                }
            }
        }
    }

    // daemon-unwrap
    if DAEMON_FILES.contains(&rel) {
        for w in 0..tokens.len().saturating_sub(2) {
            if punct(&tokens[w], '.')
                && (ident(&tokens[w + 1], "unwrap") || ident(&tokens[w + 1], "expect"))
                && punct(&tokens[w + 2], '(')
            {
                findings.push(LintFinding {
                    path: rel.to_owned(),
                    line: tokens[w + 1].line,
                    rule: "daemon-unwrap",
                    detail: "panic path in request handling; map the failure to an \
                             HTTP error instead"
                        .to_owned(),
                });
            }
        }
    }

    // kind-literal / kind-orphan / version-literal: library sources only.
    let in_crate_src = rel.starts_with("crates/") && rel.contains("/src/");
    if in_crate_src {
        let mut kind_consts: Vec<(String, usize)> = Vec::new();
        for w in 0..tokens.len() {
            let Tok::Str(s) = &tokens[w].tok else {
                continue;
            };
            if !is_kind_literal(s) {
                continue;
            }
            // A definition looks like: const NAME : & str = "ncdrf-…"
            // (the `'static` lifetime, if any, lexes to nothing).
            let is_def = w >= 6
                && ident(&tokens[w - 6], "const")
                && matches!(&tokens[w - 5].tok, Tok::Ident(_))
                && punct(&tokens[w - 4], ':')
                && punct(&tokens[w - 3], '&')
                && ident(&tokens[w - 2], "str")
                && punct(&tokens[w - 1], '=');
            if is_def {
                if let Tok::Ident(name) = &tokens[w - 5].tok {
                    kind_consts.push((name.clone(), tokens[w].line));
                }
            } else {
                findings.push(LintFinding {
                    path: rel.to_owned(),
                    line: tokens[w].line,
                    rule: "kind-literal",
                    detail: format!(
                        "artifact kind `{s}` written as a bare literal; renderers and \
                         parsers must share a named const"
                    ),
                });
            }
        }
        for (name, line) in &kind_consts {
            let uses = tokens
                .iter()
                .filter(|t| matches!(&t.tok, Tok::Ident(i) if i == name))
                .count();
            // Definition + renderer + parser = at least 3 mentions.
            if uses < 3 {
                findings.push(LintFinding {
                    path: rel.to_owned(),
                    line: *line,
                    rule: "kind-orphan",
                    detail: format!(
                        "kind const `{name}` referenced {} time(s); renderer and parser \
                         must both use it",
                        uses.saturating_sub(1)
                    ),
                });
            }
        }
    }
    // model-name-literal: the registry resolves names; everything else
    // goes through `ModelId` constants or `ModelRegistry::resolve`.
    if in_crate_src && !allowed(rel, MODEL_NAME_ALLOW) {
        for t in &tokens {
            if let Tok::Str(s) = &t.tok {
                if MODEL_NAMES.contains(&s.as_str()) {
                    findings.push(LintFinding {
                        path: rel.to_owned(),
                        line: t.line,
                        rule: "model-name-literal",
                        detail: format!(
                            "model wire name `{s}` hardcoded outside the registry; use a \
                             `ModelId` constant or `ModelRegistry::resolve`"
                        ),
                    });
                }
            }
        }
    }
    // spill-hot-clone: `.clone(` inside a hot spill-step function body.
    let hot_fns: Vec<&str> = SPILL_HOT_FNS
        .iter()
        .filter(|(f, _)| *f == rel)
        .map(|(_, name)| *name)
        .collect();
    if !hot_fns.is_empty() {
        let mut w = 0usize;
        while w + 1 < tokens.len() {
            // A definition site: `fn <name>` with the name in the hot
            // table (call sites never have an `fn` ident in front).
            let is_hot_def = ident(&tokens[w], "fn")
                && matches!(&tokens[w + 1].tok, Tok::Ident(name) if hot_fns.contains(&name.as_str()));
            if !is_hot_def {
                w += 1;
                continue;
            }
            let fn_name = match &tokens[w + 1].tok {
                Tok::Ident(name) => name.clone(),
                _ => unreachable!("matched an ident above"),
            };
            // Skip the signature, then walk the brace-balanced body.
            let mut j = w + 2;
            while j < tokens.len() && !punct(&tokens[j], '{') {
                j += 1;
            }
            let mut depth = 0usize;
            while j < tokens.len() {
                if punct(&tokens[j], '{') {
                    depth += 1;
                } else if punct(&tokens[j], '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if punct(&tokens[j], '.')
                    && j + 2 < tokens.len()
                    && ident(&tokens[j + 1], "clone")
                    && punct(&tokens[j + 2], '(')
                {
                    findings.push(LintFinding {
                        path: rel.to_owned(),
                        line: tokens[j + 1].line,
                        rule: "spill-hot-clone",
                        detail: format!(
                            "`.clone()` inside the spill-step hot function `{fn_name}`; \
                             reuse the arena scratch, or spell a deliberate cold-path \
                             copy `.to_owned()`"
                        ),
                    });
                }
                j += 1;
            }
            w = j.max(w + 1);
        }
    }

    // truncating-cast: a bare `as u32` / `as u16` narrow in the u32-SoA
    // files, outside the sanctioned index-constructor helpers.
    if rel == "crates/sched/src/context.rs" || rel.starts_with(CAST_WATCH_DIR) {
        let sanctioned: Vec<&str> = CAST_SANCTIONED
            .iter()
            .filter(|(f, _)| *f == rel)
            .map(|(_, name)| *name)
            .collect();
        let spans = fn_body_spans(&tokens, &sanctioned);
        for w in 0..tokens.len().saturating_sub(1) {
            let narrow = ident(&tokens[w], "as")
                && matches!(&tokens[w + 1].tok, Tok::Ident(t) if t == "u32" || t == "u16");
            if !narrow || spans.iter().any(|&(s, e)| w > s && w < e) {
                continue;
            }
            let target = match &tokens[w + 1].tok {
                Tok::Ident(t) => t.clone(),
                _ => unreachable!("matched an ident above"),
            };
            findings.push(LintFinding {
                path: rel.to_owned(),
                line: tokens[w].line,
                rule: "truncating-cast",
                detail: format!(
                    "bare `as {target}` narrow outside the sanctioned index constructors; \
                     route the value through `idx32`/`time32` so an oversized index \
                     asserts instead of wrapping"
                ),
            });
        }
    }

    if WIRE_FILES.contains(&rel) {
        for w in 0..tokens.len().saturating_sub(2) {
            if matches!(&tokens[w].tok, Tok::Str(s) if s == "version")
                && punct(&tokens[w + 1], ',')
                && matches!(&tokens[w + 2].tok, Tok::Num(_))
            {
                findings.push(LintFinding {
                    path: rel.to_owned(),
                    line: tokens[w].line,
                    rule: "version-literal",
                    detail: "wire `version` written from a bare integer; use the \
                             format-version const"
                        .to_owned(),
                });
            }
        }
    }

    findings
}

/// Checks this lint's own watch tables against the tree rooted at
/// `root`: a path entry that no longer exists, or a `(file, fn)` entry
/// whose function is no longer defined in that file, is a
/// `dead-allowlist` finding. Findings point into this file, at the
/// first line that spells the dead entry, so the fix is one click away.
fn dead_allowlist_findings(root: &Path) -> Vec<LintFinding> {
    const SELF: &str = "crates/analyze/src/lint.rs";
    // Locate `entry` in this lint's own source so the finding carries a
    // real line; the tables are string literals, so a plain substring
    // scan finds them.
    let own_source = std::fs::read_to_string(root.join(SELF)).unwrap_or_default();
    let line_of = |entry: &str| -> usize {
        own_source
            .lines()
            .position(|l| l.contains(entry))
            .map_or(1, |i| i + 1)
    };
    let mut findings = Vec::new();
    let mut dead = |entry: &str, detail: String| {
        findings.push(LintFinding {
            path: SELF.to_owned(),
            line: line_of(entry),
            rule: "dead-allowlist",
            detail,
        });
    };

    let path_tables: &[(&str, &[&str])] = &[
        ("WALL_CLOCK_ALLOW", WALL_CLOCK_ALLOW),
        ("WIRE_FILES", WIRE_FILES),
        ("DAEMON_FILES", DAEMON_FILES),
        ("MODEL_NAME_ALLOW", MODEL_NAME_ALLOW),
    ];
    for (table, entries) in path_tables {
        for entry in *entries {
            let target = root.join(entry);
            let alive = if entry.ends_with('/') {
                target.is_dir()
            } else {
                target.is_file()
            };
            if !alive {
                dead(
                    entry,
                    format!("`{table}` allowlists `{entry}`, which no longer exists"),
                );
            }
        }
    }

    let fn_tables: &[(&str, &[(&str, &str)])] = &[
        ("SPILL_HOT_FNS", SPILL_HOT_FNS),
        ("CAST_SANCTIONED", CAST_SANCTIONED),
    ];
    for (table, entries) in fn_tables {
        for (file, name) in *entries {
            let Ok(source) = std::fs::read_to_string(root.join(file)) else {
                dead(
                    file,
                    format!("`{table}` names `{file}`, which no longer exists"),
                );
                continue;
            };
            let tokens = lex(&source);
            let ident = |t: &Token, s: &str| matches!(&t.tok, Tok::Ident(i) if i == s);
            let defined = (0..tokens.len().saturating_sub(1)).any(|w| {
                ident(&tokens[w], "fn") && matches!(&tokens[w + 1].tok, Tok::Ident(i) if i == name)
            });
            if !defined {
                dead(
                    name,
                    format!("`{table}` names `fn {name}`, no longer defined in `{file}`"),
                );
            }
        }
    }
    findings
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Lints the workspace rooted at `root`: every `.rs` file under
/// `crates/`, `tests/` and `examples/` (the vendored stand-ins under
/// `vendor/` are third-party API surface, not workspace code).
///
/// # Errors
///
/// `root` not containing a `crates/` directory (wrong invocation dir).
pub fn lint_tree(root: &Path) -> Result<Vec<LintFinding>, String> {
    if !root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        walk(&root.join(sub), &mut files);
    }
    let mut findings = dead_allowlist_findings(root);
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_lexer_sees_through_comments_strings_and_lifetimes() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime::now in /* a nested */ block */
            fn f<'a>(x: &'a str) -> char {
                let _s = "Instant::now inside a string";
                let _r = r#"SystemTime::now inside a raw string"#;
                'x'
            }
        "##;
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_reads_are_flagged_outside_the_allowlist() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        let found = lint_source("crates/core/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "wall-clock");
        assert!(lint_source("crates/bench/benches/x.rs", src).is_empty());
        assert!(lint_source("tests/farm_e2e.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { let _ = Instant::now(); } }";
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn float_formatting_in_json_literals_is_flagged() {
        let json = "fn f(v: f64) -> String { format!(\"\\\"mean\\\":{:.3}\", v) }";
        let found = lint_source("crates/farm/src/json.rs", json);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "float-format");
        // CSV-style float formatting (no quotes) is not wire bytes.
        let csv = "fn f(v: f64) -> String { format!(\"{},{:.2}\", 1, v) }";
        assert!(lint_source("crates/core/src/report.rs", csv).is_empty());
        // Non-wire files may format floats freely.
        assert!(lint_source("crates/core/src/distribution.rs", json).is_empty());
    }

    #[test]
    fn daemon_unwraps_are_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let found = lint_source("crates/farm/src/api.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "daemon-unwrap");
        assert!(lint_source("crates/farm/src/farm.rs", src).is_empty());
        // unwrap_or is a different, total, method.
        let total = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        assert!(lint_source("crates/farm/src/api.rs", total).is_empty());
    }

    #[test]
    fn kind_strings_must_be_shared_consts() {
        let bare = concat!("fn f() -> &'static str { \"", "ncdrf", "-bogus-kind\" }");
        let found = lint_source("crates/core/src/report.rs", bare);
        assert!(found.iter().any(|f| f.rule == "kind-literal"), "{found:?}");

        let shared = concat!(
            "const K: &str = \"",
            "ncdrf",
            "-good-kind\";\n",
            "fn render() -> &'static str { K }\n",
            "fn parse(s: &str) -> bool { s == K }\n"
        );
        assert!(lint_source("crates/core/src/report.rs", shared).is_empty());

        let orphan = concat!(
            "const K: &str = \"",
            "ncdrf",
            "-lonely-kind\";\n",
            "fn render() -> &'static str { K }\n"
        );
        let found = lint_source("crates/core/src/report.rs", orphan);
        assert!(found.iter().any(|f| f.rule == "kind-orphan"), "{found:?}");
    }

    #[test]
    fn bare_version_literals_are_flagged() {
        let src = "fn f(o: &mut J) { o.integer(\"version\", 3); }";
        let found = lint_source("crates/core/src/report.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "version-literal");
        let good = "fn f(o: &mut J) { o.integer(\"version\", SHARD_VERSION); }";
        assert!(lint_source("crates/core/src/report.rs", good).is_empty());
    }

    #[test]
    fn clones_in_spill_hot_functions_are_flagged() {
        let seeded = "fn run_spill_loop(l: &Loop) -> Loop {\n\
                      let current = l.clone();\n\
                      current\n}";
        let found = lint_source("crates/spill/src/spiller.rs", seeded);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "spill-hot-clone");
        assert!(found[0].detail.contains("run_spill_loop"));

        // `.to_owned()` is the sanctioned cold-path copy.
        let cold = "fn run_spill_loop(l: &Loop) -> Loop { l.to_owned() }";
        assert!(lint_source("crates/spill/src/spiller.rs", cold).is_empty());

        // Clones outside the hot functions of a watched file are fine.
        let elsewhere = "fn escalate_ii(l: &Loop) -> Loop { l.clone() }";
        assert!(lint_source("crates/spill/src/spiller.rs", elsewhere).is_empty());

        // Unwatched files may clone freely.
        let seeded_elsewhere = "fn run_spill_loop(l: &Loop) -> Loop { l.clone() }";
        assert!(lint_source("crates/spill/src/rewrite.rs", seeded_elsewhere).is_empty());

        // Nested blocks inside the hot body are still scanned; code
        // after the body is not.
        let nested = "fn advance(&mut self) {\n\
                      if x { let s = self.sched.clone(); }\n}\n\
                      fn cold(&self) -> Loop { self.l.clone() }";
        let found = lint_source("crates/spill/src/trajectory.rs", nested);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn model_name_literals_are_flagged_outside_the_registry() {
        let src = "fn pick() -> &'static str { \"port-limited\" }";
        let found = lint_source("crates/experiments/src/bin/fig8.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "model-name-literal");
        assert!(found[0].detail.contains("port-limited"));
        // The registry and the wire parser own the names.
        assert!(lint_source("crates/core/src/model.rs", src).is_empty());
        assert!(lint_source("crates/core/src/report.rs", src).is_empty());
        // Comments, tests, and unrelated strings do not trip the rule.
        let benign = "// the \"unified\" model\nfn f() -> &'static str { \"unified-report\" }\n\
                      #[cfg(test)]\nmod tests { fn g() -> &'static str { \"swapped\" } }";
        assert!(lint_source("crates/core/src/sweep.rs", benign).is_empty());
    }

    #[test]
    fn bare_narrows_are_flagged_in_the_soa_files() {
        let src = "fn push(&mut self, n: usize) { self.group.push(n as u32); }";
        let found = lint_source("crates/sched/src/context.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "truncating-cast");
        assert!(found[0].detail.contains("idx32"));
        let found = lint_source("crates/spill/src/rewrite.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "truncating-cast");
        // Files outside the watched set narrow freely.
        assert!(lint_source("crates/core/src/report.rs", src).is_empty());
        // Widening casts never trip the rule.
        let widen = "fn f(n: u32) -> u64 { n as u64 }";
        assert!(lint_source("crates/sched/src/context.rs", widen).is_empty());
    }

    #[test]
    fn narrows_inside_the_sanctioned_constructors_are_exempt() {
        let src = "fn idx32(i: usize) -> u32 {\n\
                       debug_assert!(u32::try_from(i).is_ok());\n\
                       i as u32\n\
                   }\n\
                   fn time32(t: i64) -> u32 { t as u32 }\n\
                   fn other(n: usize) -> u32 { n as u32 }";
        let found = lint_source("crates/sched/src/context.rs", src);
        assert_eq!(
            found.len(),
            1,
            "only the narrow outside the helpers: {found:?}"
        );
        assert_eq!(found[0].line, 6);
        // The sanction is per-file: the same helper names in a file not
        // listed in `CAST_SANCTIONED` do not shield their bodies.
        let found = lint_source("crates/spill/src/rewrite.rs", src);
        assert_eq!(found.len(), 3);
    }
}
