//! Exact-integer JSON emission for the CLI's `--json` mode.
//!
//! The same contract as the farm's wire layer: integers render exactly
//! (never through a float path), strings are escaped per RFC 8259, and
//! the output parses back through the vendored `serde_json` with every
//! integer landing on the exact-integer `Number` variants — so CI and
//! farm tooling can consume lint/check/certify results with the one
//! parser the workspace already ships.

/// Incremental `{...}` builder. Keys are emitted in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&json_string(key));
        self.body.push(':');
    }

    /// Appends a string member.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.body.push_str(&json_string(value));
    }

    /// Appends an integer member — rendered exactly, never as a float.
    pub fn integer(&mut self, key: &str, value: u128) {
        self.key(key);
        self.body.push_str(&value.to_string());
    }

    /// Appends a boolean member.
    pub fn boolean(&mut self, key: &str, value: bool) {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.body.push_str(json);
    }

    /// Closes the object and returns its bytes.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders `[...]` from pre-rendered element values.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Renders a quoted, escaped JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_quote_and_backslash() {
        assert_eq!(json_string("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integers_render_exactly() {
        let mut o = JsonObject::new();
        o.integer("n", u128::from(u64::MAX));
        assert_eq!(o.finish(), format!("{{\"n\":{}}}", u64::MAX));
    }
}
