//! # ncdrf-analyze — static analysis for the NCDRF workspace
//!
//! Four pieces, one goal: catch concurrency and wire-protocol bugs in
//! the pool + farm substrate *before* they need a failing production
//! run to show themselves.
//!
//! * **Interleaving model checker** — [`check`] runs a scenario closure
//!   under the deterministic virtual scheduler of the vendored
//!   `parking_lot` stand-in's `model-check` feature
//!   ([`parking_lot::model`]): real threads, serialised one-at-a-time,
//!   with every scheduling decision enumerated by bounded DFS. The
//!   scenarios in [`scenarios`] drive the *real* `ncdrf_exec::Pool` and
//!   `ncdrf_farm::Farm` through their submit / claim / deliver / tick
//!   protocols and assert the lease-protocol invariants (counters
//!   counted exactly once, no double-complete, no lost cell, results
//!   index-ordered) in every explored schedule.
//! * **Happens-before layer** — [`hb::Analysis`] replays each explored
//!   trace through vector clocks, reporting unordered conflicting
//!   accesses as race candidates and nested lock acquisitions as a
//!   lock-order graph whose cycles are acquisition-order inversions.
//! * **Repo-invariant lint** — [`lint`] (binary: `ncdrf_lint`), a
//!   token-level scanner for the invariants earlier PRs fixed bugs
//!   against: no stray wall-clock reads, no float formatting on the
//!   wire, no panics in daemon request handling, kind/version constants
//!   shared between renderers and parsers.
//! * **Artifact auditor** — [`audit`] (binary: `ncdrf_analyze audit`),
//!   structural no-execution checks over a directory of shard
//!   artifacts.
//! * **Schedule certification** — [`certify`] (binary: `ncdrf_analyze
//!   certify`), offline drivers for the independent `ncdrf-certify`
//!   translation validator: certify-mode re-runs of the golden grids
//!   and per-cell re-certification of artifact directories.

#![warn(missing_docs)]

pub mod audit;
pub mod certify;
pub mod emit;
pub mod hb;
pub mod lint;
pub mod scenarios;
pub mod sync;

pub use parking_lot::model;

use model::{Config, Exploration};

/// The combined result of one model-checking run: what the exploration
/// concluded (complete? counterexample?) plus the happens-before facts
/// accumulated over every completed trace.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedule enumeration outcome.
    pub exploration: Exploration,
    /// Vector-clock race candidates and the lock-order graph.
    pub analysis: hb::Analysis,
}

impl CheckReport {
    /// Whether the run is fully clean: every schedule explored, no
    /// counterexample, no race candidates, no lock-order cycles.
    pub fn clean(&self) -> bool {
        self.exploration.complete
            && self.exploration.counterexample.is_none()
            && self.analysis.races().count() == 0
            && self.analysis.lock_cycles().is_empty()
    }
}

/// Explores every schedule of `scenario` under `config`, feeding each
/// completed trace through the happens-before analysis.
pub fn check<S>(config: &Config, scenario: S) -> CheckReport
where
    S: Fn() + Send + Sync + 'static,
{
    let mut analysis = hb::Analysis::new();
    let exploration = model::explore(config, scenario, |trace| analysis.absorb(trace));
    CheckReport {
        exploration,
        analysis,
    }
}
