//! The instrumentable sync surface, re-exported in one place.
//!
//! Model-checked code uses exactly the primitives production code uses —
//! the workspace's `parking_lot` stand-in, whose `model-check` feature
//! (always on for this crate) routes every operation performed on a
//! registered exploration thread through the virtual scheduler. This
//! module re-exports that surface so scenarios and tests read
//! `sync::Mutex`, plus a small annotated cell for exercising the race
//! detector with *deliberately* unsynchronized accesses.

pub use parking_lot::model;
pub use parking_lot::thread;
pub use parking_lot::{name_condvar, name_mutex, trace_access, Condvar, Mutex};

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared counter whose accesses are *annotated but not ordered*: each
/// `load`/`store` reports itself to the happens-before analysis via
/// [`trace_access`], while the storage itself is a relaxed atomic (so
/// the type is sound even off the model). Two threads touching one
/// `TracedCell` without a lock between them is exactly what
/// [`crate::hb::Analysis`] flags as a race candidate — the workspace's
/// seeded-mutation probe for the race detector.
#[derive(Debug, Default)]
pub struct TracedCell {
    label: &'static str,
    value: AtomicU64,
}

impl TracedCell {
    /// A cell reporting its accesses under `label`.
    pub fn new(label: &'static str, value: u64) -> TracedCell {
        TracedCell {
            label,
            value: AtomicU64::new(value),
        }
    }

    /// An annotated write.
    pub fn store(&self, value: u64) {
        trace_access(self as *const TracedCell as usize, true, self.label);
        self.value.store(value, Ordering::Relaxed);
    }

    /// An annotated read.
    pub fn load(&self) -> u64 {
        trace_access(self as *const TracedCell as usize, false, self.label);
        self.value.load(Ordering::Relaxed)
    }
}
