//! Model-check scenarios over the *real* workspace concurrency: the
//! `ncdrf_exec::Pool` work-claiming protocol and the `ncdrf_farm::Farm`
//! lease protocol, each wrapped as a closure the scheduler can replay
//! under every interleaving.
//!
//! Scenario closures must be **deterministic given the schedule**: all
//! branching inside them flows from the order the virtual scheduler
//! grants sync operations, never from wall time, addresses or iteration
//! order of unordered containers. The farm scenario therefore steers
//! time through [`Clock::manual`] and builds its (expensive, but
//! schedule-independent) sweep fixture once, outside any exploration.

use crate::sync::thread;
use ncdrf::{CacheStats, GridSignature, SweepShard};
use ncdrf_exec::Pool;
use ncdrf_farm::{Clock, Farm, FarmConfig, JobSpec, JobState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The job spec the farm scenario submits: the smallest preset grid the
/// farm accepts, shrunk to one loop and one budget so a full sweep of
/// its cells stays microscopic.
pub const FARM_SCENARIO_SPEC: &str = r#"{"grid":"fig89","corpus":"small","take":1,"budgets":[32]}"#;

/// Everything the farm scenario needs that is expensive to compute but
/// independent of scheduling: the grid, one pre-evaluated artifact per
/// cell, and the report bytes + summed counters a sequential reference
/// run produces. Built once per process (see [`farm_fixture`]).
pub struct FarmFixture {
    /// Total grid cells of [`FARM_SCENARIO_SPEC`].
    pub cells: usize,
    /// The grid identity.
    pub signature: GridSignature,
    /// One single-cell artifact per task index.
    pub cell_artifacts: Vec<SweepShard>,
    /// Report bytes a sequential farm run serves for this job.
    pub expected_report: String,
    /// Summed per-cell cache counters of that report.
    pub expected_scheduling: CacheStats,
}

/// The fixture, built on first use. Callers constructing a scenario
/// *must* take this before `model::explore` starts (the factory
/// functions below do), so its lock traffic never lands inside an
/// exploration and every schedule replays identically.
pub fn farm_fixture() -> &'static FarmFixture {
    static FIXTURE: OnceLock<FarmFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let spec = JobSpec::from_json(FARM_SCENARIO_SPEC).expect("scenario spec parses");
        let signature = spec.signature().expect("scenario grid builds");
        let cells = signature.total_tasks();
        assert!(
            (2..=16).contains(&cells),
            "scenario grid should stay small, got {cells} cells"
        );
        let (corpus, machines) = ncdrf::rebuild_grid(&signature).expect("scenario grid rebuilds");
        let sweep = ncdrf::sweep_for_signature(&signature, &corpus, machines);
        let cell_artifacts: Vec<SweepShard> = (0..cells as u64)
            .map(|t| {
                sweep
                    .issue_cells(&[t], &[], &[])
                    .expect("scenario cell evaluates")
            })
            .collect();

        // Sequential reference run: one farm, one lease, one delivery.
        let farm = Farm::new(FarmConfig {
            lease_cells: cells,
            artifact_dir: None,
            ..FarmConfig::default()
        });
        let receipt = farm
            .submit(FARM_SCENARIO_SPEC, 0)
            .expect("reference submit");
        let offer = farm.claim("reference", 0).expect("reference claim");
        let artifact = artifact_for_tasks(&cell_artifacts, &offer.tasks);
        let delivered = farm
            .deliver(offer.lease, artifact, 1)
            .expect("reference deliver");
        assert!(delivered.complete, "one full lease completes the job");
        let status = farm.status(&receipt.job).expect("reference status");
        FarmFixture {
            cells,
            signature,
            cell_artifacts,
            expected_report: farm.report(&receipt.job).expect("reference report"),
            expected_scheduling: status.scheduling.expect("complete job publishes counters"),
        }
    })
}

/// Builds the artifact a (real or simulated) worker delivers for a
/// lease over `tasks`: the pre-evaluated single-cell artifacts of those
/// tasks, reconciled into one shard.
pub fn artifact_for_tasks(cell_artifacts: &[SweepShard], tasks: &[u64]) -> SweepShard {
    let shards: Vec<SweepShard> = tasks
        .iter()
        .map(|&t| cell_artifacts[usize::try_from(t).expect("task index fits")].clone())
        .collect();
    SweepShard::reconcile(&shards).expect("pre-evaluated cells reconcile")
}

/// Cross-schedule observations of the farm scenario: which corner cases
/// the exploration actually drove through, counted over all schedules.
/// The per-schedule invariants live inside the scenario (as asserts);
/// these only establish coverage.
#[derive(Debug, Default)]
pub struct FarmProbes {
    /// Schedules in which at least one lease expired.
    pub schedules_with_expiry: AtomicUsize,
    /// Schedules in which the same grid cell was delivered more than
    /// once (an expired lease delivered late plus its re-lease).
    pub schedules_with_duplicates: AtomicUsize,
}

/// The pool scenario: `workers` pool threads race over a `tasks`-cell
/// grid (optionally with one task panicking), and every schedule must
/// leave results index-ordered, each task executed exactly once, and
/// the panic — if seeded — isolated to its own slot.
pub fn pool_scenario(
    workers: usize,
    tasks: usize,
    panic_at: Option<usize>,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let executed: Arc<Vec<AtomicUsize>> =
            Arc::new((0..tasks).map(|_| AtomicUsize::new(0)).collect());
        let pool = Pool::with_workers(workers);
        let grid = Arc::clone(&executed);
        let results = pool.run(tasks, move |i| {
            grid[i].fetch_add(1, Ordering::SeqCst);
            if Some(i) == panic_at {
                panic!("seeded task panic");
            }
            i * 10
        });
        assert_eq!(results.len(), tasks, "one result slot per task");
        for (i, result) in results.iter().enumerate() {
            if Some(i) == panic_at {
                let e = result.as_ref().expect_err("seeded panic lands in its slot");
                assert_eq!(e.index, i, "panic reports its own index");
            } else {
                let v = result.as_ref().expect("healthy task yields its value");
                assert_eq!(*v, i * 10, "results are index-ordered");
            }
        }
        for (i, count) in executed.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "task {i} ran exactly once");
        }
        drop(pool); // shutdown + join under the model, every schedule
    }
}

/// The farm lease-protocol scenario: one worker claims and delivers,
/// one ticker advances a manual clock past every lease deadline and
/// ticks (expiry + heal), and the root thread then drains the farm to
/// completion. Every schedule must end with the job complete, every
/// cell resolved, the completion receipt issued exactly once, and the
/// report bytes + summed `CacheStats` equal to the sequential
/// reference — the "each counter counted exactly once" invariant, which
/// duplicate deliveries from expired leases must not break.
pub fn farm_lease_scenario(probes: Arc<FarmProbes>) -> impl Fn() + Send + Sync + 'static {
    let fixture = farm_fixture();
    move || {
        let lease_cells = fixture.cells.div_ceil(2);
        let farm = Arc::new(Farm::new(FarmConfig {
            queue_cap: 2,
            max_cells: 4096,
            lease_ms: 10,
            lease_cells,
            artifact_dir: None,
            certify: false,
        }));
        let clock = Clock::manual(0);
        let receipt = farm
            .submit(FARM_SCENARIO_SPEC, clock.now_ms())
            .expect("scenario submit");
        assert_eq!(receipt.cells, fixture.cells);
        let job = receipt.job.clone();
        let completions = Arc::new(AtomicUsize::new(0));
        let delivered_cells = Arc::new(AtomicUsize::new(0));
        let mut expired_total = 0usize;

        // Two workers, so one worker's expired cells can be re-leased
        // and re-delivered by the other *before* the late delivery
        // arrives — the duplicate-delivery corner of at-least-once.
        let spawn_worker = |name: &'static str| {
            let farm = Arc::clone(&farm);
            let clock = clock.clone();
            let completions = Arc::clone(&completions);
            let delivered_cells = Arc::clone(&delivered_cells);
            thread::spawn(move || {
                if let Some(offer) = farm.claim(name, clock.now_ms()) {
                    let artifact = artifact_for_tasks(&fixture.cell_artifacts, &offer.tasks);
                    delivered_cells.fetch_add(offer.tasks.len(), Ordering::SeqCst);
                    // At-least-once delivery: even if the ticker expired
                    // this lease in between, the late artifact is good.
                    let r = farm
                        .deliver(offer.lease, artifact, clock.now_ms())
                        .expect("scenario deliver");
                    if r.complete {
                        completions.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        };
        let worker = spawn_worker("scenario-worker-1");
        let worker2 = spawn_worker("scenario-worker-2");
        let ticker = {
            let farm = Arc::clone(&farm);
            let clock = clock.clone();
            thread::spawn(move || {
                // Jump the farm clock past every outstanding deadline,
                // then tick: any claimed-but-undelivered lease expires
                // and its cells requeue.
                clock.advance(1_000);
                farm.tick(clock.now_ms()).expired
            })
        };
        worker.join().expect("scenario worker 1");
        worker2.join().expect("scenario worker 2");
        expired_total += ticker.join().expect("scenario ticker");

        // Drain to completion on the root thread: tick (expiry + heal)
        // then claim/deliver until the job reports complete. Bounded —
        // a lost cell (requeued nowhere, leased nowhere) would spin
        // here forever, so the bound converts it into a counterexample.
        let mut rounds = 0usize;
        loop {
            let status = farm.status(&job).expect("scenario status");
            if status.state == JobState::Complete {
                break;
            }
            rounds += 1;
            assert!(
                rounds <= 2 * fixture.cells + 4,
                "job does not converge: a cell was lost"
            );
            clock.advance(1_000);
            expired_total += farm.tick(clock.now_ms()).expired;
            while let Some(offer) = farm.claim("scenario-drain", clock.now_ms()) {
                let artifact = artifact_for_tasks(&fixture.cell_artifacts, &offer.tasks);
                delivered_cells.fetch_add(offer.tasks.len(), Ordering::SeqCst);
                let r = farm
                    .deliver(offer.lease, artifact, clock.now_ms())
                    .expect("scenario drain deliver");
                if r.complete {
                    completions.fetch_add(1, Ordering::SeqCst);
                }
            }
        }

        // Schedule-independent invariants.
        assert_eq!(
            completions.load(Ordering::SeqCst),
            1,
            "exactly one delivery completes the job"
        );
        let status = farm.status(&job).expect("scenario final status");
        assert_eq!(status.resolved, fixture.cells, "every cell resolved");
        assert_eq!(status.failed, 0);
        let scheduling = status.scheduling.expect("complete job publishes counters");
        assert_eq!(
            scheduling, fixture.expected_scheduling,
            "every CacheStats counter counted exactly once"
        );
        assert_eq!(
            farm.report(&job).expect("scenario report"),
            fixture.expected_report,
            "report bytes are interleaving-invariant"
        );

        // Coverage probes (asserted across schedules, not per schedule).
        if expired_total > 0 {
            probes.schedules_with_expiry.fetch_add(1, Ordering::SeqCst);
        }
        if delivered_cells.load(Ordering::SeqCst) > fixture.cells {
            probes
                .schedules_with_duplicates
                .fetch_add(1, Ordering::SeqCst);
        }
    }
}
