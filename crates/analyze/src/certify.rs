//! Offline certification drivers for the `ncdrf_analyze certify` CLI.
//!
//! Two targets, both running the independent `ncdrf-certify` validator
//! (never the schedulers' own verifiers):
//!
//! * **Golden fixtures** ([`certify_golden`]) — re-runs the pinned
//!   fig6/7, fig8/9, Table 1 and `extended` grids with a certify-mode
//!   [`Sweep`], so every cell's schedule, spill rewrite and requirement
//!   is re-derived from first principles while it is produced, then
//!   byte-compares the rendered reports against the seven fixtures in
//!   `tests/golden/`. A certification failure and a byte drift are both
//!   findings.
//! * **Artifact directories** ([`certify_artifact_dir`]) — scans a
//!   directory of shard/consolidated artifacts (the farm's
//!   `--artifact-dir`, a `shard_runner` output dir) and replays each
//!   healthy cell under a certify-mode session via
//!   [`ncdrf::certify_shard`], reporting every cell whose claimed
//!   payload cannot be independently re-certified.

use ncdrf::corpus::Corpus;
use ncdrf::{
    default_points, scan_artifacts, ArtifactError, CellFault, Model, Render, ReportFormat, Sweep,
    SweepReport, TABLE1_POINTS,
};
use ncdrf_certify::ScheduleCertifier;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The corpus slice the golden fixtures pin (`tests/golden_reports.rs`).
fn corpus() -> Corpus {
    Corpus::small().take(12)
}

/// One golden fixture's certification outcome.
#[derive(Debug)]
pub struct GoldenCheck {
    /// Fixture file name (`fig89.json`, `table1.txt`, ...).
    pub fixture: String,
    /// `None` when the certify-mode re-run matched the fixture
    /// byte-for-byte; otherwise what went wrong (certification failure,
    /// byte drift, or unreadable fixture).
    pub fault: Option<String>,
}

impl GoldenCheck {
    fn ok(fixture: &str) -> GoldenCheck {
        GoldenCheck {
            fixture: fixture.to_owned(),
            fault: None,
        }
    }

    fn bad(fixture: &str, fault: String) -> GoldenCheck {
        GoldenCheck {
            fixture: fixture.to_owned(),
            fault: Some(fault),
        }
    }
}

/// Attaches the independent certifier to a sweep recipe.
fn certified(sweep: Sweep<'_>) -> Sweep<'_> {
    sweep.certify(Arc::new(ScheduleCertifier))
}

/// A named fixture paired with the rendering that must reproduce it.
type Rendering<'a> = (&'a str, &'a dyn Fn(&SweepReport) -> String);

/// Runs one pinned recipe under certification and compares each of its
/// renderings against the named fixture in `dir`.
fn check_report(
    dir: &Path,
    report: Result<SweepReport, impl std::fmt::Display>,
    renderings: &[Rendering<'_>],
    out: &mut Vec<GoldenCheck>,
) {
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            for (fixture, _) in renderings {
                out.push(GoldenCheck::bad(fixture, format!("grid run refused: {e}")));
            }
            return;
        }
    };
    for (fixture, render) in renderings {
        let path = dir.join(fixture);
        let expected = match std::fs::read_to_string(&path) {
            Ok(expected) => expected,
            Err(e) => {
                out.push(GoldenCheck::bad(
                    fixture,
                    format!("fixture `{}` unreadable: {e}", path.display()),
                ));
                continue;
            }
        };
        if render(&report) == expected {
            out.push(GoldenCheck::ok(fixture));
        } else {
            out.push(GoldenCheck::bad(
                fixture,
                "certified re-run drifted from the pinned fixture bytes".to_owned(),
            ));
        }
    }
}

/// Certifies all seven golden fixtures in `dir` (normally
/// `tests/golden/`): every grid re-runs with the independent certifier
/// checking each cell as it is produced, and the rendered reports must
/// match the fixtures byte-for-byte.
pub fn certify_golden(dir: &Path) -> Vec<GoldenCheck> {
    let corpus = corpus();
    let mut out = Vec::new();

    let json: &dyn Fn(&SweepReport) -> String = &|r| r.render(ReportFormat::Json);
    let text: &dyn Fn(&SweepReport) -> String = &|r| r.render(ReportFormat::Text);
    let table1_text: &dyn Fn(&SweepReport) -> String = &|r| r.table1().render(ReportFormat::Text);

    check_report(
        dir,
        certified(
            Sweep::new(&corpus)
                .clustered_latencies([3, 6])
                .models(Model::finite())
                .points(default_points()),
        )
        .run_sequential(),
        &[("fig67.json", json)],
        &mut out,
    );
    check_report(
        dir,
        certified(
            Sweep::new(&corpus)
                .clustered_latencies([3, 6])
                .models(Model::all())
                .budgets([64, 48, 32, 16]),
        )
        .run_sequential(),
        &[("fig89.json", json), ("fig89.txt", text)],
        &mut out,
    );
    check_report(
        dir,
        certified(
            Sweep::new(&corpus)
                .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
                .models([Model::Unified])
                .points(TABLE1_POINTS),
        )
        .run_sequential(),
        &[("table1.json", json), ("table1.txt", table1_text)],
        &mut out,
    );
    let extended = match ncdrf::preset_sweep(&corpus, "extended") {
        Some(sweep) => certified(sweep).run_sequential().map_err(|e| e.to_string()),
        None => Err("unknown preset `extended`".to_owned()),
    };
    check_report(
        dir,
        extended,
        &[("extended.json", json), ("extended.txt", text)],
        &mut out,
    );
    out
}

/// One artifact's certification outcome.
#[derive(Debug)]
pub struct ArtifactCheck {
    /// The artifact file.
    pub path: PathBuf,
    /// Cells whose claimed payload failed independent re-certification.
    pub faults: Vec<CellFault>,
}

/// Scans `dir` for shard/consolidated artifacts and certifies every
/// healthy cell of each against an independent re-evaluation.
///
/// # Errors
///
/// The directory being unreadable. A malformed or uncertifiable
/// artifact is a per-artifact fault, not an error.
pub fn certify_artifact_dir(dir: &Path) -> Result<Vec<ArtifactCheck>, ArtifactError> {
    let mut out = Vec::new();
    for (path, shard) in scan_artifacts(dir)? {
        let faults = match ncdrf::certify_shard(&shard, Arc::new(ScheduleCertifier)) {
            Ok(faults) => faults,
            Err(e) => vec![CellFault {
                task: u64::MAX,
                loop_name: String::new(),
                machine: String::new(),
                detail: format!("artifact is not certifiable: {e}"),
            }],
        };
        out.push(ArtifactCheck { path, faults });
    }
    Ok(out)
}
