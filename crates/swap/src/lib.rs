//! The greedy cluster-swapping post-pass of the paper's §4.1 and §5.2.
//!
//! After modulo scheduling binds every operation to a functional-unit
//! instance (and therefore to a cluster), the classification of values into
//! global / left-only / right-only is fixed — and often suboptimal: a value
//! whose two consumers landed in different clusters must be replicated
//! (global), and the per-cluster local pressures may be unbalanced.
//!
//! The paper's remedy is a *post-scheduling* pass that **swaps pairs of
//! operations across clusters**. A swap is legal when both operations are
//! scheduled in the same kernel cycle and use the same kind of functional
//! unit (§4.1). Swapping pursues two goals, both of which lower the dual
//! register requirement (the maximum over the two subfiles):
//!
//! * turning global values into locals (fewer replicated registers), and
//! * balancing left-only against right-only pressure.
//!
//! Following §5.2, the pass is **greedy**: each step evaluates every legal
//! candidate, applies the one with the largest reduction of the estimated
//! requirement, and repeats until no candidate improves it. The estimate is
//! the MaxLive lower bound per subfile (the paper uses the same bound
//! "due to the cost involved to allocate registers"); an exact-allocation
//! scoring mode is provided for the ablation study.
//!
//! # Example
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_sched::modulo_schedule;
//! use ncdrf_swap::swap_pass;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("dot");
//! let x = b.array_in("x");
//! let y = b.array_in("y");
//! let lx = b.load("LX", x, 0);
//! let ly = b.load("LY", y, 0);
//! let m = b.mul("M", lx.now(), ly.now());
//! let s = b.reserve_add("S");
//! b.bind(s, [m.now(), s.prev(1)]);
//! let lp = b.finish(Weight::default())?;
//!
//! let machine = Machine::clustered(3, 1);
//! let mut sched = modulo_schedule(&lp, &machine)?;
//! let outcome = swap_pass(&lp, &machine, &mut sched)?;
//! assert!(outcome.after <= outcome.before);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{ClusterId, Machine, MachineError, UnitRef};
use ncdrf_regalloc::{allocate_dual, lifetimes, max_live_subset, Lifetime, ValueClass};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How swap candidates are scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Scoring {
    /// Estimate the post-swap requirement with the MaxLive lower bound per
    /// subfile (the paper's choice, §5.2: cheap, and what a compiler would
    /// afford).
    #[default]
    MaxLiveBound,
    /// Run the full First-Fit dual allocation for every candidate
    /// (expensive; used by the `ablation_swap_scoring` bench).
    ExactAlloc,
}

/// Tuning knobs for the swapping pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapOptions {
    /// Candidate scoring policy.
    pub scoring: Scoring,
    /// Also consider *moving* a single operation to an idle unit of the
    /// same group in the other cluster (a swap with an empty slot). The
    /// paper's §4.1 swaps op pairs; moves are a strict generalisation that
    /// the same greedy framework admits, enabled by default.
    pub allow_moves: bool,
    /// Safety bound on the number of applied actions (the greedy loop
    /// strictly decreases the requirement, so it terminates regardless;
    /// this is a belt-and-braces guard).
    pub max_steps: usize,
}

impl Default for SwapOptions {
    fn default() -> Self {
        SwapOptions {
            scoring: Scoring::MaxLiveBound,
            allow_moves: true,
            max_steps: 10_000,
        }
    }
}

/// One applied rebinding action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapAction {
    /// The two operations exchanged their functional-unit instances.
    Pair(OpId, OpId),
    /// The operation moved to an idle instance in the given cluster.
    Move(OpId, ClusterId),
}

impl fmt::Display for SwapAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapAction::Pair(a, b) => write!(f, "swap {a} <-> {b}"),
            SwapAction::Move(op, c) => write!(f, "move {op} -> {c}"),
        }
    }
}

/// The result of a swapping pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapOutcome {
    /// Estimated register requirement before the pass (per the scoring
    /// policy's estimator).
    pub before: u32,
    /// Estimated requirement after the pass.
    pub after: u32,
    /// Actions applied, in order.
    pub actions: Vec<SwapAction>,
}

impl SwapOutcome {
    /// Requirement reduction achieved (`before - after`).
    pub fn gain(&self) -> u32 {
        self.before.saturating_sub(self.after)
    }
}

/// Runs the greedy swapping pass with default options, mutating `sched`'s
/// unit bindings in place.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of `l` (impossible for schedules produced against the same
/// machine).
pub fn swap_pass(
    l: &Loop,
    machine: &Machine,
    sched: &mut Schedule,
) -> Result<SwapOutcome, MachineError> {
    swap_pass_with(l, machine, sched, SwapOptions::default())
}

/// Runs the greedy swapping pass with explicit options.
///
/// On single-cluster machines the pass is a no-op (there is nothing to
/// swap across).
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of `l`.
pub fn swap_pass_with(
    l: &Loop,
    machine: &Machine,
    sched: &mut Schedule,
    opts: SwapOptions,
) -> Result<SwapOutcome, MachineError> {
    let lts = lifetimes(l, machine, sched)?;
    let consumers = l.consumers();
    let mut clusters = cluster_vec(l, machine, sched);
    let mut scorer = match opts.scoring {
        Scoring::MaxLiveBound => Some(BoundScorer::new(l, &lts, &consumers, &clusters, sched.ii())),
        Scoring::ExactAlloc => None,
    };
    let mut current = match &scorer {
        Some(s) => s.score(),
        None => score_from(&lts, &consumers, &clusters, sched.ii(), opts.scoring),
    };
    let before = current;
    let mut actions = Vec::new();

    if machine.clusters() >= 2 {
        while actions.len() < opts.max_steps {
            let Some((best, action)) = best_candidate(
                l,
                machine,
                sched,
                &lts,
                &consumers,
                &clusters,
                current,
                opts,
                scorer.as_mut(),
            ) else {
                break;
            };
            apply(machine, sched, &mut clusters, action);
            if let Some(s) = scorer.as_mut() {
                let changed = match action {
                    SwapAction::Pair(a, b) => vec![a.index(), b.index()],
                    SwapAction::Move(a, _) => vec![a.index()],
                };
                s.commit(&lts, &consumers, &clusters, &changed);
            }
            debug_assert_eq!(
                score_from(&lts, &consumers, &clusters, sched.ii(), opts.scoring),
                best
            );
            current = best;
            actions.push(action);
        }
    }

    Ok(SwapOutcome {
        before,
        after: current,
        actions,
    })
}

/// Classifies lifetimes given an explicit per-op cluster assignment.
///
/// This mirrors [`ncdrf_regalloc::classify`] but reads clusters from a
/// vector instead of a schedule, so the swapping pass can evaluate
/// hypothetical assignments without mutating the schedule.
pub fn classify_with_clusters(
    lifetimes: &[Lifetime],
    consumers: &[Vec<(OpId, u32)>],
    clusters: &[ClusterId],
) -> Vec<ValueClass> {
    lifetimes
        .iter()
        .map(|lt| class_of(&consumers[lt.op.index()], clusters))
        .collect()
}

/// Class of one value from its consumer list and a cluster assignment.
fn class_of(consumers_of_v: &[(OpId, u32)], clusters: &[ClusterId]) -> ValueClass {
    let mut seen = [false, false];
    for &(c, _) in consumers_of_v {
        seen[clusters[c.index()].index().min(1)] = true;
    }
    match seen {
        [true, true] => ValueClass::Global,
        [false, true] => ValueClass::Only(ClusterId::RIGHT),
        _ => ValueClass::Only(ClusterId::LEFT),
    }
}

/// Incremental [`Scoring::MaxLiveBound`] scorer.
///
/// The bound is `max` over the two subfiles of the per-cycle live count,
/// where a value occupies its class's subfiles (globals occupy both).
/// Swapping operations `a` and `b` can only change the classes of values
/// *consumed by* `a` or `b`, so instead of reclassifying every value and
/// re-sweeping all lifetimes per candidate (`O(n · II)` plus
/// allocations), the scorer keeps per-cycle live histograms for both
/// subfiles and patches just the affected values' contributions —
/// `O(deg · II)` per candidate, with scores identical to
/// [`requirement_bound`].
struct BoundScorer {
    ii: i64,
    classes: Vec<ValueClass>,
    /// Per-cycle live counts, indexed by `ClusterId::index().min(1)`.
    live: [Vec<i64>; 2],
    /// Lifetime indices consumed by each operation.
    consumed_by: Vec<Vec<usize>>,
}

impl BoundScorer {
    fn new(
        l: &Loop,
        lts: &[Lifetime],
        consumers: &[Vec<(OpId, u32)>],
        clusters: &[ClusterId],
        ii: u32,
    ) -> Self {
        let classes = classify_with_clusters(lts, consumers, clusters);
        let mut consumed_by: Vec<Vec<usize>> = vec![Vec::new(); l.ops().len()];
        for (vi, lt) in lts.iter().enumerate() {
            for &(c, _) in &consumers[lt.op.index()] {
                consumed_by[c.index()].push(vi);
            }
        }
        let mut scorer = BoundScorer {
            ii: ii as i64,
            classes: classes.clone(),
            live: [vec![0; ii as usize], vec![0; ii as usize]],
            consumed_by,
        };
        for (lt, &class) in lts.iter().zip(&classes) {
            scorer.contribute(lt, class, 1);
        }
        scorer
    }

    /// Adds (`sign = 1`) or removes (`sign = -1`) a value's live-count
    /// contribution under `class`.
    fn contribute(&mut self, lt: &Lifetime, class: ValueClass, sign: i64) {
        if lt.is_empty() {
            return;
        }
        let (start, end) = (lt.start as i64, lt.end as i64);
        for t in 0..self.ii {
            // Instances k with start + k*ii <= t < end + k*ii.
            let inst = (t - start).div_euclid(self.ii) - (t - end).div_euclid(self.ii);
            let delta = sign * inst;
            match class {
                ValueClass::Global => {
                    self.live[0][t as usize] += delta;
                    self.live[1][t as usize] += delta;
                }
                ValueClass::Only(c) => self.live[c.index().min(1)][t as usize] += delta,
            }
        }
    }

    /// The current bound (matches [`requirement_bound`]).
    fn score(&self) -> u32 {
        let peak = |live: &[i64]| live.iter().copied().max().unwrap_or(0).max(0);
        peak(&self.live[0]).max(peak(&self.live[1])) as u32
    }

    /// Class changes caused by re-clustering `changed_ops` under
    /// `clusters`, deduplicated (a value consumed by both swapped ops
    /// appears once).
    fn class_changes(
        &self,
        lts: &[Lifetime],
        consumers: &[Vec<(OpId, u32)>],
        clusters: &[ClusterId],
        changed_ops: &[usize],
    ) -> Vec<(usize, ValueClass, ValueClass)> {
        let mut changes: Vec<(usize, ValueClass, ValueClass)> = Vec::new();
        for &op in changed_ops {
            for &v in &self.consumed_by[op] {
                if changes.iter().any(|&(seen, _, _)| seen == v) {
                    continue;
                }
                let old = self.classes[v];
                let new = class_of(&consumers[lts[v].op.index()], clusters);
                if new != old {
                    changes.push((v, old, new));
                }
            }
        }
        changes
    }

    /// The bound under the hypothetical assignment `clusters` (state is
    /// restored before returning).
    fn score_candidate(
        &mut self,
        lts: &[Lifetime],
        consumers: &[Vec<(OpId, u32)>],
        clusters: &[ClusterId],
        changed_ops: &[usize],
    ) -> u32 {
        let changes = self.class_changes(lts, consumers, clusters, changed_ops);
        for &(v, old, new) in &changes {
            self.contribute(&lts[v], old, -1);
            self.contribute(&lts[v], new, 1);
        }
        let s = self.score();
        for &(v, old, new) in &changes {
            self.contribute(&lts[v], new, -1);
            self.contribute(&lts[v], old, 1);
        }
        s
    }

    /// Makes an applied action's class changes permanent. `clusters` is
    /// the post-action assignment.
    fn commit(
        &mut self,
        lts: &[Lifetime],
        consumers: &[Vec<(OpId, u32)>],
        clusters: &[ClusterId],
        changed_ops: &[usize],
    ) {
        for (v, old, new) in self.class_changes(lts, consumers, clusters, changed_ops) {
            self.contribute(&lts[v], old, -1);
            self.contribute(&lts[v], new, 1);
            self.classes[v] = new;
        }
    }
}

/// The per-subfile requirement estimate used by the greedy pass with
/// [`Scoring::MaxLiveBound`]: the larger of the two subfiles' MaxLive
/// (globals counted in both).
pub fn requirement_bound(lifetimes: &[Lifetime], classes: &[ValueClass], ii: u32) -> u32 {
    let left = max_live_paired(lifetimes, classes, ii, ClusterId::LEFT);
    let right = max_live_paired(lifetimes, classes, ii, ClusterId::RIGHT);
    left.max(right)
}

fn cluster_vec(l: &Loop, machine: &Machine, sched: &Schedule) -> Vec<ClusterId> {
    l.iter_ops()
        .map(|(id, _)| sched.cluster(id, machine))
        .collect()
}

fn score_from(
    lts: &[Lifetime],
    consumers: &[Vec<(OpId, u32)>],
    clusters: &[ClusterId],
    ii: u32,
    scoring: Scoring,
) -> u32 {
    let classes = classify_with_clusters(lts, consumers, clusters);
    match scoring {
        Scoring::MaxLiveBound => requirement_bound(lts, &classes, ii),
        Scoring::ExactAlloc => allocate_dual(lts, &classes, ii).regs,
    }
}

fn max_live_paired(lts: &[Lifetime], classes: &[ValueClass], ii: u32, cluster: ClusterId) -> u32 {
    let kept: Vec<Lifetime> = lts
        .iter()
        .zip(classes)
        .filter(|(_, c)| c.occupies(cluster))
        .map(|(lt, _)| *lt)
        .collect();
    max_live_subset(&kept, ii, |_| true)
}

/// Finds the best improving candidate, if any, returning its post-action
/// score and the action.
#[allow(clippy::too_many_arguments)]
fn best_candidate(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    lts: &[Lifetime],
    consumers: &[Vec<(OpId, u32)>],
    clusters: &[ClusterId],
    current: u32,
    opts: SwapOptions,
    mut scorer: Option<&mut BoundScorer>,
) -> Option<(u32, SwapAction)> {
    let n = l.ops().len();
    let mut best: Option<(u32, SwapAction)> = None;
    let consider = |score: u32, action: SwapAction, best: &mut Option<(u32, SwapAction)>| {
        if score < current && best.is_none_or(|(b, _)| score < b) {
            *best = Some((score, action));
        }
    };

    let mut scratch = clusters.to_vec();
    let score_scratch =
        |scratch: &[ClusterId], changed: &[usize], scorer: &mut Option<&mut BoundScorer>| -> u32 {
            match scorer {
                Some(s) => s.score_candidate(lts, consumers, scratch, changed),
                None => score_from(lts, consumers, scratch, sched.ii(), opts.scoring),
            }
        };

    // Pair swaps: same group, same kernel slot, different clusters.
    for a in 0..n {
        let ida = OpId::from_index(a);
        for b in (a + 1)..n {
            let idb = OpId::from_index(b);
            if sched.unit(ida).group != sched.unit(idb).group
                || sched.kernel_slot(ida) != sched.kernel_slot(idb)
                || clusters[a] == clusters[b]
            {
                continue;
            }
            scratch.swap(a, b);
            let s = score_scratch(&scratch, &[a, b], &mut scorer);
            scratch.swap(a, b);
            consider(s, SwapAction::Pair(ida, idb), &mut best);
        }
    }

    // Moves: op -> idle same-group instance in another cluster, same slot.
    if opts.allow_moves {
        for a in 0..n {
            let ida = OpId::from_index(a);
            if let Some(dest) = idle_instance_in_other_cluster(machine, sched, ida, clusters[a]) {
                let target = machine.cluster_of(dest);
                let saved = scratch[a];
                scratch[a] = target;
                let s = score_scratch(&scratch, &[a], &mut scorer);
                scratch[a] = saved;
                consider(s, SwapAction::Move(ida, target), &mut best);
            }
        }
    }

    best
}

/// The first idle instance of `op`'s group at `op`'s kernel slot whose
/// cluster differs from `from` (deterministic choice).
fn idle_instance_in_other_cluster(
    machine: &Machine,
    sched: &Schedule,
    op: OpId,
    from: ClusterId,
) -> Option<UnitRef> {
    let unit = sched.unit(op);
    let slot = sched.kernel_slot(op);
    let group = &machine.groups()[unit.group];
    (0..group.count())
        .map(|instance| UnitRef {
            group: unit.group,
            instance,
        })
        .find(|&u| machine.cluster_of(u) != from && sched.occupant(u, slot).is_none())
}

fn apply(machine: &Machine, sched: &mut Schedule, clusters: &mut [ClusterId], action: SwapAction) {
    match action {
        SwapAction::Pair(a, b) => {
            sched.swap_units(a, b);
            clusters.swap(a.index(), b.index());
        }
        SwapAction::Move(op, target) => {
            let dest = idle_instance_in_other_cluster(machine, sched, op, clusters[op.index()])
                .expect("candidate search found an idle instance");
            debug_assert_eq!(machine.cluster_of(dest), target);
            sched.rebind(op, dest);
            clusters[op.index()] = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_regalloc::classify;
    use ncdrf_sched::{modulo_schedule, verify};

    /// The §4 example loop of the paper (Figure 2): 2 loads, 2 muls,
    /// 2 adds, 1 store.
    fn paper_example() -> Loop {
        let mut b = LoopBuilder::new("fig2");
        let r = b.invariant("r", 0.5);
        let t = b.invariant("t", 1.5);
        let x = b.array_in("x");
        let y = b.array_inout("y");
        let l1 = b.load("L1", x, 0);
        let l2 = b.load("L2", y, 0);
        let m3 = b.mul("M3", l2.now(), r);
        let a4 = b.add("A4", m3.now(), t);
        let m5 = b.mul("M5", a4.now(), l1.now());
        let a6 = b.add("A6", m5.now(), l1.now());
        b.store("S7", y, 0, a6.now());
        b.finish(Weight::new(100, 1)).unwrap()
    }

    #[test]
    fn swap_never_increases_requirement() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass(&l, &machine, &mut sched).unwrap();
        assert!(out.after <= out.before);
        verify(&l, &machine, &sched).unwrap();
    }

    #[test]
    fn swap_preserves_schedule_validity() {
        let l = paper_example();
        let machine = Machine::clustered(6, 1);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let _ = swap_pass(&l, &machine, &mut sched).unwrap();
        verify(&l, &machine, &sched).unwrap();
    }

    #[test]
    fn unified_machine_is_noop() {
        let l = paper_example();
        let machine = Machine::pxly(2, 3);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let before = sched.clone();
        let out = swap_pass(&l, &machine, &mut sched).unwrap();
        assert!(out.actions.is_empty());
        assert_eq!(sched, before);
    }

    #[test]
    fn outcome_matches_final_classification() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass(&l, &machine, &mut sched).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let classes = classify(&l, &machine, &sched, &lts);
        assert_eq!(out.after, requirement_bound(&lts, &classes, sched.ii()));
    }

    #[test]
    fn gain_is_before_minus_after() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass(&l, &machine, &mut sched).unwrap();
        assert_eq!(out.gain(), out.before - out.after);
    }

    #[test]
    fn exact_scoring_not_worse_than_bound() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);

        let mut s1 = modulo_schedule(&l, &machine).unwrap();
        swap_pass_with(
            &l,
            &machine,
            &mut s1,
            SwapOptions {
                scoring: Scoring::MaxLiveBound,
                ..SwapOptions::default()
            },
        )
        .unwrap();

        let mut s2 = modulo_schedule(&l, &machine).unwrap();
        swap_pass_with(
            &l,
            &machine,
            &mut s2,
            SwapOptions {
                scoring: Scoring::ExactAlloc,
                ..SwapOptions::default()
            },
        )
        .unwrap();

        let exact_req = |s: &Schedule| {
            let lts = lifetimes(&l, &machine, s).unwrap();
            let classes = classify(&l, &machine, s, &lts);
            allocate_dual(&lts, &classes, s.ii()).regs
        };
        // Exact scoring optimises the real objective directly, so it should
        // end at least as low as the bound-guided pass on this small loop.
        assert!(exact_req(&s2) <= exact_req(&s1));
    }

    #[test]
    fn pairs_only_mode_applies_only_pairs() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass_with(
            &l,
            &machine,
            &mut sched,
            SwapOptions {
                allow_moves: false,
                ..SwapOptions::default()
            },
        )
        .unwrap();
        assert!(out
            .actions
            .iter()
            .all(|a| matches!(a, SwapAction::Pair(_, _))));
        verify(&l, &machine, &sched).unwrap();
    }

    #[test]
    fn max_steps_limits_actions() {
        let l = paper_example();
        let machine = Machine::clustered(6, 2);
        let mut sched = modulo_schedule(&l, &machine).unwrap();
        let out = swap_pass_with(
            &l,
            &machine,
            &mut sched,
            SwapOptions {
                max_steps: 1,
                ..SwapOptions::default()
            },
        )
        .unwrap();
        assert!(out.actions.len() <= 1);
    }

    #[test]
    fn classify_with_clusters_matches_schedule_classify() {
        let l = paper_example();
        let machine = Machine::clustered(3, 2);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let from_sched = classify(&l, &machine, &sched, &lts);
        let clusters = cluster_vec(&l, &machine, &sched);
        let from_vec = classify_with_clusters(&lts, &l.consumers(), &clusters);
        assert_eq!(from_sched, from_vec);
    }

    #[test]
    fn display_of_actions() {
        let a = SwapAction::Pair(OpId::from_index(1), OpId::from_index(2));
        assert_eq!(a.to_string(), "swap op1 <-> op2");
        let m = SwapAction::Move(OpId::from_index(3), ClusterId::RIGHT);
        assert_eq!(m.to_string(), "move op3 -> right");
    }
}
