//! Operation kinds, identifiers and operand references.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation inside a [`Loop`](crate::Loop).
///
/// `OpId`s are dense indices into [`Loop::ops`](crate::Loop::ops); they are
/// only meaningful relative to the loop that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Creates an id from a raw index. Intended for code that iterates over
    /// `0..loop.ops().len()`.
    pub fn from_index(index: usize) -> Self {
        OpId(index as u32)
    }

    /// The dense index of this operation inside its loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A same-iteration reference to the value produced by this operation.
    pub fn now(self) -> ValueRef {
        ValueRef::Op { id: self, dist: 0 }
    }

    /// A cross-iteration reference to the value this operation produced
    /// `dist` iterations ago (`dist` is the dependence distance Ω).
    pub fn prev(self, dist: u32) -> ValueRef {
        ValueRef::Op { id: self, dist }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifier of a loop-invariant input value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvId(pub(crate) u32);

impl InvId {
    /// The dense index of this invariant inside its loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an array referenced by loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// The dense index of this array inside its loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a floating-point loop operation.
///
/// The set matches the paper's machine model (§5.2): adders execute
/// additions, subtractions and int↔fp conversions; multipliers execute
/// multiplications and divisions; load/store units execute memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Floating-point addition (2 operands).
    FpAdd,
    /// Floating-point subtraction (2 operands).
    FpSub,
    /// Floating-point multiplication (2 operands).
    FpMul,
    /// Floating-point division (2 operands).
    FpDiv,
    /// Type conversion (1 operand); executes on an adder in the paper's
    /// machine model.
    Conv,
    /// Memory load (0 value operands + a memory reference).
    Load,
    /// Memory store (1 value operand + a memory reference). Produces no
    /// value.
    Store,
}

impl OpKind {
    /// Number of value operands this kind consumes.
    pub fn arity(self) -> usize {
        match self {
            OpKind::FpAdd | OpKind::FpSub | OpKind::FpMul | OpKind::FpDiv => 2,
            OpKind::Conv | OpKind::Store => 1,
            OpKind::Load => 0,
        }
    }

    /// Whether operations of this kind produce a register value.
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Whether this kind accesses memory.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// All kinds, in a fixed order (useful for statistics tables).
    pub fn all() -> [OpKind; 7] {
        [
            OpKind::FpAdd,
            OpKind::FpSub,
            OpKind::FpMul,
            OpKind::FpDiv,
            OpKind::Conv,
            OpKind::Load,
            OpKind::Store,
        ]
    }

    /// A short mnemonic (`add`, `mul`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::FpAdd => "add",
            OpKind::FpSub => "sub",
            OpKind::FpMul => "mul",
            OpKind::FpDiv => "div",
            OpKind::Conv => "conv",
            OpKind::Load => "load",
            OpKind::Store => "store",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A reference to an operand value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueRef {
    /// The value produced by operation `id`, `dist` iterations ago.
    /// `dist == 0` is a same-iteration (intra-body) flow dependence;
    /// `dist > 0` is a loop-carried dependence (a recurrence when it closes
    /// a cycle).
    Op {
        /// Producing operation.
        id: OpId,
        /// Dependence distance (Ω): how many iterations earlier the value
        /// was produced.
        dist: u32,
    },
    /// A loop-invariant input (kept in the non-rotating general file; not
    /// part of the register-pressure accounting, per §2 of the paper).
    Inv(InvId),
    /// An immediate constant.
    Const(f64),
}

impl ValueRef {
    /// The producing operation, if this reference names one.
    pub fn op(self) -> Option<(OpId, u32)> {
        match self {
            ValueRef::Op { id, dist } => Some((id, dist)),
            _ => None,
        }
    }
}

/// One operation of a loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    pub(crate) kind: OpKind,
    pub(crate) name: String,
    pub(crate) inputs: Vec<ValueRef>,
    pub(crate) mem: Option<crate::graph::MemRef>,
    /// Initial value(s) observed by cross-iteration consumers that read
    /// this op's output before iteration 0 produced it (reductions start
    /// from this seed). Only meaningful for value-producing ops consumed at
    /// distance > 0.
    pub(crate) init: f64,
}

impl Op {
    /// The operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The (unique, human-readable) name, e.g. `"L1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value operands.
    pub fn inputs(&self) -> &[ValueRef] {
        &self.inputs
    }

    /// The memory reference, for loads and stores.
    pub fn mem(&self) -> Option<&crate::graph::MemRef> {
        self.mem.as_ref()
    }

    /// The seed value read by cross-iteration consumers before iteration 0.
    pub fn init(&self) -> f64 {
        self.init
    }
}
