//! The [`Loop`] graph type and its accessors.

use crate::op::{ArrayId, InvId, Op, OpId, OpKind, ValueRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An affine memory reference: the address accessed by iteration `i` is
/// `array[i + offset]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// The accessed array.
    pub array: ArrayId,
    /// Constant offset relative to the induction variable.
    pub offset: i64,
}

/// Role of an array with respect to the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayRole {
    /// Only read by the loop.
    Input,
    /// Only written by the loop.
    Output,
    /// Both read and written (e.g. in-place updates, memory recurrences).
    InOut,
}

/// Declaration of an array referenced by the loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    pub(crate) name: String,
    pub(crate) role: ArrayRole,
}

impl ArrayDecl {
    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared role.
    pub fn role(&self) -> ArrayRole {
        self.role
    }
}

/// A loop-invariant input value (held in the non-rotating general register
/// file; see §2 of the paper — invariants are excluded from the pressure
/// accounting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invariant {
    pub(crate) name: String,
    pub(crate) value: f64,
}

impl Invariant {
    /// The invariant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The concrete value used by the reference executor.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// Kind of an explicit (non-flow) dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepKind {
    /// Memory-ordering dependence (store→load, store→store, load→store).
    Mem,
    /// Extra serialization edge (used by tests and by the spiller to pin
    /// reload placement).
    Order,
}

/// An explicit dependence edge. Flow dependences are implicit in
/// [`Op::inputs`](crate::Op::inputs); `Dep` carries the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dep {
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
    /// Edge kind.
    pub kind: DepKind,
    /// Dependence distance in iterations.
    pub dist: u32,
}

/// Execution weight of a loop, used for the dynamic (cycle-weighted)
/// figures. The paper measured these with the CONVEX CXpa profiler; we carry
/// synthetic but deterministic weights (see `ncdrf-corpus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Weight {
    /// Iterations executed per invocation of the loop.
    pub trip: u64,
    /// Number of invocations.
    pub calls: u64,
}

impl Weight {
    /// Creates a weight.
    pub fn new(trip: u64, calls: u64) -> Self {
        Weight { trip, calls }
    }

    /// Total iterations executed (`trip * calls`).
    pub fn iterations(self) -> u64 {
        self.trip.saturating_mul(self.calls)
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight { trip: 1, calls: 1 }
    }
}

/// A single-basic-block innermost loop expressed as a data-dependence graph.
///
/// Construct loops with [`LoopBuilder`](crate::LoopBuilder); a successfully
/// built `Loop` is always structurally valid (see
/// [`ValidateError`](crate::ValidateError) for the invariants).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    pub(crate) name: String,
    pub(crate) ops: Vec<Op>,
    pub(crate) deps: Vec<Dep>,
    pub(crate) invariants: Vec<Invariant>,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) weight: Weight,
}

impl Loop {
    /// The loop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All operations, indexable by [`OpId::index`](crate::OpId::index).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operation named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this loop.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// Explicit (memory / ordering) dependence edges.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// Loop-invariant inputs.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Arrays referenced by the loop.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Execution weight.
    pub fn weight(&self) -> Weight {
        self.weight
    }

    /// Replaces the execution weight, returning the modified loop.
    pub fn with_weight(mut self, weight: Weight) -> Self {
        self.weight = weight;
        self
    }

    /// Iterator over `(OpId, &Op)` pairs.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpId, &Op)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId::from_index(i), op))
    }

    /// All dependence edges relevant for scheduling, flow edges included:
    /// `(from, to, dist)` triples. The scheduling constraint for each triple
    /// is `start(to) >= start(from) + latency(from) - II * dist`.
    pub fn sched_edges(&self) -> Vec<(OpId, OpId, u32)> {
        let mut edges = Vec::new();
        self.sched_edges_into(&mut edges);
        edges
    }

    /// [`Loop::sched_edges`] into a caller-owned buffer, so hot paths
    /// (the spill descent reschedules after every spill step) reuse one
    /// allocation across calls. The buffer is cleared first; edge order
    /// is identical to [`Loop::sched_edges`].
    pub fn sched_edges_into(&self, out: &mut Vec<(OpId, OpId, u32)>) {
        out.clear();
        for (id, op) in self.iter_ops() {
            for input in &op.inputs {
                if let ValueRef::Op { id: from, dist } = *input {
                    out.push((from, id, dist));
                }
            }
        }
        for dep in &self.deps {
            out.push((dep.from, dep.to, dep.dist));
        }
    }

    /// The consumers of each op's value: for op `p`, a list of
    /// `(consumer, dist)` pairs (one entry per *operand slot* that reads
    /// `p`, so an op reading `p` twice appears twice).
    pub fn consumers(&self) -> Vec<Vec<(OpId, u32)>> {
        let mut cons = Vec::new();
        self.consumers_into(&mut cons);
        cons
    }

    /// [`Loop::consumers`] into a caller-owned buffer: the outer vec is
    /// resized to the op count and every inner vec is cleared (keeping
    /// its capacity), so repeated calls on same-shaped loops allocate
    /// nothing. Contents are identical to [`Loop::consumers`].
    pub fn consumers_into(&self, out: &mut Vec<Vec<(OpId, u32)>>) {
        for inner in out.iter_mut() {
            inner.clear();
        }
        out.resize_with(self.ops.len(), Vec::new);
        for (id, op) in self.iter_ops() {
            for input in &op.inputs {
                if let ValueRef::Op { id: from, dist } = *input {
                    out[from.index()].push((id, dist));
                }
            }
        }
    }

    /// Count of operations of the given kind.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|op| op.kind == kind).count()
    }

    /// Number of memory operations (loads + stores) per iteration.
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().filter(|op| op.kind.is_memory()).count()
    }

    /// Looks up an operation by name.
    pub fn find_op(&self, name: &str) -> Option<OpId> {
        self.iter_ops()
            .find(|(_, op)| op.name == name)
            .map(|(id, _)| id)
    }

    /// Looks up an invariant by name.
    pub fn find_invariant(&self, name: &str) -> Option<InvId> {
        self.invariants
            .iter()
            .position(|inv| inv.name == name)
            .map(|i| InvId(i as u32))
    }

    /// Looks up an array by name.
    pub fn find_array(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop {} ({} ops):", self.name, self.ops.len())?;
        for (id, op) in self.iter_ops() {
            write!(f, "  {} = {} {}", op.name, op.kind, id)?;
            for input in &op.inputs {
                match input {
                    ValueRef::Op { id, dist } if *dist == 0 => {
                        write!(f, " {}", self.ops[id.index()].name)?
                    }
                    ValueRef::Op { id, dist } => {
                        write!(f, " {}@-{}", self.ops[id.index()].name, dist)?
                    }
                    ValueRef::Inv(inv) => write!(f, " ${}", self.invariants[inv.index()].name)?,
                    ValueRef::Const(c) => write!(f, " #{c}")?,
                }
            }
            if let Some(mem) = &op.mem {
                let arr = &self.arrays[mem.array.index()];
                write!(f, " [{}[i{:+}]]", arr.name, mem.offset)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
