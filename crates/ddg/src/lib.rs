//! Loop data-dependence graphs (DDGs) for software-pipelining studies.
//!
//! This crate is the foundation of the NCDRF reproduction: it models the
//! innermost loops that the rest of the system schedules, allocates and
//! executes. A [`Loop`] is a single-basic-block loop body expressed as a
//! graph of [`Op`]s connected by flow dependences (possibly spanning
//! iterations, expressed with a *distance*, written Ω in the software
//! pipelining literature) plus explicit memory-ordering dependences.
//!
//! The representation is *executable*: loads and stores carry affine memory
//! references (`array[i + offset]`), arithmetic operations carry their
//! operand references, and loop-invariant inputs carry concrete values, so a
//! loop can be both scheduled (by `ncdrf-sched`) and interpreted (by
//! `ncdrf-vliw`) to validate that a schedule plus register allocation is
//! semantically correct.
//!
//! # Example
//!
//! Build the `daxpy`-style loop `z[i] = a * x[i] + y[i]`:
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//!
//! # fn main() -> Result<(), ncdrf_ddg::BuildError> {
//! let mut b = LoopBuilder::new("daxpy");
//! let a = b.invariant("a", 2.5);
//! let x = b.array_in("x");
//! let y = b.array_in("y");
//! let z = b.array_out("z");
//! let lx = b.load("LX", x, 0);
//! let ly = b.load("LY", y, 0);
//! let m = b.mul("M", lx.now(), a);
//! let s = b.add("A", m.now(), ly.now());
//! b.store("S", z, 0, s.now());
//! let l = b.finish(Weight::new(100, 1))?;
//! assert_eq!(l.ops().len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod dot;
mod graph;
mod op;
mod stats;
mod validate;

pub use builder::{BuildError, LoopBuilder};
pub use graph::{ArrayDecl, ArrayRole, Dep, DepKind, Invariant, Loop, MemRef, Weight};
pub use op::{ArrayId, InvId, Op, OpId, OpKind, ValueRef};
pub use stats::LoopStats;
pub use validate::ValidateError;
