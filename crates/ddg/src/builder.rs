//! Incremental construction of [`Loop`]s.

use crate::graph::{ArrayDecl, ArrayRole, Dep, DepKind, Invariant, Loop, MemRef, Weight};
use crate::op::{ArrayId, InvId, Op, OpId, OpKind, ValueRef};
use crate::validate::{validate, ValidateError};
use std::fmt;

/// Error produced while building or finishing a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The finished graph violated a structural invariant.
    Invalid(ValidateError),
    /// Two operations share a name.
    DuplicateOpName(String),
    /// Two invariants share a name.
    DuplicateInvariantName(String),
    /// Two arrays share a name.
    DuplicateArrayName(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Invalid(e) => write!(f, "invalid loop graph: {e}"),
            BuildError::DuplicateOpName(n) => write!(f, "duplicate operation name `{n}`"),
            BuildError::DuplicateInvariantName(n) => {
                write!(f, "duplicate invariant name `{n}`")
            }
            BuildError::DuplicateArrayName(n) => write!(f, "duplicate array name `{n}`"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Invalid(e)
    }
}

/// Builder for [`Loop`]s.
///
/// Operations are appended with the typed helpers ([`LoopBuilder::add`],
/// [`LoopBuilder::mul`], [`LoopBuilder::load`], ...); each returns the
/// [`OpId`] of the new operation, which converts into operand references via
/// [`OpId::now`] and [`OpId::prev`]. [`LoopBuilder::finish`] validates the
/// graph (see [`ValidateError`]) and produces the immutable [`Loop`].
///
/// # Example
///
/// A sum reduction `s += x[i]` (a distance-1 recurrence):
///
/// ```
/// use ncdrf_ddg::{LoopBuilder, Weight};
///
/// # fn main() -> Result<(), ncdrf_ddg::BuildError> {
/// let mut b = LoopBuilder::new("sum");
/// let x = b.array_in("x");
/// let l = b.load("L", x, 0);
/// let s = b.reserve_add("S");
/// b.bind(s, [l.now(), s.prev(1)]);
/// let l = b.finish(Weight::new(64, 1))?;
/// assert_eq!(l.ops().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Op>,
    deps: Vec<Dep>,
    invariants: Vec<Invariant>,
    arrays: Vec<ArrayDecl>,
}

impl LoopBuilder {
    /// Creates an empty builder for a loop called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        LoopBuilder {
            name: name.into(),
            ops: Vec::new(),
            deps: Vec::new(),
            invariants: Vec::new(),
            arrays: Vec::new(),
        }
    }

    /// Declares a loop-invariant input with a concrete value (used by the
    /// reference executor).
    pub fn invariant(&mut self, name: impl Into<String>, value: f64) -> ValueRef {
        let id = InvId(self.invariants.len() as u32);
        self.invariants.push(Invariant {
            name: name.into(),
            value,
        });
        ValueRef::Inv(id)
    }

    /// Declares an input array.
    pub fn array_in(&mut self, name: impl Into<String>) -> ArrayId {
        self.push_array(name.into(), ArrayRole::Input)
    }

    /// Declares an output array.
    pub fn array_out(&mut self, name: impl Into<String>) -> ArrayId {
        self.push_array(name.into(), ArrayRole::Output)
    }

    /// Declares an array that is both read and written.
    pub fn array_inout(&mut self, name: impl Into<String>) -> ArrayId {
        self.push_array(name.into(), ArrayRole::InOut)
    }

    fn push_array(&mut self, name: String, role: ArrayRole) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl { name, role });
        id
    }

    fn push_op(
        &mut self,
        kind: OpKind,
        name: impl Into<String>,
        inputs: Vec<ValueRef>,
        mem: Option<MemRef>,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Op {
            kind,
            name: name.into(),
            inputs,
            mem,
            init: 0.0,
        });
        id
    }

    /// Appends a floating-point addition.
    pub fn add(&mut self, name: impl Into<String>, a: ValueRef, b: ValueRef) -> OpId {
        self.push_op(OpKind::FpAdd, name, vec![a, b], None)
    }

    /// Appends a floating-point subtraction.
    pub fn sub(&mut self, name: impl Into<String>, a: ValueRef, b: ValueRef) -> OpId {
        self.push_op(OpKind::FpSub, name, vec![a, b], None)
    }

    /// Appends a floating-point multiplication.
    pub fn mul(&mut self, name: impl Into<String>, a: ValueRef, b: ValueRef) -> OpId {
        self.push_op(OpKind::FpMul, name, vec![a, b], None)
    }

    /// Appends a floating-point division.
    pub fn div(&mut self, name: impl Into<String>, a: ValueRef, b: ValueRef) -> OpId {
        self.push_op(OpKind::FpDiv, name, vec![a, b], None)
    }

    /// Appends a type conversion (executes on an adder).
    pub fn conv(&mut self, name: impl Into<String>, a: ValueRef) -> OpId {
        self.push_op(OpKind::Conv, name, vec![a], None)
    }

    /// Appends a load of `array[i + offset]`.
    pub fn load(&mut self, name: impl Into<String>, array: ArrayId, offset: i64) -> OpId {
        self.push_op(
            OpKind::Load,
            name,
            Vec::new(),
            Some(MemRef { array, offset }),
        )
    }

    /// Appends a store of `value` into `array[i + offset]`.
    pub fn store(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        offset: i64,
        value: ValueRef,
    ) -> OpId {
        self.push_op(
            OpKind::Store,
            name,
            vec![value],
            Some(MemRef { array, offset }),
        )
    }

    /// Reserves an addition whose operands will be supplied later with
    /// [`LoopBuilder::bind`]. This is how recurrences that reference their
    /// own output (`s = s + x`) are built.
    pub fn reserve_add(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::FpAdd, name, Vec::new(), None)
    }

    /// Reserves a subtraction for later binding (see
    /// [`LoopBuilder::reserve_add`]).
    pub fn reserve_sub(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::FpSub, name, Vec::new(), None)
    }

    /// Reserves a multiplication for later binding (see
    /// [`LoopBuilder::reserve_add`]).
    pub fn reserve_mul(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::FpMul, name, Vec::new(), None)
    }

    /// Reserves a division for later binding (see
    /// [`LoopBuilder::reserve_add`]).
    pub fn reserve_div(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::FpDiv, name, Vec::new(), None)
    }

    /// Supplies the operands of a reserved operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn bind<I: IntoIterator<Item = ValueRef>>(&mut self, id: OpId, inputs: I) {
        self.ops[id.index()].inputs = inputs.into_iter().collect();
    }

    /// Sets the seed value observed by cross-iteration consumers of `id`
    /// before iteration 0 (e.g. the initial value of a reduction).
    pub fn set_init(&mut self, id: OpId, init: f64) {
        self.ops[id.index()].init = init;
    }

    /// Adds an explicit memory-ordering dependence edge.
    pub fn mem_dep(&mut self, from: OpId, to: OpId, dist: u32) {
        self.deps.push(Dep {
            from,
            to,
            kind: DepKind::Mem,
            dist,
        });
    }

    /// Adds an explicit serialization edge.
    pub fn order_dep(&mut self, from: OpId, to: OpId, dist: u32) {
        self.deps.push(Dep {
            from,
            to,
            kind: DepKind::Order,
            dist,
        });
    }

    /// Number of operations appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates and finishes the loop.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Invalid`] if the graph violates a structural
    /// invariant (unconsumed values, zero-distance cycles, arity mismatches,
    /// ...), or a duplicate-name error if names collide.
    pub fn finish(self, weight: Weight) -> Result<Loop, BuildError> {
        for (i, op) in self.ops.iter().enumerate() {
            if self.ops[..i].iter().any(|o| o.name == op.name) {
                return Err(BuildError::DuplicateOpName(op.name.clone()));
            }
        }
        for (i, inv) in self.invariants.iter().enumerate() {
            if self.invariants[..i].iter().any(|o| o.name == inv.name) {
                return Err(BuildError::DuplicateInvariantName(inv.name.clone()));
            }
        }
        for (i, arr) in self.arrays.iter().enumerate() {
            if self.arrays[..i].iter().any(|o| o.name == arr.name) {
                return Err(BuildError::DuplicateArrayName(arr.name.clone()));
            }
        }
        let l = Loop {
            name: self.name,
            ops: self.ops,
            deps: self.deps,
            invariants: self.invariants,
            arrays: self.arrays,
            weight,
        };
        validate(&l)?;
        Ok(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_loop() {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let a = b.add("A", l.now(), ValueRef::Const(1.0));
        b.store("S", z, 0, a.now());
        let lp = b.finish(Weight::new(10, 2)).unwrap();
        assert_eq!(lp.ops().len(), 3);
        assert_eq!(lp.weight().iterations(), 20);
        assert_eq!(lp.find_op("A"), Some(OpId::from_index(1)));
    }

    #[test]
    fn reduction_via_reserve_bind() {
        let mut b = LoopBuilder::new("sum");
        let x = b.array_in("x");
        let l = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [l.now(), s.prev(1)]);
        b.set_init(s, 0.0);
        let lp = b.finish(Weight::default()).unwrap();
        assert_eq!(lp.op(s).inputs().len(), 2);
        assert_eq!(lp.op(s).inputs()[1], s.prev(1));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = LoopBuilder::new("dup");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let l2 = b.load("L", x, 1);
        let a = b.add("A", l.now(), l2.now());
        b.store("S", z, 0, a.now());
        assert_eq!(
            b.finish(Weight::default()),
            Err(BuildError::DuplicateOpName("L".into()))
        );
    }

    #[test]
    fn display_formats_ops() {
        let mut b = LoopBuilder::new("t");
        let c = b.invariant("c", 3.0);
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let a = b.add("A", l.now(), c);
        b.store("S", z, 0, a.now());
        let lp = b.finish(Weight::default()).unwrap();
        let s = lp.to_string();
        assert!(s.contains("loop t"));
        assert!(s.contains("$c"));
    }
}
