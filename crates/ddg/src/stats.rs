//! Structural statistics of loop graphs.

use crate::graph::Loop;
use crate::op::OpKind;
use serde::{Deserialize, Serialize};

/// Summary statistics of one loop's dependence graph.
///
/// Produced by [`Loop::stats`]; used by the corpus tooling to report the
/// composition of the benchmark set (the paper's §5.1 describes its loop
/// selection in these terms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopStats {
    /// Total operations.
    pub ops: usize,
    /// Additions + subtractions + conversions (adder-class work).
    pub adds: usize,
    /// Multiplications + divisions (multiplier-class work).
    pub muls: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Number of loop-carried flow dependences (operand references with
    /// distance > 0).
    pub recurrences: usize,
    /// Maximum dependence distance appearing in the graph.
    pub max_distance: u32,
    /// Length (in operations) of the longest zero-distance dependence
    /// chain — the depth of the loop body.
    pub body_depth: usize,
}

impl Loop {
    /// Computes structural statistics for this loop.
    pub fn stats(&self) -> LoopStats {
        let mut recurrences = 0;
        let mut max_distance = 0;
        for (_, _, dist) in self.sched_edges() {
            if dist > 0 {
                recurrences += 1;
                max_distance = max_distance.max(dist);
            }
        }
        LoopStats {
            ops: self.ops().len(),
            adds: self.count_kind(OpKind::FpAdd)
                + self.count_kind(OpKind::FpSub)
                + self.count_kind(OpKind::Conv),
            muls: self.count_kind(OpKind::FpMul) + self.count_kind(OpKind::FpDiv),
            loads: self.count_kind(OpKind::Load),
            stores: self.count_kind(OpKind::Store),
            recurrences,
            max_distance,
            body_depth: self.body_depth(),
        }
    }

    /// Longest zero-distance dependence chain, in operations.
    fn body_depth(&self) -> usize {
        let n = self.ops().len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (from, to, dist) in self.sched_edges() {
            if dist == 0 {
                adj[from.index()].push(to.index());
                indeg[to.index()] += 1;
            }
        }
        // Topological longest path (the zero-distance subgraph is acyclic
        // for any validated loop).
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut depth = vec![1usize; n];
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &w in &adj[v] {
                depth[w] = depth[w].max(depth[v] + 1);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{LoopBuilder, Weight};

    #[test]
    fn stats_of_chain() {
        let mut b = LoopBuilder::new("chain");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        let a = b.add("A", m.now(), l.now());
        b.store("S", z, 0, a.now());
        let lp = b.finish(Weight::default()).unwrap();
        let st = lp.stats();
        assert_eq!(st.ops, 4);
        assert_eq!(st.adds, 1);
        assert_eq!(st.muls, 1);
        assert_eq!(st.loads, 1);
        assert_eq!(st.stores, 1);
        assert_eq!(st.recurrences, 0);
        assert_eq!(st.body_depth, 4); // L -> M -> A -> S
    }

    #[test]
    fn stats_of_recurrence() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array_in("x");
        let l = b.load("L", x, 0);
        let a = b.reserve_add("A");
        b.bind(a, [l.now(), a.prev(2)]);
        let lp = b.finish(Weight::default()).unwrap();
        let st = lp.stats();
        assert_eq!(st.recurrences, 1);
        assert_eq!(st.max_distance, 2);
        assert_eq!(st.body_depth, 2);
    }
}
