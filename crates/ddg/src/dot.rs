//! Graphviz (DOT) export of loop graphs, for debugging and documentation.

use crate::graph::Loop;
use crate::op::ValueRef;
use std::fmt::Write as _;

impl Loop {
    /// Renders the dependence graph in Graphviz DOT syntax.
    ///
    /// Flow dependences are solid edges (labelled with their distance when
    /// non-zero); explicit memory/order dependences are dashed.
    ///
    /// ```
    /// # use ncdrf_ddg::{LoopBuilder, Weight};
    /// # let mut b = LoopBuilder::new("t");
    /// # let x = b.array_in("x");
    /// # let z = b.array_out("z");
    /// # let l = b.load("L", x, 0);
    /// # let a = b.add("A", l.now(), l.now());
    /// # b.store("S", z, 0, a.now());
    /// # let lp = b.finish(Weight::default()).unwrap();
    /// let dot = lp.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for (id, op) in self.iter_ops() {
            let shape = if op.kind().is_memory() {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                s,
                "  n{} [label=\"{}\\n{}\" shape={}];",
                id.index(),
                op.name(),
                op.kind(),
                shape
            );
        }
        for (to, op) in self.iter_ops() {
            for input in op.inputs() {
                if let ValueRef::Op { id: from, dist } = *input {
                    if dist == 0 {
                        let _ = writeln!(s, "  n{} -> n{};", from.index(), to.index());
                    } else {
                        let _ = writeln!(
                            s,
                            "  n{} -> n{} [label=\"{}\" constraint=false];",
                            from.index(),
                            to.index(),
                            dist
                        );
                    }
                }
            }
        }
        for dep in self.deps() {
            let _ = writeln!(
                s,
                "  n{} -> n{} [style=dashed label=\"{}\"];",
                dep.from.index(),
                dep.to.index(),
                dep.dist
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{LoopBuilder, Weight};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let a = b.reserve_add("A");
        b.bind(a, [l.now(), a.prev(1)]);
        let s = b.store("S", z, 0, a.now());
        b.mem_dep(s, l, 1);
        let lp = b.finish(Weight::default()).unwrap();
        let dot = lp.to_dot();
        assert_eq!(dot.matches("label=\"L").count(), 1);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("constraint=false")); // the recurrence edge
        assert!(dot.ends_with("}\n"));
    }
}
