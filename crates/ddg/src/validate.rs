//! Structural validation of loop graphs.

use crate::graph::Loop;
use crate::op::{OpKind, ValueRef};
use std::fmt;

/// A structural invariant violated by a loop graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The loop has no operations.
    Empty,
    /// An operation has the wrong number of value operands.
    Arity {
        /// Offending op name.
        op: String,
        /// Expected operand count for its kind.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
    /// A memory operation lacks a memory reference, or a non-memory
    /// operation has one.
    MemRef {
        /// Offending op name.
        op: String,
    },
    /// An operand or dependence references an operation id out of range.
    DanglingOp {
        /// Offending op name (the referencing op).
        op: String,
    },
    /// An operand references an invariant or array id out of range.
    DanglingInput {
        /// Offending op name.
        op: String,
    },
    /// A store's value is consumed (stores produce no value).
    StoreConsumed {
        /// Consuming op name.
        op: String,
    },
    /// A value-producing operation has no consumer (dead code).
    DeadValue {
        /// Producing op name.
        op: String,
    },
    /// The graph contains a dependence cycle of total distance zero, which
    /// no schedule can satisfy.
    ZeroDistanceCycle {
        /// Name of one operation on the cycle.
        op: String,
    },
    /// An array is read although declared [`Output`](crate::ArrayRole), or
    /// written although declared [`Input`](crate::ArrayRole).
    ArrayRole {
        /// Offending op name.
        op: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "loop has no operations"),
            ValidateError::Arity {
                op,
                expected,
                found,
            } => write!(f, "op `{op}` expects {expected} operands, found {found}"),
            ValidateError::MemRef { op } => {
                write!(f, "op `{op}` has a mismatched memory reference")
            }
            ValidateError::DanglingOp { op } => {
                write!(f, "op `{op}` references an out-of-range operation")
            }
            ValidateError::DanglingInput { op } => {
                write!(f, "op `{op}` references an out-of-range invariant or array")
            }
            ValidateError::StoreConsumed { op } => {
                write!(f, "op `{op}` consumes the (non-existent) value of a store")
            }
            ValidateError::DeadValue { op } => {
                write!(f, "op `{op}` produces a value nothing consumes")
            }
            ValidateError::ZeroDistanceCycle { op } => {
                write!(f, "zero-distance dependence cycle through op `{op}`")
            }
            ValidateError::ArrayRole { op } => {
                write!(f, "op `{op}` violates an array's declared role")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks every structural invariant of `l`.
pub(crate) fn validate(l: &Loop) -> Result<(), ValidateError> {
    if l.ops.is_empty() {
        return Err(ValidateError::Empty);
    }

    let n = l.ops.len();
    for op in &l.ops {
        if op.inputs.len() != op.kind.arity() {
            return Err(ValidateError::Arity {
                op: op.name.clone(),
                expected: op.kind.arity(),
                found: op.inputs.len(),
            });
        }
        if op.kind.is_memory() != op.mem.is_some() {
            return Err(ValidateError::MemRef {
                op: op.name.clone(),
            });
        }
        for input in &op.inputs {
            match *input {
                ValueRef::Op { id, .. } => {
                    if id.index() >= n {
                        return Err(ValidateError::DanglingOp {
                            op: op.name.clone(),
                        });
                    }
                    if l.ops[id.index()].kind == OpKind::Store {
                        return Err(ValidateError::StoreConsumed {
                            op: op.name.clone(),
                        });
                    }
                }
                ValueRef::Inv(inv) => {
                    if inv.index() >= l.invariants.len() {
                        return Err(ValidateError::DanglingInput {
                            op: op.name.clone(),
                        });
                    }
                }
                ValueRef::Const(_) => {}
            }
        }
        if let Some(mem) = &op.mem {
            if mem.array.index() >= l.arrays.len() {
                return Err(ValidateError::DanglingInput {
                    op: op.name.clone(),
                });
            }
            let role = l.arrays[mem.array.index()].role;
            let ok = match op.kind {
                OpKind::Load => matches!(
                    role,
                    crate::graph::ArrayRole::Input | crate::graph::ArrayRole::InOut
                ),
                OpKind::Store => matches!(
                    role,
                    crate::graph::ArrayRole::Output | crate::graph::ArrayRole::InOut
                ),
                _ => false,
            };
            if !ok {
                return Err(ValidateError::ArrayRole {
                    op: op.name.clone(),
                });
            }
        }
    }

    for dep in &l.deps {
        if dep.from.index() >= n || dep.to.index() >= n {
            return Err(ValidateError::DanglingOp {
                op: format!("dep {}->{}", dep.from, dep.to),
            });
        }
    }

    // Dead values: every value-producing op must have at least one consumer.
    let consumers = l.consumers();
    for (id, op) in l.iter_ops() {
        if op.kind.produces_value() && consumers[id.index()].is_empty() {
            return Err(ValidateError::DeadValue {
                op: op.name.clone(),
            });
        }
    }

    // Zero-distance cycles: DFS over edges with dist == 0.
    if let Some(idx) = find_zero_distance_cycle(l) {
        return Err(ValidateError::ZeroDistanceCycle {
            op: l.ops[idx].name.clone(),
        });
    }

    Ok(())
}

/// Returns the index of an op on a zero-distance cycle, if one exists.
fn find_zero_distance_cycle(l: &Loop) -> Option<usize> {
    let n = l.ops.len();
    let mut adj = vec![Vec::new(); n];
    for (from, to, dist) in l.sched_edges() {
        if dist == 0 {
            adj[from.index()].push(to.index());
        }
    }
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = Color::Gray;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Gray => return Some(w),
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::{BuildError, LoopBuilder, ValidateError, ValueRef, Weight};

    #[test]
    fn empty_loop_rejected() {
        let b = LoopBuilder::new("e");
        assert!(matches!(
            b.finish(Weight::default()),
            Err(BuildError::Invalid(ValidateError::Empty))
        ));
    }

    #[test]
    fn dead_value_rejected() {
        let mut b = LoopBuilder::new("dead");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let _dead = b.add("D", l.now(), ValueRef::Const(1.0));
        // store l directly; D's value is dead (it does consume l though).
        b.store("S", z, 0, l.now());
        assert!(matches!(
            b.finish(Weight::default()),
            Err(BuildError::Invalid(ValidateError::DeadValue { .. }))
        ));
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut b = LoopBuilder::new("cyc");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let a = b.reserve_add("A");
        let m = b.mul("M", a.now(), l.now());
        b.bind(a, [m.now(), l.now()]); // a -> m -> a, both dist 0
        b.store("S", z, 0, a.now());
        assert!(matches!(
            b.finish(Weight::default()),
            Err(BuildError::Invalid(ValidateError::ZeroDistanceCycle { .. }))
        ));
    }

    #[test]
    fn positive_distance_cycle_accepted() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array_in("x");
        let l = b.load("L", x, 0);
        let a = b.reserve_add("A");
        b.bind(a, [l.now(), a.prev(1)]);
        assert!(b.finish(Weight::default()).is_ok());
    }

    #[test]
    fn store_value_cannot_be_consumed() {
        let mut b = LoopBuilder::new("sv");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let s = b.store("S", z, 0, l.now());
        let a = b.add("A", s.now(), ValueRef::Const(0.0));
        b.store("S2", z, 1, a.now());
        assert!(matches!(
            b.finish(Weight::default()),
            Err(BuildError::Invalid(ValidateError::StoreConsumed { .. }))
        ));
    }

    #[test]
    fn array_roles_enforced() {
        let mut b = LoopBuilder::new("role");
        let x = b.array_in("x");
        let l = b.load("L", x, 0);
        // Store into an *input* array: role violation.
        b.store("S", x, 0, l.now());
        assert!(matches!(
            b.finish(Weight::default()),
            Err(BuildError::Invalid(ValidateError::ArrayRole { .. }))
        ));
    }
}
