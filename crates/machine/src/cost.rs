//! Register-file hardware cost models (§3.2 of the paper).
//!
//! The paper motivates the dual organisation with two published models:
//!
//! * **Area** — linear in the number of registers and bits per register,
//!   quadratic in the number of ports (ref [17], C. G. Lee's thesis):
//!   each port adds a word line and a bit line per cell, so cell area grows
//!   with the square of the port count.
//! * **Access time** — logarithmic in the number of read ports and in the
//!   number of registers (ref [18], Capitanio et al.).
//!
//! These models are used by the `hw_cost` example and tests to reproduce
//! the paper's qualitative claims: a non-consistent dual file has the area
//! class of a consistent dual file, roughly half the access-time-relevant
//! port count of the equivalent unified file, and is cheaper than doubling
//! the register count.

use serde::{Deserialize, Serialize};

/// Area of a multiported register file, in arbitrary cell units.
///
/// `registers * bits * (read_ports + write_ports)^2`, following the linear
/// (registers, bits) × quadratic (ports) model of §3.2.
pub fn area(registers: u32, bits: u32, read_ports: u32, write_ports: u32) -> f64 {
    let ports = (read_ports + write_ports) as f64;
    registers as f64 * bits as f64 * ports * ports
}

/// Access time of a multiported register file, in arbitrary delay units.
///
/// `1 + a*ln(registers) + b*ln(read_ports)` with `a = b = 1`, following the
/// logarithmic model of §3.2 (both terms come from decoder and word-line
/// fan-in depth).
pub fn access_time(registers: u32, read_ports: u32) -> f64 {
    1.0 + (registers.max(1) as f64).ln() + (read_ports.max(1) as f64).ln()
}

/// A register-file organisation to be costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegFileOrg {
    /// A single multiported file.
    Unified {
        /// Architectural registers.
        registers: u32,
        /// Read ports.
        read_ports: u32,
        /// Write ports.
        write_ports: u32,
    },
    /// A consistent dual file (POWER2-style): two subfiles with identical
    /// contents; each keeps all write ports but only half the read ports.
    ConsistentDual {
        /// Architectural registers (each subfile holds all of them).
        registers: u32,
        /// Total read ports (split across the two subfiles).
        read_ports: u32,
        /// Write ports (replicated into both subfiles).
        write_ports: u32,
    },
    /// The paper's non-consistent dual file: same physical structure as the
    /// consistent dual, but the subfiles hold (partially) different values,
    /// so each subfile's `registers` entries are an independent namespace.
    NonConsistentDual {
        /// Registers per subfile.
        registers: u32,
        /// Total read ports (split across the two subfiles).
        read_ports: u32,
        /// Write ports (each result can be written to either or both
        /// subfiles, so both subfiles keep all write ports).
        write_ports: u32,
    },
}

/// Cost summary of a register-file organisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegFileCost {
    /// Total area, arbitrary units.
    pub area: f64,
    /// Access time of the slowest subfile, arbitrary units.
    pub access_time: f64,
    /// Bits needed in an instruction to name one operand register.
    pub operand_bits: u32,
}

impl RegFileOrg {
    /// Costs this organisation with `bits`-wide registers.
    ///
    /// ```
    /// # use ncdrf_machine::RegFileOrg;
    /// let uni = RegFileOrg::Unified { registers: 64, read_ports: 8, write_ports: 4 };
    /// let dual = RegFileOrg::NonConsistentDual { registers: 64, read_ports: 8, write_ports: 4 };
    /// let (u, d) = (uni.cost(64), dual.cost(64));
    /// assert!(d.access_time < u.access_time);
    /// assert_eq!(u.operand_bits, d.operand_bits);
    /// ```
    pub fn cost(self, bits: u32) -> RegFileCost {
        match self {
            RegFileOrg::Unified {
                registers,
                read_ports,
                write_ports,
            } => RegFileCost {
                area: area(registers, bits, read_ports, write_ports),
                access_time: access_time(registers, read_ports),
                operand_bits: log2_ceil(registers),
            },
            RegFileOrg::ConsistentDual {
                registers,
                read_ports,
                write_ports,
            }
            | RegFileOrg::NonConsistentDual {
                registers,
                read_ports,
                write_ports,
            } => {
                let half_reads = read_ports.div_ceil(2);
                RegFileCost {
                    area: 2.0 * area(registers, bits, half_reads, write_ports),
                    access_time: access_time(registers, half_reads),
                    operand_bits: log2_ceil(registers),
                }
            }
        }
    }
}

fn log2_ceil(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_quadratic_in_ports() {
        let a1 = area(64, 64, 4, 2);
        let a2 = area(64, 64, 8, 4);
        assert!((a2 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn access_time_grows_logarithmically() {
        let t64 = access_time(64, 8);
        let t128 = access_time(128, 8);
        assert!(t128 > t64);
        assert!((t128 - t64 - 2f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn dual_is_faster_than_unified_same_capacity() {
        let uni = RegFileOrg::Unified {
            registers: 64,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        let dual = RegFileOrg::NonConsistentDual {
            registers: 64,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        assert!(dual.access_time < uni.access_time);
    }

    #[test]
    fn ncdrf_cheaper_than_doubling_registers() {
        // §6: the proposed organisation is cheaper than doubling the number
        // of registers — fewer operand bits and less area than a unified
        // file with 2R registers, and no access-time penalty.
        let doubled = RegFileOrg::Unified {
            registers: 128,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        let ncdrf = RegFileOrg::NonConsistentDual {
            registers: 64,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        assert!(ncdrf.operand_bits < doubled.operand_bits);
        assert!(ncdrf.access_time < doubled.access_time);
    }

    #[test]
    fn consistent_and_nonconsistent_have_equal_hardware_cost() {
        let c = RegFileOrg::ConsistentDual {
            registers: 64,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        let n = RegFileOrg::NonConsistentDual {
            registers: 64,
            read_ports: 8,
            write_ports: 4,
        }
        .cost(64);
        assert_eq!(c, n);
    }

    #[test]
    fn operand_bits() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(32), 5);
        assert_eq!(log2_ceil(33), 6);
        assert_eq!(log2_ceil(64), 6);
        assert_eq!(log2_ceil(128), 7);
    }
}
