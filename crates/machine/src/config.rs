//! Machine configuration types and the paper's presets.

use ncdrf_ddg::{Loop, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster (0 = "left", 1 = "right" in the paper's
/// two-cluster machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The left cluster of a two-cluster machine.
    pub const LEFT: ClusterId = ClusterId(0);
    /// The right cluster of a two-cluster machine.
    pub const RIGHT: ClusterId = ClusterId(1);

    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("left"),
            1 => f.write_str("right"),
            n => write!(f, "cluster{n}"),
        }
    }
}

/// Functional-unit classes of the paper's machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// FP adder: additions, subtractions, conversions.
    Adder,
    /// FP multiplier: multiplications and divisions (same latency, §5.2).
    Multiplier,
    /// Combined load/store unit (the clustered machine).
    MemPort,
    /// Dedicated load port (the `PxLy` machines have two).
    LoadPort,
    /// Dedicated store port (the `PxLy` machines have one).
    StorePort,
}

impl FuClass {
    /// Whether this class serves the given operation kind.
    pub fn serves(self, kind: OpKind) -> bool {
        match self {
            FuClass::Adder => matches!(kind, OpKind::FpAdd | OpKind::FpSub | OpKind::Conv),
            FuClass::Multiplier => matches!(kind, OpKind::FpMul | OpKind::FpDiv),
            FuClass::MemPort => matches!(kind, OpKind::Load | OpKind::Store),
            FuClass::LoadPort => matches!(kind, OpKind::Load),
            FuClass::StorePort => matches!(kind, OpKind::Store),
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Adder => "adder",
            FuClass::Multiplier => "multiplier",
            FuClass::MemPort => "mem",
            FuClass::LoadPort => "load-port",
            FuClass::StorePort => "store-port",
        };
        f.write_str(s)
    }
}

/// A group of identical, fully-pipelined functional units.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuGroup {
    /// The unit class.
    pub class: FuClass,
    /// Operation latency in cycles (initiation rate is 1/cycle — fully
    /// pipelined).
    pub latency: u32,
    /// Cluster of each unit instance; `cluster_of.len()` is the unit count.
    pub cluster_of: Vec<ClusterId>,
}

impl FuGroup {
    /// Creates a group of `count` units, all in cluster 0.
    pub fn unified(class: FuClass, latency: u32, count: u32) -> Self {
        FuGroup {
            class,
            latency,
            cluster_of: vec![ClusterId(0); count as usize],
        }
    }

    /// Number of unit instances in the group.
    pub fn count(&self) -> usize {
        self.cluster_of.len()
    }
}

/// Reference to one functional-unit instance: a group index plus an
/// instance index inside the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnitRef {
    /// Index into [`Machine::groups`].
    pub group: usize,
    /// Instance within the group.
    pub instance: usize,
}

/// Error produced when a machine description cannot serve a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// No functional-unit group serves this operation kind.
    Unserved(OpKind),
    /// More than one group serves this operation kind (ambiguous binding).
    Ambiguous(OpKind),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Unserved(k) => write!(f, "no functional unit serves `{k}`"),
            MachineError::Ambiguous(k) => {
                write!(f, "more than one functional-unit group serves `{k}`")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A VLIW machine description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    name: String,
    groups: Vec<FuGroup>,
    clusters: u32,
}

impl Machine {
    /// Builds a machine from explicit groups.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Ambiguous`] if two groups serve the same
    /// operation kind (every kind must have exactly one home group).
    pub fn new(
        name: impl Into<String>,
        groups: Vec<FuGroup>,
        clusters: u32,
    ) -> Result<Self, MachineError> {
        for kind in OpKind::all() {
            let n = groups.iter().filter(|g| g.class.serves(kind)).count();
            if n > 1 {
                return Err(MachineError::Ambiguous(kind));
            }
        }
        Ok(Machine {
            name: name.into(),
            groups,
            clusters: clusters.max(1),
        })
    }

    /// The paper's `PxLy` unified configuration (Table 1): `x` adders and
    /// `x` multipliers of latency `lat`, two load ports and one store port
    /// of latency 1.
    ///
    /// ```
    /// # use ncdrf_machine::Machine;
    /// let m = Machine::pxly(2, 6);
    /// assert_eq!(m.name(), "P2L6");
    /// assert_eq!(m.clusters(), 1);
    /// ```
    pub fn pxly(x: u32, lat: u32) -> Self {
        Machine::new(
            format!("P{x}L{lat}"),
            vec![
                FuGroup::unified(FuClass::Adder, lat, x),
                FuGroup::unified(FuClass::Multiplier, lat, x),
                FuGroup::unified(FuClass::LoadPort, 1, 2),
                FuGroup::unified(FuClass::StorePort, 1, 1),
            ],
            1,
        )
        .expect("preset is unambiguous")
    }

    /// The two-cluster evaluation machine of §5.2: per cluster, 1 adder and
    /// 1 multiplier of latency `lat` plus `ls_per_cluster` load/store units
    /// of latency 1. The figures use `ls_per_cluster = 1`; the worked
    /// example of §4 uses `ls_per_cluster = 2`.
    ///
    /// ```
    /// # use ncdrf_machine::Machine;
    /// let m = Machine::clustered(3, 1);
    /// assert_eq!(m.clusters(), 2);
    /// assert_eq!(m.total_units(), 6);
    /// ```
    pub fn clustered(lat: u32, ls_per_cluster: u32) -> Self {
        let two = vec![ClusterId::LEFT, ClusterId::RIGHT];
        let mut ls = Vec::new();
        for c in [ClusterId::LEFT, ClusterId::RIGHT] {
            for _ in 0..ls_per_cluster {
                ls.push(c);
            }
        }
        Machine::new(
            format!("C2L{lat}"),
            vec![
                FuGroup {
                    class: FuClass::Adder,
                    latency: lat,
                    cluster_of: two.clone(),
                },
                FuGroup {
                    class: FuClass::Multiplier,
                    latency: lat,
                    cluster_of: two,
                },
                FuGroup {
                    class: FuClass::MemPort,
                    latency: 1,
                    cluster_of: ls,
                },
            ],
            2,
        )
        .expect("preset is unambiguous")
    }

    /// A `k`-cluster generalisation of [`Machine::clustered`]: per
    /// cluster, 1 adder and 1 multiplier of latency `lat` plus
    /// `ls_per_cluster` load/store units of latency 1. Used by the
    /// k-cluster extension study (`ncdrf-regalloc`'s `multi` module).
    ///
    /// ```
    /// # use ncdrf_machine::Machine;
    /// let m = Machine::clustered_n(4, 3, 1);
    /// assert_eq!(m.clusters(), 4);
    /// assert_eq!(m.total_units(), 12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `clusters == 0`.
    pub fn clustered_n(clusters: u32, lat: u32, ls_per_cluster: u32) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let per: Vec<ClusterId> = (0..clusters).map(ClusterId).collect();
        let mut ls = Vec::new();
        for &c in &per {
            for _ in 0..ls_per_cluster {
                ls.push(c);
            }
        }
        Machine::new(
            format!("C{clusters}L{lat}"),
            vec![
                FuGroup {
                    class: FuClass::Adder,
                    latency: lat,
                    cluster_of: per.clone(),
                },
                FuGroup {
                    class: FuClass::Multiplier,
                    latency: lat,
                    cluster_of: per,
                },
                FuGroup {
                    class: FuClass::MemPort,
                    latency: 1,
                    cluster_of: ls,
                },
            ],
            clusters,
        )
        .expect("preset is unambiguous")
    }

    /// The machine name (e.g. `"P2L6"`, `"C2L3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional-unit groups.
    pub fn groups(&self) -> &[FuGroup] {
        &self.groups
    }

    /// Number of clusters (1 = unified).
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Total functional-unit instances.
    pub fn total_units(&self) -> usize {
        self.groups.iter().map(|g| g.count()).sum()
    }

    /// The group index serving `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Unserved`] if no group serves `kind`.
    pub fn group_for(&self, kind: OpKind) -> Result<usize, MachineError> {
        self.groups
            .iter()
            .position(|g| g.class.serves(kind))
            .ok_or(MachineError::Unserved(kind))
    }

    /// Latency of operations of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Unserved`] if no group serves `kind`.
    pub fn latency(&self, kind: OpKind) -> Result<u32, MachineError> {
        Ok(self.groups[self.group_for(kind)?].latency)
    }

    /// The cluster a unit belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn cluster_of(&self, unit: UnitRef) -> ClusterId {
        self.groups[unit.group].cluster_of[unit.instance]
    }

    /// Total memory bandwidth: number of units able to issue a memory
    /// operation each cycle.
    pub fn memory_ports(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| {
                matches!(
                    g.class,
                    FuClass::MemPort | FuClass::LoadPort | FuClass::StorePort
                )
            })
            .map(|g| g.count())
            .sum()
    }

    /// Checks that every operation of `l` can be served by this machine.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Unserved`] naming the first kind without a
    /// home unit.
    pub fn check_loop(&self, l: &Loop) -> Result<(), MachineError> {
        for op in l.ops() {
            self.group_for(op.kind())?;
        }
        Ok(())
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}x{} L{}", g.count(), g.class, g.latency)?;
        }
        write!(f, "; {} cluster(s))", self.clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pxly_preset_shape() {
        let m = Machine::pxly(2, 6);
        assert_eq!(m.latency(OpKind::FpAdd), Ok(6));
        assert_eq!(m.latency(OpKind::FpMul), Ok(6));
        assert_eq!(m.latency(OpKind::Load), Ok(1));
        assert_eq!(m.latency(OpKind::Store), Ok(1));
        assert_eq!(m.memory_ports(), 3);
        assert_eq!(m.total_units(), 7);
    }

    #[test]
    fn clustered_preset_shape() {
        let m = Machine::clustered(3, 2);
        assert_eq!(m.clusters(), 2);
        assert_eq!(m.total_units(), 8);
        assert_eq!(m.memory_ports(), 4);
        // Adder instance 0 is left, 1 is right.
        let g = m.group_for(OpKind::FpAdd).unwrap();
        assert_eq!(
            m.cluster_of(UnitRef {
                group: g,
                instance: 0
            }),
            ClusterId::LEFT
        );
        assert_eq!(
            m.cluster_of(UnitRef {
                group: g,
                instance: 1
            }),
            ClusterId::RIGHT
        );
    }

    #[test]
    fn clustered_n_generalises_clustered() {
        let a = Machine::clustered(3, 1);
        let b = Machine::clustered_n(2, 3, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn ambiguous_machines_rejected() {
        let err = Machine::new(
            "amb",
            vec![
                FuGroup::unified(FuClass::MemPort, 1, 1),
                FuGroup::unified(FuClass::LoadPort, 1, 1),
            ],
            1,
        );
        assert_eq!(err, Err(MachineError::Ambiguous(OpKind::Load)));
    }

    #[test]
    fn conv_runs_on_adder() {
        let m = Machine::pxly(1, 3);
        assert_eq!(
            m.group_for(OpKind::Conv).unwrap(),
            m.group_for(OpKind::FpAdd).unwrap()
        );
        assert_eq!(
            m.group_for(OpKind::FpDiv).unwrap(),
            m.group_for(OpKind::FpMul).unwrap()
        );
    }

    #[test]
    fn display_is_informative() {
        let m = Machine::clustered(6, 1);
        let s = m.to_string();
        assert!(s.contains("C2L6"));
        assert!(s.contains("2 cluster(s)"));
    }
}
