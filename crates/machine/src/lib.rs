//! VLIW machine descriptions for the NCDRF reproduction.
//!
//! A [`Machine`] describes the functional units of a VLIW floating-point
//! processor (§2 of the paper): groups of identical, fully-pipelined units,
//! each serving a set of operation kinds with a fixed latency, and — for the
//! clustered configurations — an assignment of every unit instance to a
//! cluster.
//!
//! Two families of presets reproduce the paper's configurations:
//!
//! * [`Machine::pxly`] — the unified `PxLy` machines of Table 1
//!   (`x` adders + `x` multipliers of latency `y`, two load ports, one
//!   store port);
//! * [`Machine::clustered`] — the two-cluster evaluation machine of §5.2
//!   (per cluster: 1 adder, 1 multiplier, `ls_per_cluster` load/store
//!   units), used for Figures 6–9, and with 2 load/store units per cluster
//!   for the worked example of §4.
//!
//! The crate also carries the register-file cost models of §3.2
//! ([`RegFileCost`]): area linear in registers and quadratic in ports,
//! access time logarithmic in read ports and registers.

#![warn(missing_docs)]

mod config;
mod cost;

pub use config::{ClusterId, FuClass, FuGroup, Machine, MachineError, UnitRef};
pub use cost::{access_time, area, RegFileCost, RegFileOrg};
