//! The [`Sweep`] builder: declarative corpus experiments over a
//! machine grid × model set × budget set, backed by per-machine
//! [`Session`] caches.
//!
//! One `Sweep` replaces the positional-argument drivers that used to
//! reproduce the paper's tables and figures (`table1`, `figures_6_7`,
//! `figures_8_9`): every `(machine, loop)` pair is scheduled exactly once
//! no matter how many models or budgets are evaluated on it.
//!
//! Execution is handled by the [`ncdrf_exec`] subsystem: [`Sweep::run`]
//! flattens the whole grid into `(machine, loop)` cells and serves them
//! from one work-stealing [`Pool`], so machine-level and loop-level
//! parallelism compose instead of machines queueing behind each other.
//! [`Sweep::run_partial`] additionally makes the grid fault-tolerant —
//! one failing pair is reported by name instead of discarding the rest.
//!
//! ```
//! use ncdrf::{Model, Sweep, Render, ReportFormat};
//! use ncdrf::corpus::Corpus;
//! use ncdrf::machine::Machine;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let corpus = Corpus::small().take(8);
//! // Figures 8/9, one configuration: four models, 32 registers.
//! let report = Sweep::new(&corpus)
//!     .machine(Machine::clustered(3, 1))
//!     .models(Model::all())
//!     .budget(32)
//!     .run()?;
//! assert_eq!(report.outcomes.len(), 4);
//! println!("{}", report.render(ReportFormat::Text));
//! # Ok(())
//! # }
//! ```

use crate::artifact::ArtifactError;
use crate::certify::{CellCertifier, CellFault};
use crate::distribution::{Cumulative, Observation, TABLE1_POINTS};
use crate::experiment::{relative_performance, BudgetOutcome, DistributionCurve, Table1Row};
use crate::model::{Model, ModelId};
use crate::pipeline::{ConfigError, LoopAnalysis, LoopEval, PipelineError, PipelineOptions};
use crate::session::{CacheStats, Session, TrajectoryExport};
use crate::shard::{CellTrajectory, ShardCell, ShardRole};
use ncdrf_corpus::Corpus;
use ncdrf_ddg::Loop;
use ncdrf_exec::Pool;
use ncdrf_machine::Machine;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builder for a corpus experiment over machines × models × budgets.
///
/// * adding [`points`](Sweep::points) produces register-requirement
///   [`DistributionCurve`]s (the Figure 6/7 and Table 1 pipeline:
///   unlimited registers, no spilling);
/// * adding [`budgets`](Sweep::budgets) produces [`BudgetOutcome`]s (the
///   Figure 8/9 pipeline: finite file, spiller active).
///
/// Both can be requested in one sweep; they share the schedule cache.
#[derive(Debug, Clone)]
pub struct Sweep<'c> {
    corpus: &'c Corpus,
    machines: Vec<Machine>,
    models: Vec<ModelId>,
    points: Vec<u32>,
    budgets: Vec<u32>,
    opts: PipelineOptions,
    workers: Option<usize>,
    pool: Option<Arc<Pool>>,
    persist: bool,
    certifier: Option<Arc<dyn CellCertifier>>,
}

impl<'c> Sweep<'c> {
    /// Starts a sweep over `corpus` with no machines, all four models,
    /// and no points/budgets.
    pub fn new(corpus: &'c Corpus) -> Self {
        Sweep {
            corpus,
            machines: Vec::new(),
            models: Model::all().map(ModelId::from).to_vec(),
            points: Vec::new(),
            budgets: Vec::new(),
            opts: PipelineOptions::default(),
            workers: None,
            pool: None,
            persist: false,
            certifier: None,
        }
    }

    /// Adds one machine to the grid.
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machines.push(machine);
        self
    }

    /// Adds machines to the grid.
    pub fn machines<I: IntoIterator<Item = Machine>>(mut self, machines: I) -> Self {
        self.machines.extend(machines);
        self
    }

    /// Adds the paper's two-cluster evaluation machines for the given
    /// latencies ([`Machine::clustered`] with one load/store unit per
    /// cluster).
    pub fn clustered_latencies<I: IntoIterator<Item = u32>>(mut self, latencies: I) -> Self {
        self.machines
            .extend(latencies.into_iter().map(|lat| Machine::clustered(lat, 1)));
        self
    }

    /// Adds the unified `PxLy` machines of Table 1 for `(x, latency)`
    /// pairs.
    pub fn pxly_configs<I: IntoIterator<Item = (u32, u32)>>(mut self, configs: I) -> Self {
        self.machines
            .extend(configs.into_iter().map(|(x, lat)| Machine::pxly(x, lat)));
        self
    }

    /// Replaces the model set (default: the paper's four, in presentation
    /// order). Accepts [`ModelId`]s and legacy [`Model`] variants alike —
    /// any registered model drops into the same grid machinery.
    pub fn models<I>(mut self, models: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ModelId>,
    {
        self.models = models.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the register-count sample points for distribution curves.
    pub fn points<I: IntoIterator<Item = u32>>(mut self, points: I) -> Self {
        self.points = points.into_iter().collect();
        self
    }

    /// Adds one register budget for spill evaluation.
    pub fn budget(mut self, budget: u32) -> Self {
        self.budgets.push(budget);
        self
    }

    /// Adds register budgets for spill evaluation.
    pub fn budgets<I: IntoIterator<Item = u32>>(mut self, budgets: I) -> Self {
        self.budgets.extend(budgets);
        self
    }

    /// Replaces the budget set wholesale ([`Sweep::budget`] and
    /// [`Sweep::budgets`] *append*). For callers that start from a
    /// preset grid and need to override — not extend — its ladder, e.g.
    /// a farm job resubmitted with new budgets.
    pub fn replace_budgets<I: IntoIterator<Item = u32>>(mut self, budgets: I) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Replaces the pipeline options.
    pub fn options(mut self, opts: PipelineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the executor's worker count (default: hardware
    /// parallelism). Results are bit-identical for any worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Runs this sweep on a shared, persistent [`Pool`] instead of a
    /// pool created (and torn down) per `run`/`shard` call. A process
    /// executing several sweeps — a budget ladder, one grid per figure,
    /// a repeated bench — passes one `Arc<Pool>` to all of them and
    /// reuses the same parked worker threads throughout. Takes
    /// precedence over [`Sweep::workers`]; results are bit-identical
    /// either way.
    pub fn pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Persist each cell's spill-trajectory checkpoints (victim
    /// choices, served requirements — not the rewritten loops) into the
    /// shard artifacts this sweep produces, so a later
    /// [`Sweep::reissue`] — possibly at smaller budgets — resumes the
    /// recorded descents across processes instead of respilling from
    /// zero. Off by default: artifacts stay minimal, and a heal of a
    /// trajectory-free artifact re-evaluates cells exactly as an
    /// unfaulted run would (which is what keeps healed merges
    /// byte-identical to the sequential reference, counters included).
    pub fn persist_trajectories(mut self, persist: bool) -> Self {
        self.persist = persist;
        self
    }

    /// Certifies every cell this sweep evaluates: each [`Session`] the
    /// sweep constructs — shared grid sessions and per-cell shard
    /// sessions alike — runs with [`Session::certify`] set, so every
    /// analysis, evaluation and replayed spill checkpoint is re-verified
    /// from first principles before it contributes to a report or shard
    /// artifact. A violation surfaces as a per-cell
    /// [`crate::PipelineStage::Certify`] error through the usual
    /// fault-tolerance channels.
    pub fn certify(mut self, certifier: Arc<dyn CellCertifier>) -> Self {
        self.certifier = Some(certifier);
        self
    }

    /// One session over `machine` with this sweep's options and (when
    /// set) certifier — the single construction point every run mode
    /// shares, so certify mode cannot silently miss a path.
    fn session_for(&self, machine: Machine) -> Session {
        let session = Session::new(machine).options(self.opts);
        match &self.certifier {
            Some(c) => session.certify(Arc::clone(c)),
            None => session,
        }
    }

    /// The pool this sweep's grids run on: the shared one when set,
    /// otherwise a fresh per-call pool honouring [`Sweep::workers`].
    fn executor(&self) -> Arc<Pool> {
        match &self.pool {
            Some(pool) => Arc::clone(pool),
            None => Arc::new(match self.workers {
                Some(w) => Pool::with_workers(w),
                None => Pool::new(),
            }),
        }
    }

    /// Rejects configurations that can only produce a silently-empty
    /// report: no machines, no models, or no workload (neither points
    /// nor budgets).
    fn validate(&self) -> Result<(), PipelineError> {
        if self.machines.is_empty() {
            return Err(PipelineError::config(ConfigError::EmptyMachineGrid));
        }
        if self.models.is_empty() {
            return Err(PipelineError::config(ConfigError::EmptyModelSet));
        }
        if self.points.is_empty() && self.budgets.is_empty() {
            return Err(PipelineError::config(ConfigError::EmptyWorkload));
        }
        Ok(())
    }

    /// Runs the flattened `(machine, loop)` grid on one work-stealing
    /// pool. Returns one session per machine plus, per machine, the
    /// per-loop cell results in corpus order (worker panics already
    /// converted to failures naming the loop).
    ///
    /// With `fail_fast`, the first failing cell cancels all tasks that
    /// have not started yet (they report [`CellFailure::Cancelled`]), so
    /// an all-or-nothing caller doesn't pay for the rest of a grid it is
    /// about to discard.
    #[allow(clippy::type_complexity)]
    fn run_grid(&self, fail_fast: bool) -> (Vec<Session>, Vec<Vec<Result<LoopCell, CellFailure>>>) {
        let sessions: Vec<Session> = self
            .machines
            .iter()
            .map(|m| self.session_for(m.clone()))
            .collect();
        let loops = self.corpus.loops();
        let n = loops.len();
        let mut per_machine: Vec<Vec<Result<LoopCell, CellFailure>>> =
            sessions.iter().map(|_| Vec::with_capacity(n)).collect();
        if n == 0 {
            return (sessions, per_machine);
        }
        let pool = self.executor();
        let want_points = !self.points.is_empty();
        let cancelled = AtomicBool::new(false);
        let raw = pool.run(sessions.len() * n, |t| {
            if fail_fast && cancelled.load(Ordering::Relaxed) {
                return Err(CellFailure::Cancelled);
            }
            let (mi, li) = (t / n, t % n);
            // Catch panics locally (before the pool's own isolation) so
            // a panicking cell triggers cancellation exactly like an
            // erroring one; the payload is re-raised for the pool to
            // record as the cell's `TaskPanic`.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eval_cell(
                    &sessions[mi],
                    &loops[li],
                    &self.models,
                    &self.budgets,
                    want_points,
                )
            }));
            if fail_fast && !matches!(outcome, Ok(Ok(_))) {
                cancelled.store(true, Ordering::Relaxed);
            }
            match outcome {
                Ok(cell) => cell.map_err(CellFailure::Error),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        for (t, r) in raw.into_iter().enumerate() {
            let (mi, li) = (t / n, t % n);
            per_machine[mi].push(match r {
                Ok(cell) => cell,
                Err(p) => Err(CellFailure::Error(PipelineError::panic(
                    loops[li].name(),
                    p.message,
                ))),
            });
        }
        (sessions, per_machine)
    }

    /// Runs the sweep on the work-stealing executor: one [`Session`] per
    /// machine, every `(machine, loop)` pair as an independent task. A
    /// failing pair cancels the tasks that have not started yet — the
    /// all-or-nothing contract doesn't pay for a grid it is about to
    /// discard.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an empty machine grid, model set or
    /// workload, otherwise a per-loop failure naming the loop (see
    /// [`PipelineError::loop_name`]) — the grid-order (machine-major,
    /// corpus-order) first among the pairs that ran. For a report that
    /// survives individual failures, use [`Sweep::run_partial`].
    pub fn run(&self) -> Result<SweepReport, PipelineError> {
        self.validate()?;
        let (sessions, per_machine) = self.run_grid(true);
        let mut machine_cells = Vec::with_capacity(sessions.len());
        for cells in per_machine {
            let mut ok = Vec::with_capacity(cells.len());
            for cell in cells {
                match cell {
                    Ok(c) => ok.push(c),
                    Err(CellFailure::Error(e)) => return Err(e),
                    // A cancelled cell implies a real error later in the
                    // grid scan; keep looking for it.
                    Err(CellFailure::Cancelled) => {}
                }
            }
            machine_cells.push(ok);
        }
        let mut report = SweepReport::default();
        for (session, cells) in sessions.iter().zip(&machine_cells) {
            self.assemble_machine(&mut report, session, cells);
        }
        Ok(report)
    }

    /// Runs the sweep fault-tolerantly: every `(machine, loop)` pair that
    /// succeeds contributes to the report, and every failure is returned
    /// by name instead of discarding the rest of the grid. A machine's
    /// aggregates (curves, outcomes) are computed over its surviving
    /// loops; a machine whose **every** loop failed contributes no
    /// aggregates at all (all-zero curves and vacuously-ideal outcomes
    /// would misreport a dead machine as perfect).
    ///
    /// Configuration errors (empty machine grid / model set / workload)
    /// surface in the error list with an empty report.
    pub fn run_partial(&self) -> PartialSweep {
        if let Err(e) = self.validate() {
            return PartialSweep {
                report: SweepReport::default(),
                errors: vec![e],
            };
        }
        let (sessions, per_machine) = self.run_grid(false);
        let mut report = SweepReport::default();
        let mut errors = Vec::new();
        for (session, cells) in sessions.iter().zip(per_machine) {
            let mut ok = Vec::with_capacity(cells.len());
            for cell in cells {
                match cell {
                    Ok(c) => ok.push(c),
                    Err(CellFailure::Error(e)) => errors.push(e),
                    Err(CellFailure::Cancelled) => {
                        unreachable!("run_partial never cancels cells")
                    }
                }
            }
            self.assemble_machine(&mut report, session, &ok);
        }
        PartialSweep { report, errors }
    }

    /// Reference implementation: the same grid evaluated strictly
    /// sequentially on the calling thread (machine-major, corpus order).
    /// [`Sweep::run`] is bit-identical to this for every worker count;
    /// the `sweep_parallel` bench and stress test assert it.
    ///
    /// # Errors
    ///
    /// Exactly as [`Sweep::run`].
    pub fn run_sequential(&self) -> Result<SweepReport, PipelineError> {
        self.validate()?;
        let want_points = !self.points.is_empty();
        let mut report = SweepReport::default();
        for machine in &self.machines {
            let session = self.session_for(machine.clone());
            let mut cells = Vec::with_capacity(self.corpus.len());
            for l in self.corpus.iter() {
                cells.push(eval_cell(
                    &session,
                    l,
                    &self.models,
                    &self.budgets,
                    want_points,
                )?);
            }
            self.assemble_machine(&mut report, &session, &cells);
        }
        Ok(report)
    }

    /// Runs shard `index` of `count` of the flattened `(machine, loop)`
    /// task grid and returns its raw, serializable results.
    ///
    /// The grid is split round-robin ([`shard_tasks`]): cell `t` (machine
    /// `t / loops`, loop `t % loops`, machine-major) belongs to shard
    /// `t % count`, so for every `i in 0..count` the shards partition the
    /// grid exactly — no overlap, no gaps — and machines and loops spread
    /// evenly across shards. Each shard is fault-tolerant like
    /// [`Sweep::run_partial`]: a failing pair becomes a per-cell error,
    /// not a dead shard.
    ///
    /// Shards carry **raw per-cell results** (all-integer payloads), not
    /// aggregated curves: [`crate::SweepShard::merge`] reassembles them
    /// through the exact assembly code of [`Sweep::run_sequential`], so
    /// the merged report is bit-identical to an unsharded run — including
    /// after a JSON round trip through [`crate::Render`] and
    /// [`crate::parse_sweep_shard`].
    ///
    /// # Errors
    ///
    /// The usual grid [`ConfigError`]s, plus
    /// [`ConfigError::InvalidShard`] when `count` is zero or `index` is
    /// not below `count`.
    pub fn shard(&self, index: u32, count: u32) -> Result<crate::SweepShard, PipelineError> {
        self.shard_with_faults(index, count, &[])
    }

    /// [`Sweep::shard`] with **fault injection**: the cells whose
    /// flattened task indices appear in `faults` are not evaluated at
    /// all — they are recorded as failed (a contained "injected fault"
    /// panic) with zeroed cache counters, exactly as if their worker had
    /// crashed before starting. Task indices outside this shard's slice
    /// (including outside the grid) are ignored, so one fault list can
    /// be passed to every runner of a matrix.
    ///
    /// This is the deliberate-failure half of the heal pipeline: CI (and
    /// `tests/failure_injection.rs`) injects per-cell failures here,
    /// heals them via [`Sweep::reissue`] + [`crate::SweepShard::merge`],
    /// and asserts the healed report is byte-identical to
    /// [`Sweep::run_sequential`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Sweep::shard`].
    pub fn shard_with_faults(
        &self,
        index: u32,
        count: u32,
        faults: &[u64],
    ) -> Result<crate::SweepShard, PipelineError> {
        self.validate()?;
        if count == 0 || index >= count {
            return Err(PipelineError::config(ConfigError::InvalidShard {
                index,
                count,
            }));
        }
        let total = self.machines.len() * self.corpus.len();
        let tasks: Vec<u64> = shard_tasks(total, index, count).map(|t| t as u64).collect();
        let faults: HashSet<u64> = faults.iter().copied().collect();
        let cells = self.run_cells(&tasks, &faults, &HashMap::new());
        let mut scheduling = CacheStats::default();
        for c in &cells {
            scheduling.absorb(c.scheduling);
        }
        Ok(crate::SweepShard::assemble_parts(
            self.signature(),
            index,
            count,
            ShardRole::Shard,
            scheduling,
            cells,
        ))
    }

    /// Re-runs exactly the given grid cells — the failed/missing set a
    /// prior merge reported (see [`crate::SweepShard::unresolved`]) —
    /// and returns them as a **heal artifact**
    /// ([`crate::ShardRole::Heal`]) that
    /// [`crate::SweepShard::merge`] accepts as a complement of the
    /// faulted shard set: its cells fill the gaps and supersede the
    /// failures, and the healed merge is byte-identical to a run that
    /// never failed.
    ///
    /// Cells run on the sweep's executor ([`Sweep::pool`] when set, so
    /// a scheduler healing many grids reuses one pool). When the `seeds`
    /// artifacts carry persisted trajectories for a reissued cell
    /// (see [`Sweep::persist_trajectories`]), they are imported into the
    /// cell's session first: budgets a recorded checkpoint serves cost
    /// nothing, and deeper budgets *resume* the recorded descent — this
    /// is what makes a reissue of a previously-evaluated grid at
    /// **smaller budgets** cheaper than re-spilling from scratch
    /// (visible as `traj_resumes > 0` and fewer `spill_steps` in the
    /// heal artifact's counters). Seeds must cover the same corpus,
    /// machines and options ([`crate::GridSignature::resumes`]); their
    /// points, budgets and model sets are free to differ, because spill
    /// descents are budget-independent.
    ///
    /// # Errors
    ///
    /// The usual grid [`ConfigError`]s, plus
    /// [`ConfigError::UnknownCell`] when `missing` names a cell outside
    /// this grid and [`ConfigError::IncompatibleShards`] when a seed
    /// artifact is not resume-compatible.
    pub fn reissue(
        &self,
        missing: &[u64],
        seeds: &[crate::SweepShard],
    ) -> Result<crate::SweepShard, PipelineError> {
        self.issue_cells(missing, &[], seeds)
    }

    /// [`Sweep::reissue`] generalized to arbitrary cell issues with
    /// **fault injection**: evaluates exactly the cells in `tasks` and
    /// returns them as a heal artifact, recording the cells whose
    /// indices also appear in `faults` as failed without evaluating
    /// them (as [`Sweep::shard_with_faults`] does for a primary shard;
    /// fault indices outside `tasks` are ignored). This is the farm
    /// daemon's worker entry point — a lease is an arbitrary task list,
    /// not an `i/n` round-robin slice, and the daemon injects faults
    /// only on a job's *initial* issue so its heal cadence has
    /// something real to recover.
    ///
    /// Trajectory seeding and all guarantees are exactly as
    /// [`Sweep::reissue`]; `reissue(missing, seeds)` is
    /// `issue_cells(missing, &[], seeds)`.
    ///
    /// # Errors
    ///
    /// Exactly as [`Sweep::reissue`].
    pub fn issue_cells(
        &self,
        tasks: &[u64],
        faults: &[u64],
        seeds: &[crate::SweepShard],
    ) -> Result<crate::SweepShard, PipelineError> {
        self.validate()?;
        let signature = self.signature();
        for s in seeds {
            if !signature.resumes(s.signature()) {
                return Err(PipelineError::config(ConfigError::IncompatibleShards));
            }
        }
        let total = signature.total_tasks() as u64;
        let mut tasks: Vec<u64> = tasks.to_vec();
        tasks.sort_unstable();
        tasks.dedup();
        if let Some(&task) = tasks.iter().find(|&&t| t >= total) {
            return Err(PipelineError::config(ConfigError::UnknownCell { task }));
        }
        let faults: HashSet<u64> = faults
            .iter()
            .copied()
            .filter(|t| tasks.contains(t))
            .collect();
        // First seed naming a task wins (callers pass artifacts in
        // provenance order); a cell's own trajectories beat nothing.
        let mut imports: HashMap<u64, &Vec<CellTrajectory>> = HashMap::new();
        for s in seeds {
            for cell in &s.cells {
                if !cell.trajectories.is_empty() {
                    imports.entry(cell.task).or_insert(&cell.trajectories);
                }
            }
        }
        let cells = self.run_cells(&tasks, &faults, &imports);
        let mut scheduling = CacheStats::default();
        for c in &cells {
            scheduling.absorb(c.scheduling);
        }
        Ok(crate::SweepShard::assemble_parts(
            signature,
            0,
            0,
            ShardRole::Heal,
            scheduling,
            cells,
        ))
    }

    /// Evaluates the given grid cells on the executor, one [`Session`]
    /// per cell. Cache reuse is entirely per-cell (caches key on the
    /// cell's own loop), so per-cell sessions are bit-identical to the
    /// shared-session grid run *and* give each [`ShardCell`] its own
    /// honest counters — which is what lets a merge drop a superseded
    /// cell's work without arithmetic. Faulted cells are not evaluated
    /// (zeroed counters, injected-fault error); imported trajectories
    /// seed the cell's session before evaluation.
    fn run_cells(
        &self,
        tasks: &[u64],
        faults: &HashSet<u64>,
        imports: &HashMap<u64, &Vec<CellTrajectory>>,
    ) -> Vec<ShardCell> {
        let loops = self.corpus.loops();
        let n = loops.len();
        if tasks.is_empty() {
            return Vec::new();
        }
        let want_points = !self.points.is_empty();
        let pool = self.executor();
        type CellRun = (
            CacheStats,
            Result<LoopCell, PipelineError>,
            Vec<CellTrajectory>,
        );
        let raw = pool.run(tasks.len(), |k| -> CellRun {
            let t = tasks[k];
            let (mi, li) = (t as usize / n, t as usize % n);
            let l = &loops[li];
            if faults.contains(&t) {
                let err = PipelineError::panic(l.name(), "injected fault");
                return (CacheStats::default(), Err(err), Vec::new());
            }
            let session = self.session_for(self.machines[mi].clone());
            if let Some(trajectories) = imports.get(&t) {
                session.import_trajectories(trajectories.iter().map(|ct| TrajectoryExport {
                    loop_name: l.name().to_owned(),
                    model: ct.model,
                    snapshot: ct.snapshot.clone(),
                }));
            }
            let outcome = eval_cell(&session, l, &self.models, &self.budgets, want_points);
            let trajectories = if self.persist {
                session
                    .export_trajectories()
                    .into_iter()
                    .map(|t| CellTrajectory {
                        model: t.model,
                        snapshot: t.snapshot,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            (session.cache_stats(), outcome, trajectories)
        });
        raw.into_iter()
            .zip(tasks)
            .map(|(r, &t)| {
                let loop_name = loops[t as usize % n].name().to_owned();
                match r {
                    Ok((scheduling, outcome, trajectories)) => ShardCell {
                        task: t,
                        loop_name,
                        scheduling,
                        outcome,
                        trajectories,
                    },
                    // A panicked cell's session unwound with its
                    // counters: the cell reports the contained panic and
                    // no work, like a crashed runner.
                    Err(p) => ShardCell {
                        task: t,
                        loop_name: loop_name.clone(),
                        scheduling: CacheStats::default(),
                        outcome: Err(PipelineError::panic(&loop_name, p.message)),
                        trajectories: Vec::new(),
                    },
                }
            })
            .collect()
    }

    /// The grid signature shards carry so a merge can prove they came
    /// from the same sweep. Public so a scheduler (the farm daemon) can
    /// identify, cache and lease a grid without evaluating any of it.
    pub fn signature(&self) -> crate::GridSignature {
        crate::GridSignature {
            corpus: self.corpus.name().to_owned(),
            loops: self.corpus.iter().map(|l| l.name().to_owned()).collect(),
            machines: self
                .machines
                .iter()
                .map(|m| crate::MachineSig {
                    name: m.name().to_owned(),
                    latency: fp_latency(m),
                    ports: m.memory_ports() as u32,
                })
                .collect(),
            models: self.models.clone(),
            points: self.points.clone(),
            budgets: self.budgets.clone(),
            options: format!("{:?}", self.opts),
        }
    }

    /// Folds one machine's surviving cells (in corpus order) into the
    /// report and accumulates the session's cache counters.
    fn assemble_machine(&self, report: &mut SweepReport, session: &Session, cells: &[LoopCell]) {
        let machine = session.machine();
        assemble_cells(
            report,
            machine.name(),
            fp_latency(machine),
            machine.memory_ports() as u32,
            &self.models,
            &self.points,
            &self.budgets,
            cells,
            self.corpus.is_empty(),
        );
        report.scheduling.absorb(session.cache_stats());
    }
}

/// Folds one machine's surviving cells (in corpus order) into a report.
/// Shared verbatim by every assembly path — sequential, pooled and
/// shard-merge — so they cannot drift apart; the merged report of a
/// sharded run is bit-identical to [`Sweep::run_sequential`] because
/// every floating-point operation happens here, over the same values in
/// the same order.
///
/// A machine left with zero surviving cells by a non-empty corpus (i.e.
/// every pair failed) gets no curves or outcomes. An empty corpus still
/// assembles its (empty) aggregates, matching the sequential reference.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_cells(
    report: &mut SweepReport,
    config: &str,
    latency: u32,
    ports: u32,
    models: &[ModelId],
    points: &[u32],
    budgets: &[u32],
    cells: &[LoopCell],
    corpus_is_empty: bool,
) {
    let machine_is_dead = cells.is_empty() && !corpus_is_empty;
    if machine_is_dead {
        return;
    }
    if !points.is_empty() {
        for (mi, &model) in models.iter().enumerate() {
            let rows: Vec<&LoopAnalysis> = cells.iter().map(|c| &c.analyses[mi]).collect();
            report
                .distributions
                .push(curve_from_rows(config, model, latency, points, &rows));
        }
    }
    let ports = ports as u128;
    for (bi, &budget) in budgets.iter().enumerate() {
        let ideal_cycles: u128 = cells.iter().map(|c| c.evals[bi].ideal.cycles()).sum();
        for (mi, &model) in models.iter().enumerate() {
            let rows = || cells.iter().map(|c| &c.evals[bi].rows[mi]);
            let cycles: u128 = rows().map(|r| r.cycles()).sum();
            let accesses: u128 = rows().map(|r| r.accesses()).sum();
            let loops_spilled = rows().filter(|r| r.spilled > 0).count();
            report.outcomes.push(BudgetOutcome {
                config: config.to_owned(),
                model,
                latency,
                registers: budget,
                cycles,
                accesses,
                relative_performance: relative_performance(ideal_cycles, cycles),
                traffic_density: if cycles == 0 {
                    0.0
                } else {
                    accesses as f64 / (cycles * ports) as f64
                },
                loops_spilled,
            });
        }
    }
}

/// Certifies a shard artifact offline: rebuilds the grid its signature
/// names, re-evaluates every **healthy** cell under a certify-mode
/// [`Session`] (the certifier re-verifies every schedule, requirement
/// and spill rewrite from first principles), and compares the fresh
/// result against the artifact's claimed payload. Failed cells carry no
/// claims and are skipped — [`crate::SweepShard::unresolved`] already
/// reports them.
///
/// When the artifact persisted spill trajectories for a cell, they are
/// imported first, so the recorded checkpoints are what gets replayed
/// and certified — exactly the bytes a heal or reissue would trust.
///
/// Returns one [`CellFault`] per cell whose re-evaluation was rejected
/// by the certifier, failed outright, or produced a different payload
/// than the artifact claims. An empty vector means every healthy cell
/// certified clean.
///
/// # Errors
///
/// [`ArtifactError::Grid`] when the signature names a corpus or machine
/// this build cannot reconstruct.
pub fn certify_shard(
    shard: &crate::SweepShard,
    certifier: Arc<dyn CellCertifier>,
) -> Result<Vec<CellFault>, ArtifactError> {
    let sig = shard.signature();
    let (corpus, machines) = crate::rebuild_grid(sig)?;
    let loops = corpus.loops();
    let n = loops.len();
    let want_points = !sig.points.is_empty();
    let mut faults = Vec::new();
    let mut fault = |cell: &ShardCell, machine: &str, detail: String| {
        faults.push(CellFault {
            task: cell.task,
            loop_name: cell.loop_name.clone(),
            machine: machine.to_owned(),
            detail,
        });
    };
    for cell in &shard.cells {
        let Ok(claimed) = &cell.outcome else {
            continue;
        };
        let t = cell.task as usize;
        let (mi, li) = (t / n.max(1), t % n.max(1));
        if n == 0 || mi >= machines.len() {
            fault(
                cell,
                "?",
                "task index outside the signature's grid".to_owned(),
            );
            continue;
        }
        let l = &loops[li];
        let machine = &machines[mi];
        if cell.loop_name != l.name() {
            fault(
                cell,
                machine.name(),
                format!(
                    "artifact names loop `{}` but task {} is loop `{}`",
                    cell.loop_name,
                    cell.task,
                    l.name()
                ),
            );
            continue;
        }
        let session = Session::new(machine.clone()).certify(Arc::clone(&certifier));
        if !cell.trajectories.is_empty() {
            session.import_trajectories(cell.trajectories.iter().map(|ct| TrajectoryExport {
                loop_name: l.name().to_owned(),
                model: ct.model,
                snapshot: ct.snapshot.clone(),
            }));
        }
        match eval_cell(&session, l, &sig.models, &sig.budgets, want_points) {
            Err(e) => fault(cell, machine.name(), e.to_string()),
            Ok(fresh) if &fresh != claimed => fault(
                cell,
                machine.name(),
                "certified re-evaluation disagrees with the artifact's payload".to_owned(),
            ),
            Ok(_) => {}
        }
    }
    Ok(faults)
}

/// The task indices of shard `index` of `count` over a `total`-cell
/// grid: every `t in 0..total` with `t % count == index`, ascending.
///
/// For any `count >= 1` the shards `0..count` partition `0..total`
/// exactly (each task in exactly one shard) — property-tested in
/// `tests/proptest_shard.rs`.
///
/// # Panics
///
/// Panics if `count` is zero (there is no empty partition of a non-empty
/// grid).
pub fn shard_tasks(total: usize, index: u32, count: u32) -> impl Iterator<Item = usize> {
    assert!(count > 0, "shard count must be positive");
    (index as usize..total).step_by(count as usize)
}

/// Why a grid cell produced no [`LoopCell`].
#[derive(Debug, Clone)]
enum CellFailure {
    /// The pipeline failed (or a worker panicked) on this pair.
    Error(PipelineError),
    /// The cell never ran: a fail-fast run already hit an error
    /// elsewhere in the grid.
    Cancelled,
}

/// One `(machine, loop)` cell of the flattened grid: everything the sweep
/// needs from that pair, for every requested model and budget. This is
/// the unit a [`crate::SweepShard`] serializes — all-integer payloads, so
/// a JSON round trip is exact and merged reports reassemble
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoopCell {
    /// One analysis per model (empty when no sample points were set).
    pub(crate) analyses: Vec<LoopAnalysis>,
    /// One entry per budget.
    pub(crate) evals: Vec<BudgetCell>,
}

/// One budget's evaluations of a single loop.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BudgetCell {
    /// The [`ModelId::IDEAL`] anchor evaluation (always computed, so
    /// relative performance stays anchored even when the model set omits
    /// the ideal model).
    pub(crate) ideal: LoopEval,
    /// One evaluation per model, in model-set order.
    pub(crate) rows: Vec<LoopEval>,
}

/// The order a cell evaluates its budgets in: **descending by value**
/// (ties in request order). Since a trajectory extended for a small
/// budget answers every larger budget from its checkpoints, descending
/// order makes each `(loop, model)`'s spill descent strictly
/// incremental: every budget after a pair's first either *hits* the
/// cached trajectory or *resumes* it, and no spill step is ever
/// recomputed. Report order is untouched — results are emitted in
/// request order — and so is sharding (a cell's budgets always execute
/// together on one worker, because the task grid is `(machine, loop)`).
fn descending_budget_order(budgets: &[u32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..budgets.len()).collect();
    order.sort_by(|&a, &b| budgets[b].cmp(&budgets[a]).then(a.cmp(&b)));
    order
}

/// Evaluates one `(machine, loop)` pair: all model analyses (when the
/// sweep samples distribution points) and all `(budget, model)`
/// evaluations, sharing the session's schedule and spill-trajectory
/// caches. Budgets are *evaluated* in descending order (see
/// [`descending_budget_order`]) and *reported* in request order.
fn eval_cell(
    session: &Session,
    l: &Loop,
    models: &[ModelId],
    budgets: &[u32],
    want_points: bool,
) -> Result<LoopCell, PipelineError> {
    let analyses = if want_points {
        models
            .iter()
            .map(|&m| session.analyze(l, m))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        Vec::new()
    };
    let mut evals: Vec<Option<BudgetCell>> = budgets.iter().map(|_| None).collect();
    for bi in descending_budget_order(budgets) {
        let budget = budgets[bi];
        let ideal = session.evaluate(l, ModelId::IDEAL, budget)?;
        let rows = models
            .iter()
            .map(|&m| {
                if m == ModelId::IDEAL {
                    Ok(ideal.clone())
                } else {
                    session.evaluate(l, m, budget)
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        evals[bi] = Some(BudgetCell { ideal, rows });
    }
    let evals = evals
        .into_iter()
        .map(|cell| cell.expect("every budget index evaluated"))
        .collect();
    Ok(LoopCell { analyses, evals })
}

/// Result of [`Sweep::run_partial`]: the report over every surviving
/// `(machine, loop)` pair, plus one error per failed pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialSweep {
    /// Aggregates over the pairs that succeeded.
    pub report: SweepReport,
    /// One error per failed pair (or a single configuration error), in
    /// grid (machine-major, corpus) order.
    pub errors: Vec<PipelineError>,
}

impl PartialSweep {
    /// Whether every `(machine, loop)` pair succeeded.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// Converts to the all-or-nothing contract of [`Sweep::run`]: the
    /// report if complete, otherwise the first error.
    ///
    /// # Errors
    ///
    /// The first recorded failure.
    pub fn into_result(self) -> Result<SweepReport, PipelineError> {
        match self.errors.into_iter().next() {
            None => Ok(self.report),
            Some(e) => Err(e),
        }
    }

    /// Order-stable merge of partial sweeps over **disjoint grids** (for
    /// example one sweep per machine family, split across CI jobs):
    /// reports merge as [`SweepReport::merge`] and the error lists
    /// concatenate in argument order.
    ///
    /// Every input's errors and cache counters are carried over exactly
    /// once — a machine whose failures appear in several inputs keeps one
    /// error per failed *pair*, and its `CacheStats` are summed, not
    /// overwritten or repeated.
    ///
    /// This does **not** re-aggregate rows: inputs whose grids overlap
    /// (the same machine's curves in two inputs) are simply concatenated.
    /// To reassemble one sweep from loop-level shards — which requires
    /// re-aggregation — use [`Sweep::shard`] and
    /// [`crate::SweepShard::merge`]; merging shards of one machine
    /// through this method would double-count that machine, which is why
    /// shards carry raw cells instead of reports.
    pub fn merge<I: IntoIterator<Item = PartialSweep>>(parts: I) -> PartialSweep {
        let mut out = PartialSweep::default();
        for p in parts {
            out.report = SweepReport::merge([std::mem::take(&mut out.report), p.report]);
            out.errors.extend(p.errors);
        }
        out
    }
}

/// Typed result of [`Sweep::run`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepReport {
    /// One curve per `(machine, model)` when sample points were set, in
    /// machine-major order.
    pub distributions: Vec<DistributionCurve>,
    /// One outcome per `(machine, budget, model)` when budgets were set,
    /// in machine-major, budget-middle order.
    pub outcomes: Vec<BudgetOutcome>,
    /// Aggregated schedule-cache counters over all sessions: `misses` is
    /// the number of scheduling runs, `hits` the number the cache saved.
    pub scheduling: CacheStats,
}

impl SweepReport {
    /// Order-stable merge of reports over **disjoint grids**: the curve
    /// and outcome series concatenate in argument order (so two sweeps
    /// over different machine sets merge into one machine-major report)
    /// and the schedule-cache counters sum.
    ///
    /// Merging is associative — `merge([merge([a, b]), c])`,
    /// `merge([a, merge([b, c])])` and `merge([a, b, c])` are
    /// bit-identical (concatenation and `u64` addition both are) — which
    /// is property-tested in `tests/proptest_shard.rs`. Like
    /// [`PartialSweep::merge`], this concatenates rather than
    /// re-aggregates; loop-level shards of a *single* grid merge through
    /// [`crate::SweepShard::merge`] instead.
    pub fn merge<I: IntoIterator<Item = SweepReport>>(reports: I) -> SweepReport {
        let mut out = SweepReport::default();
        for r in reports {
            out.distributions.extend(r.distributions);
            out.outcomes.extend(r.outcomes);
            out.scheduling.absorb(r.scheduling);
        }
        out
    }

    /// Derives Table 1 rows (allocatable percentages at the
    /// [`TABLE1_POINTS`] register counts) from every distribution curve
    /// that sampled all three Table 1 points.
    ///
    /// Both the curve filter and the sampled columns derive from
    /// [`TABLE1_POINTS`], so the two can never disagree about which
    /// register counts Table 1 reports.
    pub fn table1(&self) -> Vec<Table1Row> {
        self.distributions
            .iter()
            .filter(|c| {
                TABLE1_POINTS
                    .iter()
                    .all(|p| c.static_dist.points.contains(p))
            })
            .map(|c| Table1Row {
                config: c.config.clone(),
                loops_within: TABLE1_POINTS.map(|p| c.static_dist.at(p)),
                cycles_within: TABLE1_POINTS.map(|p| c.dynamic_dist.at(p)),
            })
            .collect()
    }

    /// The distribution curves of one machine configuration.
    pub fn curves_for(&self, config: &str) -> Vec<&DistributionCurve> {
        self.distributions
            .iter()
            .filter(|c| c.config == config)
            .collect()
    }

    /// The budget outcomes of one machine configuration and budget.
    pub fn outcomes_for(&self, config: &str, budget: u32) -> Vec<&BudgetOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.config == config && o.registers == budget)
            .collect()
    }
}

/// The floating-point-unit latency of a machine (its slowest group; the
/// memory ports have latency 1 in every preset).
pub(crate) fn fp_latency(machine: &Machine) -> u32 {
    machine
        .groups()
        .iter()
        .map(|g| g.latency)
        .max()
        .unwrap_or(0)
}

/// Builds one distribution curve from per-loop analyses (corpus order).
fn curve_from_rows(
    config: &str,
    model: ModelId,
    latency: u32,
    points: &[u32],
    rows: &[&LoopAnalysis],
) -> DistributionCurve {
    let static_obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            regs: r.regs,
            weight: 1.0,
        })
        .collect();
    let dyn_obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            regs: r.regs,
            weight: r.cycles() as f64,
        })
        .collect();
    DistributionCurve {
        config: config.to_owned(),
        model,
        latency,
        static_dist: Cumulative::new(points, &static_obs),
        dynamic_dist: Cumulative::new(points, &dyn_obs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        Corpus::small().take(10)
    }

    /// Pins the certify wiring itself: a certify-mode sweep must invoke
    /// the certifier for every produced cell (a silently-dropped hook
    /// would make certify mode a no-op), and a rejecting certifier must
    /// refuse the run. The real validator's behaviour is covered by
    /// `ncdrf-certify` and `tests/certify_mutations.rs`; this guards the
    /// plumbing with stub certifiers.
    #[test]
    fn certify_mode_invokes_the_certifier_on_every_path() {
        use crate::certify::CertifyViolation;
        use ncdrf_ddg::Loop;
        use ncdrf_sched::Schedule;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Debug, Default)]
        struct Stub {
            calls: AtomicUsize,
            reject: bool,
        }
        impl CellCertifier for Stub {
            fn certify_analysis(
                &self,
                _: &Loop,
                _: &Machine,
                _: &Schedule,
                _: &crate::LoopAnalysis,
            ) -> Result<(), CertifyViolation> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if self.reject {
                    return Err(CertifyViolation::new("stub", "rejects everything"));
                }
                Ok(())
            }
            #[allow(clippy::too_many_arguments)]
            fn certify_eval(
                &self,
                _: &Loop,
                _: &Machine,
                _: &Loop,
                _: &Schedule,
                _: &[String],
                _: usize,
                _: usize,
                _: &crate::LoopEval,
            ) -> Result<(), CertifyViolation> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if self.reject {
                    return Err(CertifyViolation::new("stub", "rejects everything"));
                }
                Ok(())
            }
            fn certify_checkpoint(
                &self,
                _: usize,
                _: &Loop,
                _: &Machine,
                _: &Schedule,
                _: crate::ModelId,
                _: u32,
            ) -> Result<(), CertifyViolation> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if self.reject {
                    return Err(CertifyViolation::new("stub", "rejects everything"));
                }
                Ok(())
            }
        }

        let corpus = tiny();
        let recipe = |certifier: Arc<dyn CellCertifier>| {
            Sweep::new(&corpus)
                .clustered_latencies([3])
                .models(Model::finite())
                .points([16, 32])
                .budgets([16])
                .certify(certifier)
        };

        let counting = Arc::new(Stub::default());
        let sweep = recipe(Arc::clone(&counting) as Arc<dyn CellCertifier>);
        sweep.run().expect("an accepting certifier changes nothing");
        let parallel_calls = counting.calls.swap(0, Ordering::SeqCst);
        assert!(parallel_calls > 0, "run() never invoked the certifier");
        sweep
            .run_sequential()
            .expect("an accepting certifier changes nothing");
        assert_eq!(
            counting.calls.load(Ordering::SeqCst),
            parallel_calls,
            "run_sequential certifies the same cells as run"
        );

        let rejecting = recipe(Arc::new(Stub {
            calls: AtomicUsize::new(0),
            reject: true,
        }));
        let err = rejecting
            .run_sequential()
            .expect_err("a rejecting certifier refuses the sweep");
        assert!(
            err.to_string().contains("certification failed"),
            "unexpected refusal: {err}"
        );
    }

    #[test]
    fn grid_sweep_produces_machine_major_results() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .clustered_latencies([3, 6])
            .models(Model::finite())
            .points([16, 32])
            .run()
            .unwrap();
        assert_eq!(report.distributions.len(), 6);
        assert_eq!(report.distributions[0].config, "C2L3");
        assert_eq!(report.distributions[3].config, "C2L6");
        assert_eq!(report.distributions[0].latency, 3);
        assert_eq!(report.distributions[3].latency, 6);
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn sweep_schedules_once_per_loop_machine_pair() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(3, 1))
            .models(Model::all())
            .points([16, 32, 64])
            .budgets([32, 64])
            .run()
            .unwrap();
        // 4 models analysed + ideal anchor + (4 models × 2 budgets)
        // evaluated, all on ONE scheduling run per loop.
        assert_eq!(report.scheduling.misses, corpus.len() as u64);
        assert!(report.scheduling.hits > 0);
        assert_eq!(report.outcomes.len(), 8);
    }

    #[test]
    fn table1_rows_derive_from_curves() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .pxly_configs([(1, 3), (2, 6)])
            .models([Model::Unified])
            .points(TABLE1_POINTS)
            .run()
            .unwrap();
        let rows = report.table1();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "P1L3");
        assert_eq!(rows[1].config, "P2L6");
        for r in &rows {
            assert!(r.loops_within[0] <= r.loops_within[1]);
            assert!(r.loops_within[1] <= r.loops_within[2]);
        }
    }

    #[test]
    fn budget_outcomes_keep_model_order_and_anchor_ideal() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(6, 1))
            .models([Model::Swapped, Model::Ideal])
            .budget(16)
            .run()
            .unwrap();
        assert_eq!(report.outcomes[0].model, Model::Swapped);
        assert_eq!(report.outcomes[1].model, Model::Ideal);
        assert_eq!(report.outcomes[1].relative_performance, 1.0);
        assert!(report.outcomes[0].relative_performance <= 1.0 + 1e-12);
    }

    #[test]
    fn relative_performance_anchored_without_ideal_in_model_set() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(6, 1))
            .models([Model::Unified])
            .budget(12)
            .run()
            .unwrap();
        let o = &report.outcomes[0];
        assert!(o.relative_performance > 0.0 && o.relative_performance <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_machine_grid_is_a_named_config_error() {
        let corpus = tiny();
        let err = Sweep::new(&corpus).budget(32).run().unwrap_err();
        assert!(err.is_config());
        assert_eq!(
            err.stage,
            crate::pipeline::PipelineStage::Config(crate::ConfigError::EmptyMachineGrid)
        );
        assert!(err.to_string().contains("no machines"), "{err}");
        // The fault-tolerant entry point reports the same error instead
        // of an empty report.
        let partial = Sweep::new(&corpus).budget(32).run_partial();
        assert_eq!(partial.errors, vec![err]);
        assert_eq!(partial.report, SweepReport::default());
    }

    #[test]
    fn empty_model_set_is_a_named_config_error() {
        let corpus = tiny();
        let err = Sweep::new(&corpus)
            .machine(Machine::clustered(3, 1))
            .models([] as [ModelId; 0])
            .points([16])
            .run()
            .unwrap_err();
        assert!(err.is_config());
        assert!(err.to_string().contains("no models"), "{err}");
    }

    #[test]
    fn empty_workload_is_a_named_config_error() {
        let corpus = tiny();
        let err = Sweep::new(&corpus)
            .machine(Machine::clustered(3, 1))
            .run()
            .unwrap_err();
        assert!(err.is_config());
        assert!(err.to_string().contains("no workload"), "{err}");
    }

    #[test]
    fn dead_machine_contributes_no_aggregates_in_partial_runs() {
        use ncdrf_corpus::kernels;
        use ncdrf_machine::{FuClass, FuGroup};
        // Every corpus loop needs a multiplier, so this machine fails all
        // of them; it must not appear as a vacuously-ideal row.
        let no_mul = Machine::new(
            "NOMUL",
            vec![
                FuGroup::unified(FuClass::Adder, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let corpus = Corpus::from_loops("mul-only", vec![kernels::blas::vscale()]);
        let partial = Sweep::new(&corpus)
            .machines([no_mul, Machine::clustered(3, 1)])
            .models([Model::Unified])
            .points([16])
            .budget(16)
            .run_partial();
        assert_eq!(partial.errors.len(), 1);
        assert_eq!(partial.errors[0].loop_name, "vscale");
        // Only the live machine's aggregates exist.
        assert_eq!(partial.report.distributions.len(), 1);
        assert_eq!(partial.report.distributions[0].config, "C2L3");
        assert_eq!(partial.report.outcomes.len(), 1);
        assert_eq!(partial.report.outcomes[0].config, "C2L3");
    }

    #[test]
    fn failing_run_cancels_remaining_grid_work() {
        use ncdrf_corpus::kernels;
        use ncdrf_machine::{FuClass, FuGroup};
        let no_mul = Machine::new(
            "NOMUL",
            vec![
                FuGroup::unified(FuClass::Adder, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        // `vscale` fails first; with one worker and fail-fast, the
        // remaining cells must be cancelled, not evaluated.
        let corpus = Corpus::from_loops(
            "fails-first",
            vec![
                kernels::blas::vscale(),
                kernels::blas::vadd(),
                kernels::blas::vsum(),
            ],
        );
        let sweep = Sweep::new(&corpus)
            .machine(no_mul)
            .models([Model::Unified])
            .budget(16)
            .workers(1);
        let (_sessions, per_machine) = sweep.run_grid(true);
        assert!(matches!(per_machine[0][0], Err(CellFailure::Error(_))));
        assert!(matches!(per_machine[0][1], Err(CellFailure::Cancelled)));
        assert!(matches!(per_machine[0][2], Err(CellFailure::Cancelled)));
        // And the public contract still surfaces the real error.
        assert_eq!(sweep.run().unwrap_err().loop_name, "vscale");
        // Without fail-fast the same grid evaluates everything.
        let partial = sweep.run_partial();
        assert_eq!(partial.errors.len(), 1);
        assert_eq!(partial.report.outcomes.len(), 1, "survivors aggregated");
    }

    #[test]
    fn table1_columns_derive_from_the_points_constant() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .pxly_configs([(1, 3)])
            .models([Model::Unified])
            .points(TABLE1_POINTS)
            .run()
            .unwrap();
        let rows = report.table1();
        assert_eq!(rows.len(), 1);
        let curve = &report.distributions[0];
        // Every reported column is the curve sampled at the matching
        // TABLE1_POINTS entry — the linkage the old hardcoded
        // at(16)/at(32)/at(64) could silently break.
        for (i, &p) in TABLE1_POINTS.iter().enumerate() {
            assert_eq!(rows[0].loops_within[i], curve.static_dist.at(p));
            assert_eq!(rows[0].cycles_within[i], curve.dynamic_dist.at(p));
        }
    }

    #[test]
    fn parallel_run_matches_sequential_reference() {
        let corpus = tiny();
        let sweep = Sweep::new(&corpus)
            .clustered_latencies([3, 6])
            .models(Model::all())
            .points([16, 32])
            .budgets([16, 48])
            .workers(4);
        let par = sweep.run().unwrap();
        let seq = sweep.run_sequential().unwrap();
        assert_eq!(par, seq, "executor must be bit-identical to sequential");
        assert_eq!(par.scheduling.misses, 2 * corpus.len() as u64);
    }

    #[test]
    fn run_partial_keeps_surviving_pairs_and_names_failures() {
        use ncdrf_corpus::kernels;
        use ncdrf_machine::{FuClass, FuGroup};
        // No multiplier: `vscale` (y = a*x) cannot schedule, the
        // mul-free loops can.
        let no_mul = Machine::new(
            "NOMUL",
            vec![
                FuGroup::unified(FuClass::Adder, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let corpus = Corpus::from_loops(
            "mixed",
            vec![
                kernels::blas::vadd(),
                kernels::blas::vscale(),
                kernels::blas::vsum(),
            ],
        );
        let sweep = Sweep::new(&corpus)
            .machines([no_mul, Machine::clustered(3, 1)])
            .models([Model::Unified])
            .points([16, 64])
            .budget(16);

        // The all-or-nothing contract aborts on the bad pair...
        let err = sweep.run().unwrap_err();
        assert_eq!(err.loop_name, "vscale");

        // ...the fault-tolerant contract returns everything else.
        let partial = sweep.run_partial();
        assert_eq!(partial.errors.len(), 1, "exactly one failing pair");
        assert_eq!(partial.errors[0].loop_name, "vscale");
        assert!(!partial.is_complete());
        // Both machines still contribute every curve and outcome.
        assert_eq!(partial.report.distributions.len(), 2);
        assert_eq!(partial.report.outcomes.len(), 2);
        // The clustered machine lost nothing; NOMUL aggregates cover its
        // two surviving loops.
        let clustered = partial.report.curves_for("C2L3");
        assert_eq!(clustered.len(), 1);
        let seq = Sweep::new(&corpus)
            .machine(Machine::clustered(3, 1))
            .models([Model::Unified])
            .points([16, 64])
            .budget(16)
            .run_sequential()
            .unwrap();
        assert_eq!(clustered[0], &seq.distributions[0]);
        assert_eq!(partial.report.outcomes_for("C2L3", 16)[0], &seq.outcomes[0]);
    }

    #[test]
    fn errors_from_sweeps_name_the_loop() {
        use ncdrf_machine::{FuClass, FuGroup};
        // A machine with no adder cannot serve most corpus loops; the
        // sweep must surface the first failing loop by name.
        let no_adder = Machine::new(
            "NOADD",
            vec![
                FuGroup::unified(FuClass::Multiplier, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let corpus = tiny();
        let err = Sweep::new(&corpus)
            .machine(no_adder)
            .models([Model::Unified])
            .points([16])
            .run()
            .unwrap_err();
        assert!(
            corpus.iter().any(|l| l.name() == err.loop_name),
            "error names a corpus loop: {err}"
        );
        assert!(err.to_string().contains(&err.loop_name));
    }
}
