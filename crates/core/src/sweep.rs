//! The [`Sweep`] builder: declarative corpus experiments over a
//! machine grid × model set × budget set, backed by per-machine
//! [`Session`] caches.
//!
//! One `Sweep` replaces the positional-argument drivers that used to
//! reproduce the paper's tables and figures (`table1`, `figures_6_7`,
//! `figures_8_9`): every `(machine, loop)` pair is scheduled exactly once
//! no matter how many models or budgets are evaluated on it.
//!
//! ```
//! use ncdrf::{Model, Sweep, Render, ReportFormat};
//! use ncdrf::corpus::Corpus;
//! use ncdrf::machine::Machine;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let corpus = Corpus::small().take(8);
//! // Figures 8/9, one configuration: four models, 32 registers.
//! let report = Sweep::new(&corpus)
//!     .machine(Machine::clustered(3, 1))
//!     .models(Model::all())
//!     .budget(32)
//!     .run()?;
//! assert_eq!(report.outcomes.len(), 4);
//! println!("{}", report.render(ReportFormat::Text));
//! # Ok(())
//! # }
//! ```

use crate::distribution::{Cumulative, Observation, TABLE1_POINTS};
use crate::experiment::{relative_performance, BudgetOutcome, DistributionCurve, Table1Row};
use crate::model::Model;
use crate::pipeline::{LoopEval, PipelineError, PipelineOptions};
use crate::session::{CacheStats, Session};
use ncdrf_corpus::Corpus;
use ncdrf_machine::Machine;
use serde::{Deserialize, Serialize};

/// Builder for a corpus experiment over machines × models × budgets.
///
/// * adding [`points`](Sweep::points) produces register-requirement
///   [`DistributionCurve`]s (the Figure 6/7 and Table 1 pipeline:
///   unlimited registers, no spilling);
/// * adding [`budgets`](Sweep::budgets) produces [`BudgetOutcome`]s (the
///   Figure 8/9 pipeline: finite file, spiller active).
///
/// Both can be requested in one sweep; they share the schedule cache.
#[derive(Debug, Clone)]
pub struct Sweep<'c> {
    corpus: &'c Corpus,
    machines: Vec<Machine>,
    models: Vec<Model>,
    points: Vec<u32>,
    budgets: Vec<u32>,
    opts: PipelineOptions,
}

impl<'c> Sweep<'c> {
    /// Starts a sweep over `corpus` with no machines, all four models,
    /// and no points/budgets.
    pub fn new(corpus: &'c Corpus) -> Self {
        Sweep {
            corpus,
            machines: Vec::new(),
            models: Model::all().to_vec(),
            points: Vec::new(),
            budgets: Vec::new(),
            opts: PipelineOptions::default(),
        }
    }

    /// Adds one machine to the grid.
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machines.push(machine);
        self
    }

    /// Adds machines to the grid.
    pub fn machines<I: IntoIterator<Item = Machine>>(mut self, machines: I) -> Self {
        self.machines.extend(machines);
        self
    }

    /// Adds the paper's two-cluster evaluation machines for the given
    /// latencies ([`Machine::clustered`] with one load/store unit per
    /// cluster).
    pub fn clustered_latencies<I: IntoIterator<Item = u32>>(mut self, latencies: I) -> Self {
        self.machines
            .extend(latencies.into_iter().map(|lat| Machine::clustered(lat, 1)));
        self
    }

    /// Adds the unified `PxLy` machines of Table 1 for `(x, latency)`
    /// pairs.
    pub fn pxly_configs<I: IntoIterator<Item = (u32, u32)>>(mut self, configs: I) -> Self {
        self.machines
            .extend(configs.into_iter().map(|(x, lat)| Machine::pxly(x, lat)));
        self
    }

    /// Replaces the model set (default: all four, in presentation order).
    pub fn models<I: IntoIterator<Item = Model>>(mut self, models: I) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the register-count sample points for distribution curves.
    pub fn points<I: IntoIterator<Item = u32>>(mut self, points: I) -> Self {
        self.points = points.into_iter().collect();
        self
    }

    /// Adds one register budget for spill evaluation.
    pub fn budget(mut self, budget: u32) -> Self {
        self.budgets.push(budget);
        self
    }

    /// Adds register budgets for spill evaluation.
    pub fn budgets<I: IntoIterator<Item = u32>>(mut self, budgets: I) -> Self {
        self.budgets.extend(budgets);
        self
    }

    /// Replaces the pipeline options.
    pub fn options(mut self, opts: PipelineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs the sweep: one [`Session`] per machine, loops in parallel.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop failure; the error names the loop (see
    /// [`PipelineError::loop_name`]).
    pub fn run(&self) -> Result<SweepReport, PipelineError> {
        let mut report = SweepReport::default();
        for machine in &self.machines {
            let session = Session::new(machine.clone()).options(self.opts);
            if !self.points.is_empty() {
                for &model in &self.models {
                    report.distributions.push(distribution_curve(
                        &session,
                        self.corpus,
                        model,
                        &self.points,
                    )?);
                }
            }
            for &budget in &self.budgets {
                report.outcomes.extend(budget_outcomes(
                    &session,
                    self.corpus,
                    &self.models,
                    budget,
                )?);
            }
            let stats = session.cache_stats();
            report.scheduling.hits += stats.hits;
            report.scheduling.misses += stats.misses;
        }
        Ok(report)
    }
}

/// Typed result of [`Sweep::run`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepReport {
    /// One curve per `(machine, model)` when sample points were set, in
    /// machine-major order.
    pub distributions: Vec<DistributionCurve>,
    /// One outcome per `(machine, budget, model)` when budgets were set,
    /// in machine-major, budget-middle order.
    pub outcomes: Vec<BudgetOutcome>,
    /// Aggregated schedule-cache counters over all sessions: `misses` is
    /// the number of scheduling runs, `hits` the number the cache saved.
    pub scheduling: CacheStats,
}

impl SweepReport {
    /// Derives Table 1 rows (allocatable percentages at 16/32/64
    /// registers) from every distribution curve that sampled all three
    /// Table 1 points.
    pub fn table1(&self) -> Vec<Table1Row> {
        self.distributions
            .iter()
            .filter(|c| {
                TABLE1_POINTS
                    .iter()
                    .all(|p| c.static_dist.points.contains(p))
            })
            .map(|c| Table1Row {
                config: c.config.clone(),
                loops_within: [
                    c.static_dist.at(16),
                    c.static_dist.at(32),
                    c.static_dist.at(64),
                ],
                cycles_within: [
                    c.dynamic_dist.at(16),
                    c.dynamic_dist.at(32),
                    c.dynamic_dist.at(64),
                ],
            })
            .collect()
    }

    /// The distribution curves of one machine configuration.
    pub fn curves_for(&self, config: &str) -> Vec<&DistributionCurve> {
        self.distributions
            .iter()
            .filter(|c| c.config == config)
            .collect()
    }

    /// The budget outcomes of one machine configuration and budget.
    pub fn outcomes_for(&self, config: &str, budget: u32) -> Vec<&BudgetOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.config == config && o.registers == budget)
            .collect()
    }
}

/// The floating-point-unit latency of a machine (its slowest group; the
/// memory ports have latency 1 in every preset).
pub(crate) fn fp_latency(machine: &Machine) -> u32 {
    machine
        .groups()
        .iter()
        .map(|g| g.latency)
        .max()
        .unwrap_or(0)
}

fn distribution_curve(
    session: &Session,
    corpus: &Corpus,
    model: Model,
    points: &[u32],
) -> Result<DistributionCurve, PipelineError> {
    let rows = session.analyze_corpus(corpus, model)?;
    let static_obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            regs: r.regs,
            weight: 1.0,
        })
        .collect();
    let dyn_obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            regs: r.regs,
            weight: r.cycles() as f64,
        })
        .collect();
    Ok(DistributionCurve {
        config: session.machine().name().to_owned(),
        model,
        latency: fp_latency(session.machine()),
        static_dist: Cumulative::new(points, &static_obs),
        dynamic_dist: Cumulative::new(points, &dyn_obs),
    })
}

fn budget_outcomes(
    session: &Session,
    corpus: &Corpus,
    models: &[Model],
    budget: u32,
) -> Result<Vec<BudgetOutcome>, PipelineError> {
    let machine = session.machine();
    let ports = machine.memory_ports() as u128;
    // The ideal rows anchor relative performance even when the caller's
    // model set omits Model::Ideal; with the shared schedule cache they
    // cost one lookup per loop.
    let ideal_rows = session.evaluate_corpus(corpus, Model::Ideal, budget)?;
    let ideal_cycles: u128 = ideal_rows.iter().map(LoopEval::cycles).sum();

    models
        .iter()
        .map(|&model| {
            let rows = if model == Model::Ideal {
                ideal_rows.clone()
            } else {
                session.evaluate_corpus(corpus, model, budget)?
            };
            let cycles: u128 = rows.iter().map(LoopEval::cycles).sum();
            let accesses: u128 = rows.iter().map(LoopEval::accesses).sum();
            let loops_spilled = rows.iter().filter(|r| r.spilled > 0).count();
            Ok(BudgetOutcome {
                config: machine.name().to_owned(),
                model,
                latency: fp_latency(machine),
                registers: budget,
                cycles,
                accesses,
                relative_performance: relative_performance(ideal_cycles, cycles),
                traffic_density: if cycles == 0 {
                    0.0
                } else {
                    accesses as f64 / (cycles * ports) as f64
                },
                loops_spilled,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        Corpus::small().take(10)
    }

    #[test]
    fn grid_sweep_produces_machine_major_results() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .clustered_latencies([3, 6])
            .models(Model::finite())
            .points([16, 32])
            .run()
            .unwrap();
        assert_eq!(report.distributions.len(), 6);
        assert_eq!(report.distributions[0].config, "C2L3");
        assert_eq!(report.distributions[3].config, "C2L6");
        assert_eq!(report.distributions[0].latency, 3);
        assert_eq!(report.distributions[3].latency, 6);
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn sweep_schedules_once_per_loop_machine_pair() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(3, 1))
            .models(Model::all())
            .points([16, 32, 64])
            .budgets([32, 64])
            .run()
            .unwrap();
        // 4 models analysed + ideal anchor + (4 models × 2 budgets)
        // evaluated, all on ONE scheduling run per loop.
        assert_eq!(report.scheduling.misses, corpus.len() as u64);
        assert!(report.scheduling.hits > 0);
        assert_eq!(report.outcomes.len(), 8);
    }

    #[test]
    fn table1_rows_derive_from_curves() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .pxly_configs([(1, 3), (2, 6)])
            .models([Model::Unified])
            .points(TABLE1_POINTS)
            .run()
            .unwrap();
        let rows = report.table1();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "P1L3");
        assert_eq!(rows[1].config, "P2L6");
        for r in &rows {
            assert!(r.loops_within[0] <= r.loops_within[1]);
            assert!(r.loops_within[1] <= r.loops_within[2]);
        }
    }

    #[test]
    fn budget_outcomes_keep_model_order_and_anchor_ideal() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(6, 1))
            .models([Model::Swapped, Model::Ideal])
            .budget(16)
            .run()
            .unwrap();
        assert_eq!(report.outcomes[0].model, Model::Swapped);
        assert_eq!(report.outcomes[1].model, Model::Ideal);
        assert_eq!(report.outcomes[1].relative_performance, 1.0);
        assert!(report.outcomes[0].relative_performance <= 1.0 + 1e-12);
    }

    #[test]
    fn relative_performance_anchored_without_ideal_in_model_set() {
        let corpus = tiny();
        let report = Sweep::new(&corpus)
            .machine(Machine::clustered(6, 1))
            .models([Model::Unified])
            .budget(12)
            .run()
            .unwrap();
        let o = &report.outcomes[0];
        assert!(o.relative_performance > 0.0 && o.relative_performance <= 1.0 + 1e-12);
    }

    #[test]
    fn errors_from_sweeps_name_the_loop() {
        use ncdrf_machine::{FuClass, FuGroup};
        // A machine with no adder cannot serve most corpus loops; the
        // sweep must surface the first failing loop by name.
        let no_adder = Machine::new(
            "NOADD",
            vec![
                FuGroup::unified(FuClass::Multiplier, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let corpus = tiny();
        let err = Sweep::new(&corpus)
            .machine(no_adder)
            .models([Model::Unified])
            .points([16])
            .run()
            .unwrap_err();
        assert!(
            corpus.iter().any(|l| l.name() == err.loop_name),
            "error names a corpus loop: {err}"
        );
        assert!(err.to_string().contains(&err.loop_name));
    }
}
