//! Cumulative distributions over register requirements (Figures 6–7) and
//! allocatability percentages (Table 1).

use serde::{Deserialize, Serialize};

/// One weighted observation: a loop's register requirement plus the weight
/// it contributes (1.0 for static/loop-count distributions, estimated
/// cycles for dynamic distributions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Register requirement.
    pub regs: u32,
    /// Weight (loop count or cycles).
    pub weight: f64,
}

/// A cumulative distribution: for each sampled register count, the
/// percentage of total weight requiring at most that many registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cumulative {
    /// Sample points (register counts).
    pub points: Vec<u32>,
    /// Cumulative percentage (0–100) at each point.
    pub percent: Vec<f64>,
}

impl Cumulative {
    /// Builds the cumulative distribution of `obs` at `points` (each point
    /// reports the share of weight with `regs <= point`).
    pub fn new(points: &[u32], obs: &[Observation]) -> Self {
        let total: f64 = obs.iter().map(|o| o.weight).sum();
        let percent = points
            .iter()
            .map(|&p| {
                if total <= 0.0 {
                    return 0.0;
                }
                let within: f64 = obs.iter().filter(|o| o.regs <= p).map(|o| o.weight).sum();
                100.0 * within / total
            })
            .collect();
        Cumulative {
            points: points.to_vec(),
            percent,
        }
    }

    /// The percentage at a specific point.
    ///
    /// # Panics
    ///
    /// Panics if `point` is not one of the sampled points.
    pub fn at(&self, point: u32) -> f64 {
        let i = self
            .points
            .iter()
            .position(|&p| p == point)
            .expect("point was sampled");
        self.percent[i]
    }
}

/// The default x-axis of the paper's Figures 6–7: 4..=128 registers.
pub fn default_points() -> Vec<u32> {
    (1..=32).map(|i| i * 4).collect()
}

/// The Table 1 sample points.
pub const TABLE1_POINTS: [u32; 3] = [16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(u32, f64)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(regs, weight)| Observation { regs, weight })
            .collect()
    }

    #[test]
    fn cumulative_is_monotone() {
        let o = obs(&[(3, 1.0), (10, 2.0), (40, 1.0), (90, 4.0)]);
        let c = Cumulative::new(&default_points(), &o);
        for w in c.percent.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((c.percent.last().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn at_matches_hand_computation() {
        let o = obs(&[(10, 1.0), (20, 1.0), (40, 1.0), (100, 1.0)]);
        let c = Cumulative::new(&TABLE1_POINTS, &o);
        assert_eq!(c.at(16), 25.0);
        assert_eq!(c.at(32), 50.0);
        assert_eq!(c.at(64), 75.0);
    }

    #[test]
    fn weights_shift_the_distribution() {
        let balanced = Cumulative::new(&[32], &obs(&[(10, 1.0), (100, 1.0)]));
        let skewed = Cumulative::new(&[32], &obs(&[(10, 1.0), (100, 9.0)]));
        assert_eq!(balanced.at(32), 50.0);
        assert_eq!(skewed.at(32), 10.0);
    }

    #[test]
    fn empty_observations_yield_zero() {
        let c = Cumulative::new(&TABLE1_POINTS, &[]);
        assert!(c.percent.iter().all(|&p| p == 0.0));
    }
}
