//! # ncdrf — Non-Consistent Dual Register Files
//!
//! A full reproduction of *"Non-Consistent Dual Register Files to Reduce
//! Register Pressure"* (J. Llosa, M. Valero, E. Ayguadé, HPCA 1995) as a
//! Rust library.
//!
//! The paper proposes building a clustered VLIW's register file from two
//! independently-addressed subfiles: values consumed by both clusters are
//! replicated ("global"), values consumed by one cluster live only in
//! that cluster's subfile ("left-only"/"right-only"). Because most
//! register instances are read once, this halves read-port pressure *and*
//! lowers each subfile's register requirement, which reduces spill code
//! in software-pipelined loops — improving performance and memory-traffic
//! density. A greedy post-scheduling pass that swaps same-cycle,
//! same-unit-type operations across clusters reduces the requirement
//! further.
//!
//! This crate is the facade over the full pipeline:
//!
//! | crate | role |
//! |---|---|
//! | [`ncdrf_ddg`] | loop dependence graphs (executable) |
//! | [`ncdrf_machine`] | VLIW machine models + register-file cost models |
//! | [`ncdrf_sched`] | iterative modulo scheduling |
//! | [`ncdrf_regalloc`] | rotating-file allocation, unified & dual |
//! | [`ncdrf_swap`] | the greedy cluster-swapping pass |
//! | [`ncdrf_spill`] | the §5.4 naive spiller |
//! | [`ncdrf_corpus`] | the benchmark loop population |
//! | [`ncdrf_vliw`] | cycle-accurate executor + equivalence oracle |
//! | [`ncdrf_exec`] | work-stealing sweep executor with panic isolation |
//!
//! # Quickstart
//!
//! Experiments are driven through a [`Session`] (one machine, one
//! schedule cache — every model comparison schedules each loop once) or,
//! corpus-wide, a [`Sweep`]:
//!
//! ```
//! use ncdrf::{Model, Session};
//! use ncdrf::corpus::kernels;
//! use ncdrf::machine::Machine;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let session = Session::new(Machine::clustered(3, 1));
//! let loop_ = kernels::livermore::hydro();
//!
//! let unified = session.analyze(&loop_, Model::Unified)?;
//! let swapped = session.analyze(&loop_, Model::Swapped)?;
//! assert!(swapped.regs <= unified.regs);
//! // Both analyses shared one scheduling run.
//! assert_eq!(session.cache_stats().misses, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Reproducing a paper figure is a [`Sweep`] plus a [`Render`] backend:
//!
//! ```no_run
//! use ncdrf::{Model, Render, ReportFormat, Sweep, FIG89_CONFIGS};
//! use ncdrf::corpus::Corpus;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let corpus = Corpus::standard();
//! let report = Sweep::new(&corpus)
//!     .clustered_latencies([3, 6])
//!     .models(Model::all())
//!     .budgets([32, 64])
//!     .run()?;
//! println!("{}", report.render(ReportFormat::Text));
//! std::fs::write("fig8_9.csv", report.render(ReportFormat::Csv)).unwrap();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod artifact;
mod certify;
mod distribution;
mod experiment;
mod model;
mod pipeline;
mod report;
mod session;
mod shard;
mod sweep;

pub use artifact::{
    machine_from_name, preset_sweep, read_shard, read_shards, rebuild_corpus, rebuild_grid,
    scan_artifacts, sweep_for_signature, write_artifact, ArtifactError,
};
pub use certify::{
    CellCertifier, CellFault, CertifyViolation, RULE_DEPENDENCE, RULE_FU_BINDING,
    RULE_MRT_OVERFLOW, RULE_REQUIREMENT, RULE_SPILL_SHAPE, RULE_UNIT_CONFLICT,
};
pub use distribution::{default_points, Cumulative, Observation, TABLE1_POINTS};
#[allow(deprecated)]
pub use experiment::par_map;
#[allow(deprecated)]
pub use experiment::{figures_6_7, figures_8_9, sweep_analyze, sweep_evaluate, table1};
pub use experiment::{
    relative_performance, BudgetOutcome, DistributionCurve, Table1Row, FIG89_CONFIGS,
};
pub use model::{
    resolve_models, CompressedSpec, Model, ModelId, ModelRegistry, ModelSpec, PortLimitedSpec,
    RegistryError, RequirementCtx, COMPRESSED_CAPACITY, PAPER_FINITE_MODELS, PAPER_MODELS,
    PORT_LIMITED_READ_PORTS,
};
pub use pipeline::{
    analyze, evaluate, requirement, ConfigError, LoopAnalysis, LoopEval, PipelineError,
    PipelineOptions, PipelineStage,
};
#[allow(deprecated)]
pub use report::{
    csv_budget_outcomes, csv_distribution, csv_table1, render_budget_outcomes, render_distribution,
    render_table1,
};
pub use report::{
    parse_grid_signature, parse_partial_sweep, parse_sweep_report, parse_sweep_shard,
    render_grid_signature, BudgetMetric, BudgetTable, DistributionPanel, Render, ReportFormat,
    ReportParseError,
};
pub use session::{BaseSchedule, CacheStats, Session, TrajectoryExport};
pub use shard::{CellTrajectory, GridSignature, MachineSig, Provenance, ShardRole, SweepShard};
pub use sweep::{certify_shard, shard_tasks, PartialSweep, Sweep, SweepReport};

/// Re-export of the corpus crate.
pub use ncdrf_corpus as corpus;
/// Re-export of the dependence-graph crate.
pub use ncdrf_ddg as ddg;
/// Re-export of the execution-pool crate.
pub use ncdrf_exec as exec;
/// Re-export of the machine-model crate.
pub use ncdrf_machine as machine;
/// Re-export of the register-allocation crate.
pub use ncdrf_regalloc as regalloc;
/// Re-export of the modulo-scheduling crate.
pub use ncdrf_sched as sched;
/// Re-export of the spiller crate.
pub use ncdrf_spill as spill;
/// Re-export of the swapping-pass crate.
pub use ncdrf_swap as swap;
/// Re-export of the VLIW-executor crate.
pub use ncdrf_vliw as vliw;
