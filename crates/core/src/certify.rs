//! Certification plumbing: the [`CellCertifier`] hook that
//! [`Session`](crate::Session) and [`Sweep`](crate::Sweep) call into, the
//! violation vocabulary shared by every certifier, and the per-cell fault
//! record shard-level certification reports.
//!
//! The hook is a trait so the facade does not depend on any concrete
//! checker: `ncdrf-certify` implements it by re-deriving the paper's
//! scheduling and allocation constraints from first principles, and the
//! farm / CLI plug that implementation in where certification is
//! requested.

use crate::model::ModelId;
use crate::pipeline::{LoopAnalysis, LoopEval};
use ncdrf_ddg::Loop;
use ncdrf_machine::Machine;
use ncdrf_sched::Schedule;
use std::fmt;

/// Rule id: a dependence edge is violated by the placement
/// (`start(succ) >= start(pred) + latency - dist * II` fails).
pub const RULE_DEPENDENCE: &str = "dependence";
/// Rule id: an operation is bound to a unit that cannot execute it (wrong
/// class, nonexistent group, or out-of-range instance).
pub const RULE_FU_BINDING: &str = "fu-binding";
/// Rule id: a modulo-reservation-table row issues more operations to a
/// functional-unit group than the group has units.
pub const RULE_MRT_OVERFLOW: &str = "mrt-overflow";
/// Rule id: two operations occupy the same unit instance in the same
/// kernel slot.
pub const RULE_UNIT_CONFLICT: &str = "unit-conflict";
/// Rule id: a reported register requirement (or MaxLive / pressure /
/// II figure derived with it) disagrees with independent recomputation.
pub const RULE_REQUIREMENT: &str = "requirement-mismatch";
/// Rule id: a spill rewrite is not shape-sound (missing or unclaimed
/// spill stores / reloads, a victim still consumed directly, or memory-op
/// counts that do not add up).
pub const RULE_SPILL_SHAPE: &str = "spill-shape";

/// One constraint violation found by a certifier: a stable rule id plus a
/// human-readable locator naming the offending operations or quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyViolation {
    /// The violated rule (one of the `RULE_*` constants for the built-in
    /// certifier).
    pub rule: &'static str,
    /// What exactly is wrong, naming the operations / cycles / registers
    /// involved.
    pub detail: String,
}

impl CertifyViolation {
    /// Builds a violation.
    pub fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        CertifyViolation {
            rule,
            detail: detail.into(),
        }
    }

    /// The same violation with a locator prefix (e.g. `"checkpoint 3: "`)
    /// prepended to the detail.
    pub fn locate(self, prefix: impl fmt::Display) -> Self {
        CertifyViolation {
            rule: self.rule,
            detail: format!("{prefix}{}", self.detail),
        }
    }
}

impl fmt::Display for CertifyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

impl std::error::Error for CertifyViolation {}

/// An independent validator of per-cell pipeline outputs.
///
/// Implementations must be pure functions of their arguments: the session
/// calls them from worker threads and relies on a violation meaning the
/// *artifact* is wrong, not the checker's mood. The contract for each
/// hook:
///
/// * [`certify_analysis`](CellCertifier::certify_analysis) — `sched` is
///   the exact schedule the analysis figures were derived from (for
///   swapping models, after the swap pass).
/// * [`certify_eval`](CellCertifier::certify_eval) — `final_l`/`sched`
///   are the loop body and schedule the evaluation reports; for spilled
///   cells `final_l` differs from `original` by the claimed spill code.
/// * [`certify_checkpoint`](CellCertifier::certify_checkpoint) — one
///   restored spill-trajectory checkpoint (step 0 is the unspilled base).
pub trait CellCertifier: Send + Sync + fmt::Debug {
    /// Certifies an unlimited-register analysis result.
    fn certify_analysis(
        &self,
        l: &Loop,
        machine: &Machine,
        sched: &Schedule,
        analysis: &LoopAnalysis,
    ) -> Result<(), CertifyViolation>;

    /// Certifies a budgeted evaluation result, including any spill
    /// rewrite (`spilled` / `spill_stores` / `spill_loads` are the
    /// spiller's claims; all empty/zero for unspilled cells).
    #[allow(clippy::too_many_arguments)]
    fn certify_eval(
        &self,
        original: &Loop,
        machine: &Machine,
        final_l: &Loop,
        sched: &Schedule,
        spilled: &[String],
        spill_stores: usize,
        spill_loads: usize,
        eval: &LoopEval,
    ) -> Result<(), CertifyViolation>;

    /// Certifies one restored checkpoint of a spill-trajectory replay:
    /// the checkpoint's loop/schedule state and its recorded requirement
    /// under `model`.
    fn certify_checkpoint(
        &self,
        step: usize,
        l: &Loop,
        machine: &Machine,
        sched: &Schedule,
        model: ModelId,
        regs: u32,
    ) -> Result<(), CertifyViolation>;
}

/// One grid cell of a shard artifact that failed certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFault {
    /// Flattened grid-cell index (`machine_index * loops + loop_index`).
    pub task: u64,
    /// The cell's loop.
    pub loop_name: String,
    /// The cell's machine.
    pub machine: String,
    /// Why certification failed (a [`CertifyViolation`] rendering or a
    /// recomputation mismatch).
    pub detail: String,
}

impl fmt::Display for CellFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} (loop `{}` on {}): {}",
            self.task, self.loop_name, self.machine, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_rule_and_detail() {
        let v = CertifyViolation::new(RULE_DEPENDENCE, "`A` starts too early");
        assert_eq!(v.to_string(), "[dependence] `A` starts too early");
        let located = v.locate("checkpoint 2: ");
        assert_eq!(
            located.to_string(),
            "[dependence] checkpoint 2: `A` starts too early"
        );
        assert_eq!(located.rule, RULE_DEPENDENCE);
    }

    #[test]
    fn cell_fault_names_its_coordinates() {
        let f = CellFault {
            task: 7,
            loop_name: "hydro".into(),
            machine: "P2L3".into(),
            detail: "[mrt-overflow] slot 2".into(),
        };
        let s = f.to_string();
        assert!(s.contains("cell 7"), "{s}");
        assert!(s.contains("`hydro`"), "{s}");
        assert!(s.contains("P2L3"), "{s}");
    }
}
