//! Sharded sweep execution: the serializable [`SweepShard`] artifact
//! produced by [`crate::Sweep::shard`] and the validated merge that
//! reassembles shards into one [`PartialSweep`].
//!
//! The experiment grid is embarrassingly partitionable: every
//! `(machine, loop)` cell is independent, and all cross-cell arithmetic
//! (curve percentages, corpus cycle totals, relative performance)
//! happens in one assembly pass at the end. A shard therefore carries
//! the grid cells it evaluated **raw** — per-loop analyses and
//! evaluations, all-integer payloads — plus a [`GridSignature`]
//! identifying the sweep it came from. [`SweepShard::merge`] checks the
//! signatures, checks that the shards partition the grid exactly, puts
//! the cells back in grid order, and runs the *same* assembly code as
//! [`crate::Sweep::run_sequential`]; the merged report is bit-identical
//! to an unsharded run, including after a JSON round trip.
//!
//! ```
//! use ncdrf::{Model, Sweep, SweepShard};
//! use ncdrf::corpus::Corpus;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let corpus = Corpus::small().take(6);
//! let sweep = Sweep::new(&corpus)
//!     .clustered_latencies([3])
//!     .models(Model::all())
//!     .budget(32);
//! // Run the grid as three shards (in one process here; `shard_runner`
//! // does the same across processes via JSON files)...
//! let shards: Vec<SweepShard> = (0..3).map(|i| sweep.shard(i, 3)).collect::<Result<_, _>>()?;
//! // ...and reassemble: bit-identical to the unsharded run.
//! let merged = SweepShard::merge(&shards)?;
//! assert_eq!(merged.report, sweep.run_sequential()?);
//! # Ok(())
//! # }
//! ```

use crate::model::ModelId;
use crate::pipeline::{ConfigError, PipelineError};
use crate::session::CacheStats;
use crate::sweep::{assemble_cells, LoopCell, PartialSweep, SweepReport};
use ncdrf_spill::TrajectorySnapshot;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// The aspects of a machine the report assembly depends on. Shards carry
/// these instead of full machine descriptions: merging only needs to
/// label rows (`name`), anchor latencies and normalize traffic density
/// (`ports`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSig {
    /// Machine preset name (`C2L3`, `P1L6`, ...).
    pub name: String,
    /// Functional-unit latency (the machine's slowest group).
    pub latency: u32,
    /// Memory ports (the traffic-density denominator).
    pub ports: u32,
}

/// Everything that identifies the grid a shard was cut from. Two shards
/// merge only if their signatures are equal — same machines in the same
/// order, same model/point/budget sets, same corpus (by name *and* loop
/// list) and same pipeline options.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSignature {
    /// Corpus name (`small`, `standard`, ...).
    pub corpus: String,
    /// Loop names in corpus order (the grid's minor axis).
    pub loops: Vec<String>,
    /// Machine signatures in grid order (the grid's major axis).
    pub machines: Vec<MachineSig>,
    /// Model set, in evaluation order. Registry IDs; artifacts carry
    /// the registry's stable wire names.
    pub models: Vec<ModelId>,
    /// Distribution sample points.
    pub points: Vec<u32>,
    /// Register budgets.
    pub budgets: Vec<u32>,
    /// Fingerprint of the [`crate::PipelineOptions`] (their `Debug`
    /// rendering) — results depend on them, so shards evaluated under
    /// different options must not merge.
    pub options: String,
}

impl GridSignature {
    /// Total number of grid cells (`machines × loops`).
    pub fn total_tasks(&self) -> usize {
        self.machines.len() * self.loops.len()
    }

    /// Whether trajectories persisted under `seed` resume on this grid.
    ///
    /// Spill descents depend on the machine, loop, model and pipeline
    /// options — **not** on the sample points or register budgets (the
    /// budget only picks the stop point along the descent). Two grids
    /// are therefore resume-compatible when their corpora, machines and
    /// options agree, even if their points/budgets (and model sets)
    /// differ — that is exactly what lets a re-run at *new* budgets
    /// resume trajectories a previous artifact persisted.
    pub fn resumes(&self, seed: &GridSignature) -> bool {
        self.corpus == seed.corpus
            && self.loops == seed.loops
            && self.machines == seed.machines
            && self.options == seed.options
    }
}

/// Whether an artifact is a primary shard of a partitioned run or a
/// **heal** artifact produced by [`crate::Sweep::reissue`], covering
/// exactly the cells a prior merge reported failed or missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// A primary shard: one of `count` round-robin partitions of the
    /// grid.
    Shard,
    /// A heal (retry) artifact: its cells *complement* a prior shard
    /// set — [`SweepShard::merge`] lets them fill gaps and supersede
    /// failed cells without tripping the overlap check.
    Heal,
}

/// Persisted spill-trajectory state of one `(cell, model)` pair: the
/// checkpoint record [`crate::Session::export_trajectories`] produced
/// for the cell's loop under `model`. Carried (optionally) by shard
/// artifacts (format v3 and later) so re-runs resume the descent across
/// processes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrajectory {
    /// The model whose requirement drove the descent (the loop is the
    /// cell's).
    pub model: ModelId,
    /// The serializable checkpoint record.
    pub snapshot: TrajectorySnapshot,
}

/// One evaluated cell of a shard: the flattened task index, the loop's
/// name (for error reporting without the corpus at hand), the cell's
/// own cache counters, either the raw results or the per-pair failure,
/// and (optionally) the cell's persisted spill trajectories.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardCell {
    /// Flattened machine-major task index (`machine * loops + loop`).
    pub(crate) task: u64,
    /// Name of the cell's loop.
    pub(crate) loop_name: String,
    /// Cache counters of the work this cell performed. All cache reuse
    /// is per-cell, so summing these over any resolution of the grid
    /// reproduces the unsharded run's counters — and dropping a failed
    /// cell in favour of its heal replacement drops exactly its work.
    pub(crate) scheduling: CacheStats,
    /// The cell's results, or why it has none.
    pub(crate) outcome: Result<LoopCell, PipelineError>,
    /// Persisted spill-trajectory state, when the producing sweep
    /// enabled [`crate::Sweep::persist_trajectories`] (empty otherwise).
    pub(crate) trajectories: Vec<CellTrajectory>,
}

/// Farm provenance of a worker-produced artifact: which job and lease
/// it answers. Stamped by `ncdrf-farm` workers so the daemon can match
/// an artifact found in the watch directory back to the lease that
/// requested it; plain `shard_runner` artifacts carry none. Serialized
/// as optional JSON keys, so the shard format version is unchanged and
/// provenance-free parsers are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The farm job id the artifact belongs to.
    pub job: String,
    /// The lease id it answers.
    pub lease: u64,
}

/// One shard of a sweep's task grid: raw per-cell results plus the
/// [`GridSignature`] needed to validate and reassemble a merge.
///
/// Produced by [`crate::Sweep::shard`] (role [`ShardRole::Shard`]) or
/// [`crate::Sweep::reissue`] (role [`ShardRole::Heal`]) in-process, or
/// parsed back from the JSON emitted by [`crate::Render`] (see
/// [`crate::parse_sweep_shard`]) when shards cross process or
/// host boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepShard {
    pub(crate) signature: GridSignature,
    pub(crate) index: u32,
    pub(crate) count: u32,
    pub(crate) role: ShardRole,
    pub(crate) scheduling: CacheStats,
    pub(crate) cells: Vec<ShardCell>,
    pub(crate) provenance: Option<Provenance>,
}

/// Ceiling on `machines × loops` accepted from artifacts. Each factor is
/// an honestly-parsed array length, but their *product* need not be
/// bounded by the input size, so grid-proportional work (slot vectors,
/// missing-cell scans) must refuse absurd declarations by name instead
/// of attempting a gigantic allocation. No real corpus grid comes
/// within two orders of magnitude of this.
const MAX_GRID_CELLS: usize = 1 << 24;

impl SweepShard {
    /// Internal constructor shared by [`crate::Sweep::shard`] and the
    /// JSON parser.
    pub(crate) fn assemble_parts(
        signature: GridSignature,
        index: u32,
        count: u32,
        role: ShardRole,
        scheduling: CacheStats,
        cells: Vec<ShardCell>,
    ) -> SweepShard {
        SweepShard {
            signature,
            index,
            count,
            role,
            scheduling,
            cells,
            provenance: None,
        }
    }

    /// Stamps farm provenance (job + lease ids) on the artifact.
    pub fn with_provenance(mut self, provenance: Provenance) -> SweepShard {
        self.provenance = Some(provenance);
        self
    }

    /// Farm provenance, when a worker stamped it.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// The grid this shard was cut from.
    pub fn signature(&self) -> &GridSignature {
        &self.signature
    }

    /// This shard's index (`0..count`; `0` for heal artifacts, whose
    /// cells are not an index-addressed partition).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards the grid was cut into (`0` for heal
    /// artifacts).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this is a primary shard or a heal (reissue) artifact.
    pub fn role(&self) -> ShardRole {
        self.role
    }

    /// Schedule-cache counters of this shard's cells (their sum; each
    /// cell also carries its own). Cells partition across shards and all
    /// cache reuse is per-cell, so these sum to the unsharded run's
    /// counters.
    pub fn scheduling(&self) -> CacheStats {
        self.scheduling
    }

    /// Number of grid cells this shard evaluated (including failures).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of this shard's cells that failed.
    pub fn failure_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// Number of `(cell, model)` spill trajectories this shard persists.
    pub fn trajectory_count(&self) -> usize {
        self.cells.iter().map(|c| c.trajectories.len()).sum()
    }

    /// The flattened task indices of this shard's cells, in artifact
    /// order.
    pub fn tasks(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.task).collect()
    }

    /// Reassembles a full sweep from its shards — heal artifacts
    /// included — in any order.
    ///
    /// Validates, then rebuilds: cells return to grid (machine-major,
    /// corpus) order, each machine's survivors are aggregated by the
    /// same code as [`crate::Sweep::run_sequential`], failures become the
    /// error list in grid order, and cache counters sum per winning
    /// cell in grid order. The result is **bit-identical** to
    /// [`crate::Sweep::run_partial`] on the whole grid — and, when
    /// complete, its report equals `run_sequential`'s. Resolution is
    /// order-independent, so the merge is invariant under permutation
    /// of `shards` (property-tested in `tests/proptest_shard.rs`).
    ///
    /// Counters and failures are attributed per **cell**, so a machine
    /// whose loops were split across several shards — the normal case —
    /// contributes each failed pair once and its cache counters once,
    /// never per shard.
    ///
    /// [`ShardRole::Heal`] artifacts (from [`crate::Sweep::reissue`])
    /// are *complements*: their cells fill grid slots no primary shard
    /// reported (a lost artifact) and supersede cells that **failed** —
    /// without tripping the overlap check and without double-counting
    /// the superseded cell's `CacheStats`, so a healed merge of a
    /// faulted run is byte-identical to a run that never failed. A heal
    /// cell covering a *healthy* cell is still an overlap error.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::MissingShards`] — `shards` is empty, or a grid
    ///   cell was reported by no shard (and healed by none);
    /// * [`ConfigError::OverlappingShards`] — a primary-shard index or
    ///   cell appears twice, a heal cell covers a healthy cell, or two
    ///   heal cells cover the same cell;
    /// * [`ConfigError::IncompatibleShards`] — signatures or shard
    ///   counts disagree, or a cell lies outside the signature's grid;
    /// * [`ConfigError::InvalidShard`] — a primary shard's index is not
    ///   below its count;
    /// * [`ConfigError::OversizedGrid`] — the declared grid is beyond
    ///   any real corpus (a corrupt artifact).
    pub fn merge(shards: &[SweepShard]) -> Result<PartialSweep, PipelineError> {
        let config = |e: ConfigError| PipelineError::config(e);
        let (signature, slots) = resolve(shards)?;
        let total = signature.total_tasks();
        if slots.len() < total {
            return Err(config(ConfigError::MissingShards));
        }

        // Reassemble exactly as `run_partial` over the full grid does:
        // per machine, survivors aggregate and failures list, both in
        // corpus order. Counters sum over the *winning* cells only, so
        // a failed cell a heal artifact superseded contributes neither
        // results nor work — the healed merge is bit-identical to a run
        // that never failed.
        let n = signature.loops.len();
        let mut report = SweepReport::default();
        let mut errors = Vec::new();
        let mut scheduling = CacheStats::default();
        for (mi, machine) in signature.machines.iter().enumerate() {
            let mut ok = Vec::new();
            for li in 0..n {
                let cell = slots
                    .get(&((mi * n + li) as u64))
                    .expect("resolution covers the grid")
                    .cell;
                scheduling.absorb(cell.scheduling);
                match &cell.outcome {
                    Ok(c) => ok.push(c.clone()),
                    Err(e) => errors.push(e.clone()),
                }
            }
            assemble_cells(
                &mut report,
                &machine.name,
                machine.latency,
                machine.ports,
                &signature.models,
                &signature.points,
                &signature.budgets,
                &ok,
                n == 0,
            );
        }
        report.scheduling = scheduling;
        Ok(PartialSweep { report, errors })
    }

    /// The flattened task indices a merge of `shards` could not serve a
    /// healthy result for — cells whose outcome is a failure plus cells
    /// no shard reported at all (for example because a whole shard
    /// artifact was lost) — in grid order. This is exactly the set
    /// [`crate::Sweep::reissue`] re-runs to heal the grid; an empty
    /// result means [`SweepShard::merge`] would be complete.
    ///
    /// Unlike [`SweepShard::merge`], missing cells are a *result* here,
    /// not an error; the validation errors are otherwise the same.
    ///
    /// # Errors
    ///
    /// As [`SweepShard::merge`], minus [`ConfigError::MissingShards`]
    /// for coverage gaps (an empty `shards` still reports it — there is
    /// no grid to inspect).
    pub fn unresolved(shards: &[SweepShard]) -> Result<Vec<u64>, PipelineError> {
        let (signature, slots) = resolve(shards)?;
        Ok((0..signature.total_tasks() as u64)
            .filter(|t| match slots.get(t) {
                None => true,
                Some(slot) => slot.cell.outcome.is_err(),
            })
            .collect())
    }

    /// Resolves `shards` (heal artifacts included, with the same
    /// precedence rules as [`SweepShard::merge`]) into a single
    /// consolidated artifact: one `1/1` shard carrying every winning
    /// cell — results, per-cell counters and persisted trajectories —
    /// in grid order. Unlike `merge`, gaps are allowed: the
    /// consolidated artifact of an incomplete set simply omits the
    /// missing cells, which keeps it usable as the `--from` input of a
    /// reissue *and* as a merge input once a heal artifact covers the
    /// gaps.
    ///
    /// # Errors
    ///
    /// Exactly as [`SweepShard::unresolved`].
    pub fn consolidate(shards: &[SweepShard]) -> Result<SweepShard, PipelineError> {
        let (signature, slots) = resolve(shards)?;
        let mut tasks: Vec<u64> = slots.keys().copied().collect();
        tasks.sort_unstable();
        let cells: Vec<ShardCell> = tasks.into_iter().map(|t| slots[&t].cell.clone()).collect();
        let mut scheduling = CacheStats::default();
        for c in &cells {
            scheduling.absorb(c.scheduling);
        }
        Ok(SweepShard {
            signature: signature.clone(),
            index: 0,
            count: 1,
            role: ShardRole::Shard,
            scheduling,
            cells,
            provenance: None,
        })
    }

    /// Resolves artifacts delivered **at-least-once** into a single
    /// consolidated `1/1` artifact — the duplicate-tolerant sibling of
    /// [`SweepShard::consolidate`] for lease-based delivery, where the
    /// same grid cell can legitimately arrive more than once: a lease
    /// expires, its cells are re-leased, and then *both* workers
    /// deliver.
    ///
    /// Where `merge`/`consolidate` treat a twice-reported cell as
    /// [`ConfigError::OverlappingShards`], `reconcile` picks one winner
    /// per slot under a total order — a healthy outcome beats a failed
    /// one, and ties fall to the smaller `Debug` rendering — so the
    /// result is **permutation-invariant** over delivery order and each
    /// cell's `CacheStats` is counted exactly once, no matter how many
    /// duplicates arrived. Shard roles and indices are ignored: every
    /// delivered cell is a candidate. Gaps are allowed, as in
    /// `consolidate`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::MissingShards`] — `shards` is empty;
    /// * [`ConfigError::IncompatibleShards`] — signatures disagree, or a
    ///   cell lies outside the signature's grid;
    /// * [`ConfigError::OversizedGrid`] — the declared grid is beyond
    ///   any real corpus (a corrupt artifact).
    pub fn reconcile(shards: &[SweepShard]) -> Result<SweepShard, PipelineError> {
        let config = |e: ConfigError| PipelineError::config(e);
        let first = shards.first().ok_or(config(ConfigError::MissingShards))?;
        let signature = &first.signature;
        for s in shards {
            if s.signature != *signature {
                return Err(config(ConfigError::IncompatibleShards));
            }
        }
        let total = signature.total_tasks();
        if total > MAX_GRID_CELLS {
            return Err(config(ConfigError::OversizedGrid { cells: total }));
        }
        let mut slots: HashMap<u64, &ShardCell> = HashMap::new();
        for s in shards {
            for cell in &s.cells {
                let t = usize::try_from(cell.task)
                    .ok()
                    .filter(|&t| t < total)
                    .map(|_| cell.task)
                    .ok_or(config(ConfigError::IncompatibleShards))?;
                match slots.entry(t) {
                    Entry::Vacant(e) => {
                        e.insert(cell);
                    }
                    Entry::Occupied(mut e) => {
                        if prefer_cell(cell, e.get()) {
                            e.insert(cell);
                        }
                    }
                }
            }
        }
        let mut tasks: Vec<u64> = slots.keys().copied().collect();
        tasks.sort_unstable();
        let cells: Vec<ShardCell> = tasks.into_iter().map(|t| slots[&t].clone()).collect();
        let mut scheduling = CacheStats::default();
        for c in &cells {
            scheduling.absorb(c.scheduling);
        }
        Ok(SweepShard {
            signature: signature.clone(),
            index: 0,
            count: 1,
            role: ShardRole::Shard,
            scheduling,
            cells,
            provenance: None,
        })
    }
}

/// The [`SweepShard::reconcile`] winner rule: `a` strictly beats `b`
/// when `a` is healthy and `b` failed, or — at equal health — when `a`'s
/// `Debug` rendering is lexicographically smaller. A total order over
/// cell payloads, so the winner of any multiset of deliveries is
/// independent of arrival order.
fn prefer_cell(a: &ShardCell, b: &ShardCell) -> bool {
    match (a.outcome.is_ok(), b.outcome.is_ok()) {
        (true, false) => true,
        (false, true) => false,
        _ => format!("{a:?}") < format!("{b:?}"),
    }
}

/// A resolved grid slot: the winning cell and whether a heal artifact
/// provided it.
struct Slot<'a> {
    cell: &'a ShardCell,
    healed: bool,
}

/// Validates a shard set (heal artifacts included) and resolves every
/// reported cell to one winner per grid slot:
///
/// * primary shards must agree on signature and count, carry unique
///   in-range indices, and may not claim a slot twice;
/// * heal cells fill empty slots or supersede **failed** cells — a heal
///   cell over a healthy cell, or two heal cells on one slot, trips
///   [`ConfigError::OverlappingShards`] (a heal covers exactly what a
///   prior merge reported failed/missing; layered heals consolidate
///   between rounds).
///
/// Resolution is permutation-invariant: base-vs-base and heal-vs-heal
/// conflicts are errors regardless of order, and heal-supersedes-failed
/// does not depend on input order because heal cells are applied after
/// every primary cell.
fn resolve(
    shards: &[SweepShard],
) -> Result<(&GridSignature, HashMap<u64, Slot<'_>>), PipelineError> {
    let config = |e: ConfigError| PipelineError::config(e);
    let first = shards.first().ok_or(config(ConfigError::MissingShards))?;
    let signature = &first.signature;
    for s in shards {
        if s.signature != *signature {
            return Err(config(ConfigError::IncompatibleShards));
        }
    }
    let total = signature.total_tasks();
    if total > MAX_GRID_CELLS {
        return Err(config(ConfigError::OversizedGrid { cells: total }));
    }
    let base: Vec<&SweepShard> = shards
        .iter()
        .filter(|s| s.role == ShardRole::Shard)
        .collect();
    let heals: Vec<&SweepShard> = shards
        .iter()
        .filter(|s| s.role == ShardRole::Heal)
        .collect();
    if let Some(count) = base.first().map(|s| s.count) {
        let mut seen: HashSet<u32> = HashSet::with_capacity(base.len());
        for s in &base {
            if s.count != count {
                return Err(config(ConfigError::IncompatibleShards));
            }
            if s.index >= count {
                return Err(config(ConfigError::InvalidShard {
                    index: s.index,
                    count,
                }));
            }
            if !seen.insert(s.index) {
                return Err(config(ConfigError::OverlappingShards));
            }
        }
    }

    let in_grid = |cell: &ShardCell| {
        usize::try_from(cell.task)
            .ok()
            .filter(|&t| t < total)
            .map(|_| cell.task)
            .ok_or(config(ConfigError::IncompatibleShards))
    };
    let mut slots: HashMap<u64, Slot<'_>> =
        HashMap::with_capacity(shards.iter().map(SweepShard::cell_count).sum());
    for s in &base {
        for cell in &s.cells {
            let t = in_grid(cell)?;
            if slots
                .insert(
                    t,
                    Slot {
                        cell,
                        healed: false,
                    },
                )
                .is_some()
            {
                return Err(config(ConfigError::OverlappingShards));
            }
        }
    }
    for s in &heals {
        for cell in &s.cells {
            let t = in_grid(cell)?;
            match slots.entry(t) {
                Entry::Vacant(e) => {
                    e.insert(Slot { cell, healed: true });
                }
                Entry::Occupied(mut e) => {
                    let held = e.get();
                    if held.healed || held.cell.outcome.is_ok() {
                        return Err(config(ConfigError::OverlappingShards));
                    }
                    e.insert(Slot { cell, healed: true });
                }
            }
        }
    }
    Ok((signature, slots))
}
