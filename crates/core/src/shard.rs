//! Sharded sweep execution: the serializable [`SweepShard`] artifact
//! produced by [`crate::Sweep::shard`] and the validated merge that
//! reassembles shards into one [`PartialSweep`].
//!
//! The experiment grid is embarrassingly partitionable: every
//! `(machine, loop)` cell is independent, and all cross-cell arithmetic
//! (curve percentages, corpus cycle totals, relative performance)
//! happens in one assembly pass at the end. A shard therefore carries
//! the grid cells it evaluated **raw** — per-loop analyses and
//! evaluations, all-integer payloads — plus a [`GridSignature`]
//! identifying the sweep it came from. [`SweepShard::merge`] checks the
//! signatures, checks that the shards partition the grid exactly, puts
//! the cells back in grid order, and runs the *same* assembly code as
//! [`crate::Sweep::run_sequential`]; the merged report is bit-identical
//! to an unsharded run, including after a JSON round trip.
//!
//! ```
//! use ncdrf::{Model, Sweep, SweepShard};
//! use ncdrf::corpus::Corpus;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let corpus = Corpus::small().take(6);
//! let sweep = Sweep::new(&corpus)
//!     .clustered_latencies([3])
//!     .models(Model::all())
//!     .budget(32);
//! // Run the grid as three shards (in one process here; `shard_runner`
//! // does the same across processes via JSON files)...
//! let shards: Vec<SweepShard> = (0..3).map(|i| sweep.shard(i, 3)).collect::<Result<_, _>>()?;
//! // ...and reassemble: bit-identical to the unsharded run.
//! let merged = SweepShard::merge(&shards)?;
//! assert_eq!(merged.report, sweep.run_sequential()?);
//! # Ok(())
//! # }
//! ```

use crate::model::Model;
use crate::pipeline::{ConfigError, PipelineError};
use crate::session::CacheStats;
use crate::sweep::{assemble_cells, LoopCell, PartialSweep, SweepReport};

/// The aspects of a machine the report assembly depends on. Shards carry
/// these instead of full machine descriptions: merging only needs to
/// label rows (`name`), anchor latencies and normalize traffic density
/// (`ports`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSig {
    /// Machine preset name (`C2L3`, `P1L6`, ...).
    pub name: String,
    /// Functional-unit latency (the machine's slowest group).
    pub latency: u32,
    /// Memory ports (the traffic-density denominator).
    pub ports: u32,
}

/// Everything that identifies the grid a shard was cut from. Two shards
/// merge only if their signatures are equal — same machines in the same
/// order, same model/point/budget sets, same corpus (by name *and* loop
/// list) and same pipeline options.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSignature {
    /// Corpus name (`small`, `standard`, ...).
    pub corpus: String,
    /// Loop names in corpus order (the grid's minor axis).
    pub loops: Vec<String>,
    /// Machine signatures in grid order (the grid's major axis).
    pub machines: Vec<MachineSig>,
    /// Model set, in evaluation order.
    pub models: Vec<Model>,
    /// Distribution sample points.
    pub points: Vec<u32>,
    /// Register budgets.
    pub budgets: Vec<u32>,
    /// Fingerprint of the [`crate::PipelineOptions`] (their `Debug`
    /// rendering) — results depend on them, so shards evaluated under
    /// different options must not merge.
    pub options: String,
}

impl GridSignature {
    /// Total number of grid cells (`machines × loops`).
    pub fn total_tasks(&self) -> usize {
        self.machines.len() * self.loops.len()
    }
}

/// One evaluated cell of a shard: the flattened task index, the loop's
/// name (for error reporting without the corpus at hand), and either the
/// raw results or the per-pair failure.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardCell {
    /// Flattened machine-major task index (`machine * loops + loop`).
    pub(crate) task: u64,
    /// Name of the cell's loop.
    pub(crate) loop_name: String,
    /// The cell's results, or why it has none.
    pub(crate) outcome: Result<LoopCell, PipelineError>,
}

/// One shard of a sweep's task grid: raw per-cell results plus the
/// [`GridSignature`] needed to validate and reassemble a merge.
///
/// Produced by [`crate::Sweep::shard`] in-process, or parsed back from
/// the JSON emitted by [`crate::Render`] (see
/// [`crate::parse_sweep_shard`]) when shards cross process or
/// host boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepShard {
    pub(crate) signature: GridSignature,
    pub(crate) index: u32,
    pub(crate) count: u32,
    pub(crate) scheduling: CacheStats,
    pub(crate) cells: Vec<ShardCell>,
}

impl SweepShard {
    /// Internal constructor shared by [`crate::Sweep::shard`] and the
    /// JSON parser.
    pub(crate) fn assemble_parts(
        signature: GridSignature,
        index: u32,
        count: u32,
        scheduling: CacheStats,
        cells: Vec<ShardCell>,
    ) -> SweepShard {
        SweepShard {
            signature,
            index,
            count,
            scheduling,
            cells,
        }
    }

    /// The grid this shard was cut from.
    pub fn signature(&self) -> &GridSignature {
        &self.signature
    }

    /// This shard's index (`0..count`).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards the grid was cut into.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Schedule-cache counters of this shard's sessions. Cells partition
    /// across shards and all cache reuse is per-cell, so these sum to
    /// the unsharded run's counters.
    pub fn scheduling(&self) -> CacheStats {
        self.scheduling
    }

    /// Number of grid cells this shard evaluated (including failures).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of this shard's cells that failed.
    pub fn failure_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// Reassembles a full sweep from its shards, in any order.
    ///
    /// Validates, then rebuilds: cells return to grid (machine-major,
    /// corpus) order, each machine's survivors are aggregated by the
    /// same code as [`crate::Sweep::run_sequential`], failures become the
    /// error list in grid order, and cache counters sum in shard-index
    /// order. The result is **bit-identical** to
    /// [`crate::Sweep::run_partial`] on the whole grid — and, when
    /// complete, its report equals `run_sequential`'s. Because the merge
    /// sorts by task index, it is invariant under permutation of
    /// `shards` (property-tested in `tests/proptest_shard.rs`).
    ///
    /// Counters and failures are attributed per **cell**, so a machine
    /// whose loops were split across several shards — the normal case —
    /// contributes each failed pair once and its cache counters once,
    /// never per shard.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::MissingShards`] — `shards` is empty, a shard
    ///   index is absent, or a grid cell was reported by no shard;
    /// * [`ConfigError::OverlappingShards`] — a shard index or grid cell
    ///   appears twice;
    /// * [`ConfigError::IncompatibleShards`] — signatures or shard
    ///   counts disagree, or a cell lies outside the signature's grid;
    /// * [`ConfigError::InvalidShard`] — a shard's index is not below
    ///   its count.
    pub fn merge(shards: &[SweepShard]) -> Result<PartialSweep, PipelineError> {
        let config = |e: ConfigError| PipelineError::config(e);
        let first = shards.first().ok_or(config(ConfigError::MissingShards))?;
        let count = first.count;
        let signature = &first.signature;
        for s in shards {
            if s.count != count || s.signature != *signature {
                return Err(config(ConfigError::IncompatibleShards));
            }
            if s.index >= count {
                return Err(config(ConfigError::InvalidShard {
                    index: s.index,
                    count,
                }));
            }
        }
        // Size sanity before any declared-size-proportional allocation:
        // artifacts come from disk, so a corrupt `count` or grid
        // declaration must fail with a named error, not an abort inside
        // a huge `vec!`. A valid set has exactly one shard per index and
        // exactly one cell per grid slot, so the declared sizes must
        // match what is actually present.
        if (count as usize) > shards.len() {
            return Err(config(ConfigError::MissingShards));
        }
        if (count as usize) < shards.len() {
            return Err(config(ConfigError::OverlappingShards));
        }
        let total = signature.total_tasks();
        let present: usize = shards.iter().map(SweepShard::cell_count).sum();
        if present < total {
            return Err(config(ConfigError::MissingShards));
        }
        if present > total {
            return Err(config(ConfigError::OverlappingShards));
        }
        // Both allocations below are now bounded by the bytes actually
        // parsed: `count == shards.len()` and `total == Σ cells`.
        let mut seen = vec![false; count as usize];
        for s in shards {
            if std::mem::replace(&mut seen[s.index as usize], true) {
                return Err(config(ConfigError::OverlappingShards));
            }
        }

        // Cells back into grid order, each exactly once.
        let mut slots: Vec<Option<&ShardCell>> = vec![None; total];
        // Shard order must not matter: visit shards by index.
        let mut by_index: Vec<&SweepShard> = shards.iter().collect();
        by_index.sort_by_key(|s| s.index);
        let mut scheduling = CacheStats::default();
        for s in &by_index {
            scheduling.absorb(s.scheduling);
            for cell in &s.cells {
                let t = usize::try_from(cell.task)
                    .ok()
                    .filter(|&t| t < total)
                    .ok_or(config(ConfigError::IncompatibleShards))?;
                if slots[t].replace(cell).is_some() {
                    return Err(config(ConfigError::OverlappingShards));
                }
            }
        }
        if slots.iter().any(|s| s.is_none()) {
            return Err(config(ConfigError::MissingShards));
        }

        // Reassemble exactly as `run_partial` over the full grid does:
        // per machine, survivors aggregate and failures list, both in
        // corpus order.
        let n = signature.loops.len();
        let mut report = SweepReport::default();
        let mut errors = Vec::new();
        for (mi, machine) in signature.machines.iter().enumerate() {
            let mut ok = Vec::new();
            for li in 0..n {
                let cell = slots[mi * n + li].expect("all slots verified filled");
                match &cell.outcome {
                    Ok(c) => ok.push(c.clone()),
                    Err(e) => errors.push(e.clone()),
                }
            }
            assemble_cells(
                &mut report,
                &machine.name,
                machine.latency,
                machine.ports,
                &signature.models,
                &signature.points,
                &signature.budgets,
                &ok,
                n == 0,
            );
        }
        report.scheduling = scheduling;
        Ok(PartialSweep { report, errors })
    }
}
