//! The register-file model space: a [`ModelSpec`] trait plus a process-wide
//! [`ModelRegistry`], with the paper's four §5.2 organisations as built-in
//! registrations behind the deprecated [`Model`] enum shim.
//!
//! Every stage of the pipeline — [`Session`](crate::Session) caching,
//! [`Sweep`](crate::Sweep) grids, shard artifacts, farm job specs — carries a
//! [`ModelId`]: a small `Copy` handle resolved through the registry. The
//! registry owns the stable wire names (`"ideal"`, `"unified"`, …) used in
//! `GridSignature`, shard-artifact JSON, report JSON, and farm job specs, so
//! new register-file organisations drop into the whole stack by registering a
//! [`ModelSpec`] — no enum to extend, no machinery to touch.

use ncdrf_ddg::Loop;
use ncdrf_regalloc::Lifetime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use crate::pipeline::ConfigError;

/// A registered register-file model, identified by its slot in the
/// process-wide [`ModelRegistry`].
///
/// `ModelId` is the currency the pipeline passes around: `Copy`, hashable,
/// and ordered by registration index (the paper's four models occupy slots
/// 0–3 in presentation order, so sorting by `ModelId` reproduces the paper's
/// ordering). The stable *name* — what appears in reports and artifacts —
/// lives in the registry; [`Display`](fmt::Display) looks it up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModelId(u16);

impl ModelId {
    /// Infinite registers (upper bound). Wire name `"ideal"`.
    pub const IDEAL: ModelId = ModelId(0);
    /// Unified / consistent dual register file. Wire name `"unified"`.
    pub const UNIFIED: ModelId = ModelId(1);
    /// Non-consistent dual register file, no swapping. Wire name
    /// `"partitioned"`.
    pub const PARTITIONED: ModelId = ModelId(2);
    /// Non-consistent dual register file with operation swapping. Wire name
    /// `"swapped"`.
    pub const SWAPPED: ModelId = ModelId(3);
    /// Read-port-constrained unified file (arXiv:2502.00147): port pressure
    /// raises the effective requirement. Wire name `"port-limited"`.
    pub const PORT_LIMITED: ModelId = ModelId(4);
    /// Compressed register file (arXiv:2006.05693): compressibility scales
    /// the effective capacity. Wire name `"compressed"`.
    pub const COMPRESSED: ModelId = ModelId(5);

    /// The registry slot this ID names. Stable for the lifetime of the
    /// process (models are never unregistered).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The model's stable wire name, looked up in the registry.
    pub fn name(self) -> String {
        ModelRegistry::name(self)
    }

    /// The model's behaviour specification.
    pub fn spec(self) -> Arc<dyn ModelSpec> {
        ModelRegistry::spec(self)
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ModelRegistry::name(*self))
    }
}

impl std::str::FromStr for ModelId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelRegistry::resolve(s).ok_or_else(|| format!("unknown model `{s}`"))
    }
}

/// Per-loop context handed to [`ModelSpec::effective_requirement`].
///
/// Everything here is computed by the pipeline anyway; the hook only gets a
/// read-only view, so transforms stay deterministic functions of the
/// schedule.
pub struct RequirementCtx<'a> {
    /// The loop being allocated.
    pub l: &'a Loop,
    /// The achieved initiation interval of the schedule.
    pub ii: u32,
    /// The value lifetimes the base requirement was computed from.
    pub lifetimes: &'a [Lifetime],
}

impl RequirementCtx<'_> {
    /// Total register-operand reads in the loop body: every
    /// producer-to-consumer edge counts once per consuming operand slot.
    pub fn total_reads(&self) -> u64 {
        self.l.consumers().iter().map(|c| c.len() as u64).sum()
    }
}

/// Behaviour of one register-file organisation — everything the pipeline
/// branches on.
///
/// The four paper models are expressed entirely by the three classification
/// flags; new families additionally reshape the per-loop register requirement
/// through [`effective_requirement`](ModelSpec::effective_requirement), which
/// runs *after* the base unified/dual allocation so the built-ins stay
/// bit-identical to the pre-registry pipeline.
pub trait ModelSpec: Send + Sync {
    /// The stable wire name, used in reports, shard artifacts, and farm job
    /// specs. Must be unique across the registry.
    fn name(&self) -> &str;

    /// Whether allocation runs on the non-consistent dual file (larger
    /// subfile is the requirement) instead of the unified file.
    fn is_dual(&self) -> bool {
        false
    }

    /// Whether the greedy post-scheduling cluster-swapping pass runs before
    /// allocation. Implies dual allocation in the built-ins.
    fn swaps(&self) -> bool {
        false
    }

    /// Whether this model has infinitely many registers (requirement 0, the
    /// performance upper bound).
    fn is_ideal(&self) -> bool {
        false
    }

    /// Transforms the base allocated requirement into the model's effective
    /// requirement. The default is the identity, which every paper model
    /// uses; the hook must be a pure function of its arguments (bit-identity
    /// across shards depends on it).
    fn effective_requirement(&self, raw: u32, ctx: &RequirementCtx<'_>) -> u32 {
        let _ = ctx;
        raw
    }
}

/// A paper built-in: fully described by its classification flags.
struct BuiltinSpec {
    name: &'static str,
    dual: bool,
    swaps: bool,
    ideal: bool,
}

impl ModelSpec for BuiltinSpec {
    fn name(&self) -> &str {
        self.name
    }
    fn is_dual(&self) -> bool {
        self.dual
    }
    fn swaps(&self) -> bool {
        self.swaps
    }
    fn is_ideal(&self) -> bool {
        self.ideal
    }
}

/// Read-port-constrained unified register file, after the PRF read-port
/// reduction literature (arXiv:2502.00147).
///
/// A file with `read_ports` ports must sustain the loop's read bandwidth;
/// when the steady-state reads per cycle (`ceil(total_reads / II)`) exceed
/// the port count, the shortfall is charged to the requirement — each excess
/// read per cycle costs one staging register to buffer operands across port
/// conflicts. Allocation itself is unified; only the requirement grows.
pub struct PortLimitedSpec {
    /// Number of read ports on the unified file.
    pub read_ports: u32,
}

/// Read-port budget of the built-in `"port-limited"` registration. One
/// port is the extreme design point of the port-reduction literature
/// (all other reads come from operand buffers): on the clustered
/// machines the steady-state read bandwidth of nearly every
/// software-pipelined loop exceeds it, so the model visibly charges
/// staging registers, whereas at two or more ports this corpus is
/// indistinguishable from the plain unified file.
pub const PORT_LIMITED_READ_PORTS: u32 = 1;

impl ModelSpec for PortLimitedSpec {
    fn name(&self) -> &str {
        "port-limited"
    }

    fn effective_requirement(&self, raw: u32, ctx: &RequirementCtx<'_>) -> u32 {
        let ii = u64::from(ctx.ii.max(1));
        let reads = ctx.total_reads();
        let per_cycle = reads.div_ceil(ii);
        let excess = per_cycle.saturating_sub(u64::from(self.read_ports));
        raw.saturating_add(excess.min(u64::from(u32::MAX)) as u32)
    }
}

/// Compressed register file, after static register-data compression
/// (arXiv:2006.05693).
///
/// Compression packs values so `capacity_num` architectural registers fit in
/// `capacity_den` physical ones; equivalently the physical requirement is the
/// base requirement scaled by `den/num`, rounded up (a value never occupies
/// less than a fraction of a register deterministically).
pub struct CompressedSpec {
    /// Capacity scale numerator: architectural registers representable…
    pub capacity_num: u32,
    /// …per this many physical registers.
    pub capacity_den: u32,
}

/// Capacity scale of the built-in `"compressed"` registration: 4
/// architectural registers per 3 physical (a conservative 1.33× ratio).
pub const COMPRESSED_CAPACITY: (u32, u32) = (4, 3);

impl ModelSpec for CompressedSpec {
    fn name(&self) -> &str {
        "compressed"
    }

    fn effective_requirement(&self, raw: u32, _ctx: &RequirementCtx<'_>) -> u32 {
        let num = u64::from(self.capacity_num.max(1));
        let den = u64::from(self.capacity_den.max(1));
        let scaled = (u64::from(raw) * den).div_ceil(num);
        scaled.min(u64::from(u32::MAX)) as u32
    }
}

/// Error from [`ModelRegistry::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A model with this wire name is already registered.
    DuplicateName(String),
    /// The registry is full (`u16::MAX` slots).
    Exhausted,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "a model named `{name}` is already registered")
            }
            RegistryError::Exhausted => f.write_str("model registry is full"),
        }
    }
}

impl std::error::Error for RegistryError {}

struct RegistryInner {
    specs: Vec<Arc<dyn ModelSpec>>,
    by_name: HashMap<String, u16>,
}

impl RegistryInner {
    fn push(&mut self, spec: Arc<dyn ModelSpec>) -> Result<ModelId, RegistryError> {
        let name = spec.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(RegistryError::DuplicateName(name));
        }
        if self.specs.len() >= usize::from(u16::MAX) {
            return Err(RegistryError::Exhausted);
        }
        let id = self.specs.len() as u16;
        self.by_name.insert(name, id);
        self.specs.push(spec);
        Ok(ModelId(id))
    }
}

fn registry() -> &'static RwLock<RegistryInner> {
    static REGISTRY: OnceLock<RwLock<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut inner = RegistryInner {
            specs: Vec::new(),
            by_name: HashMap::new(),
        };
        let builtins: [Arc<dyn ModelSpec>; 6] = [
            Arc::new(BuiltinSpec {
                name: "ideal",
                dual: false,
                swaps: false,
                ideal: true,
            }),
            Arc::new(BuiltinSpec {
                name: "unified",
                dual: false,
                swaps: false,
                ideal: false,
            }),
            Arc::new(BuiltinSpec {
                name: "partitioned",
                dual: true,
                swaps: false,
                ideal: false,
            }),
            Arc::new(BuiltinSpec {
                name: "swapped",
                dual: true,
                swaps: true,
                ideal: false,
            }),
            Arc::new(PortLimitedSpec {
                read_ports: PORT_LIMITED_READ_PORTS,
            }),
            Arc::new(CompressedSpec {
                capacity_num: COMPRESSED_CAPACITY.0,
                capacity_den: COMPRESSED_CAPACITY.1,
            }),
        ];
        for spec in builtins {
            inner.push(spec).expect("built-in model names are distinct");
        }
        RwLock::new(inner)
    })
}

/// The process-wide model registry.
///
/// Seeded with the six built-ins (the paper's four at slots 0–3, then
/// `"port-limited"` and `"compressed"`); user models append after them.
/// Registration order is the iteration order and never changes — IDs are
/// stable for the process lifetime.
pub struct ModelRegistry;

impl ModelRegistry {
    /// Registers a new model and returns its ID. Rejects a spec whose wire
    /// name collides with an existing registration.
    pub fn register(spec: impl ModelSpec + 'static) -> Result<ModelId, RegistryError> {
        Self::register_arc(Arc::new(spec))
    }

    /// Registers a pre-shared spec — for callers that keep their own
    /// handle to it alongside the registry's.
    pub fn register_arc(spec: Arc<dyn ModelSpec>) -> Result<ModelId, RegistryError> {
        registry()
            .write()
            .expect("model registry lock poisoned")
            .push(spec)
    }

    /// Resolves a stable wire name to its ID.
    pub fn resolve(name: &str) -> Option<ModelId> {
        registry()
            .read()
            .expect("model registry lock poisoned")
            .by_name
            .get(name)
            .copied()
            .map(ModelId)
    }

    /// All registered model IDs, in registration order (deterministic; the
    /// built-ins always lead).
    pub fn ids() -> Vec<ModelId> {
        let n = registry()
            .read()
            .expect("model registry lock poisoned")
            .specs
            .len();
        (0..n as u16).map(ModelId).collect()
    }

    /// The wire name of a registered model.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry (impossible for IDs
    /// obtained through the public API).
    pub fn name(id: ModelId) -> String {
        registry()
            .read()
            .expect("model registry lock poisoned")
            .specs
            .get(id.index())
            .map(|s| s.name().to_string())
            .unwrap_or_else(|| panic!("model id {} names no registered model", id.0))
    }

    /// The behaviour spec of a registered model.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn spec(id: ModelId) -> Arc<dyn ModelSpec> {
        registry()
            .read()
            .expect("model registry lock poisoned")
            .specs
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| panic!("model id {} names no registered model", id.0))
    }
}

/// Resolves a list of wire names through the registry, reporting the first
/// unknown name as [`ConfigError::UnknownModel`].
///
/// This is the validation path shared by artifact parsing presets and the
/// farm's job-spec intake.
pub fn resolve_models<I, S>(names: I) -> Result<Vec<ModelId>, ConfigError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    names
        .into_iter()
        .map(|name| {
            let name = name.as_ref();
            ModelRegistry::resolve(name).ok_or_else(|| ConfigError::UnknownModel {
                name: name.to_string(),
            })
        })
        .collect()
}

/// The paper's four evaluation models (§5.2), by registry ID, in the
/// paper's presentation order — the default model set of a fresh
/// [`Sweep`](crate::Sweep).
pub const PAPER_MODELS: [ModelId; 4] = [
    ModelId::IDEAL,
    ModelId::UNIFIED,
    ModelId::PARTITIONED,
    ModelId::SWAPPED,
];

/// The three finite-register paper models (those that can require spill
/// code), by registry ID.
pub const PAPER_FINITE_MODELS: [ModelId; 3] =
    [ModelId::UNIFIED, ModelId::PARTITIONED, ModelId::SWAPPED];

/// The paper's four evaluation models (§5.2) — a deprecated shim over the
/// registry built-ins.
///
/// Retained `Copy`-compatible for one release: everywhere the pipeline used
/// to take a `Model` it now takes `impl Into<ModelId>`, and `Model` converts
/// losslessly into the matching built-in ID. New code should use the
/// [`ModelId`] constants directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// Infinite registers (upper bound).
    Ideal,
    /// Unified / consistent dual register file.
    Unified,
    /// Non-consistent dual register file, no swapping.
    Partitioned,
    /// Non-consistent dual register file with operation swapping.
    Swapped,
}

impl Model {
    /// All paper models, in the paper's presentation order. These are the
    /// default model set of a fresh [`Sweep`](crate::Sweep).
    pub fn all() -> [Model; 4] {
        [
            Model::Ideal,
            Model::Unified,
            Model::Partitioned,
            Model::Swapped,
        ]
    }

    /// The three finite-register paper models (those that can require spill
    /// code).
    pub fn finite() -> [Model; 3] {
        [Model::Unified, Model::Partitioned, Model::Swapped]
    }

    /// Whether this model allocates on the non-consistent dual file.
    #[deprecated(note = "query the registry instead: `id.spec().is_dual()`")]
    pub fn is_dual(self) -> bool {
        ModelId::from(self).spec().is_dual()
    }

    /// Whether this model runs the swapping pass.
    #[deprecated(note = "query the registry instead: `id.spec().swaps()`")]
    pub fn swaps(self) -> bool {
        ModelId::from(self).spec().swaps()
    }

    /// The paper model with the given wire name, resolved through the
    /// registry (`"ideal"`, `"unified"`, `"partitioned"`, `"swapped"`).
    #[deprecated(
        note = "use `ModelRegistry::resolve`, which also finds registered non-paper models"
    )]
    pub fn from_name(name: &str) -> Option<Model> {
        match ModelRegistry::resolve(name)? {
            ModelId::IDEAL => Some(Model::Ideal),
            ModelId::UNIFIED => Some(Model::Unified),
            ModelId::PARTITIONED => Some(Model::Partitioned),
            ModelId::SWAPPED => Some(Model::Swapped),
            _ => None,
        }
    }
}

impl From<Model> for ModelId {
    fn from(m: Model) -> ModelId {
        match m {
            Model::Ideal => ModelId::IDEAL,
            Model::Unified => ModelId::UNIFIED,
            Model::Partitioned => ModelId::PARTITIONED,
            Model::Swapped => ModelId::SWAPPED,
        }
    }
}

impl PartialEq<Model> for ModelId {
    fn eq(&self, other: &Model) -> bool {
        *self == ModelId::from(*other)
    }
}

impl PartialEq<ModelId> for Model {
    fn eq(&self, other: &ModelId) -> bool {
        ModelId::from(*self) == *other
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        #[allow(deprecated)]
        Model::from_name(s).ok_or_else(|| format!("unknown model `{s}`"))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ModelId::from(*self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        let names: Vec<String> = Model::all().iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["ideal", "unified", "partitioned", "swapped"]);
    }

    #[test]
    #[allow(deprecated)]
    fn names_round_trip() {
        for m in Model::all() {
            assert_eq!(Model::from_name(&m.to_string()), Some(m));
            assert_eq!(m.to_string().parse::<Model>(), Ok(m));
        }
        assert_eq!(Model::from_name("POWER2"), None);
        assert!("".parse::<Model>().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn classification_helpers() {
        assert!(!Model::Unified.is_dual());
        assert!(Model::Partitioned.is_dual());
        assert!(Model::Swapped.is_dual());
        assert!(Model::Swapped.swaps());
        assert!(!Model::Partitioned.swaps());
        assert_eq!(Model::finite().len(), 3);
    }

    #[test]
    fn builtin_ids_are_stable() {
        assert_eq!(ModelRegistry::resolve("ideal"), Some(ModelId::IDEAL));
        assert_eq!(ModelRegistry::resolve("unified"), Some(ModelId::UNIFIED));
        assert_eq!(
            ModelRegistry::resolve("partitioned"),
            Some(ModelId::PARTITIONED)
        );
        assert_eq!(ModelRegistry::resolve("swapped"), Some(ModelId::SWAPPED));
        assert_eq!(
            ModelRegistry::resolve("port-limited"),
            Some(ModelId::PORT_LIMITED)
        );
        assert_eq!(
            ModelRegistry::resolve("compressed"),
            Some(ModelId::COMPRESSED)
        );
        assert_eq!(ModelRegistry::resolve("POWER2"), None);
    }

    #[test]
    fn enum_shim_converts_and_compares() {
        assert_eq!(ModelId::from(Model::Ideal), ModelId::IDEAL);
        assert_eq!(ModelId::from(Model::Swapped), ModelId::SWAPPED);
        assert!(ModelId::UNIFIED == Model::Unified);
        assert!(Model::Unified == ModelId::UNIFIED);
        assert!(ModelId::PORT_LIMITED != Model::Unified);
    }

    #[test]
    fn spec_flags_match_paper_classification() {
        assert!(ModelId::IDEAL.spec().is_ideal());
        assert!(!ModelId::UNIFIED.spec().is_dual());
        assert!(ModelId::PARTITIONED.spec().is_dual());
        assert!(!ModelId::PARTITIONED.spec().swaps());
        assert!(ModelId::SWAPPED.spec().is_dual());
        assert!(ModelId::SWAPPED.spec().swaps());
        assert!(!ModelId::PORT_LIMITED.spec().is_dual());
        assert!(!ModelId::COMPRESSED.spec().is_dual());
    }

    #[test]
    fn compressed_requirement_rounds_up() {
        let spec = CompressedSpec {
            capacity_num: 4,
            capacity_den: 3,
        };
        // ceil(raw * 3/4): 0→0, 1→1, 4→3, 5→4, 8→6.
        let l = ncdrf_corpus::kernels::blas::daxpy();
        let ctx = RequirementCtx {
            l: &l,
            ii: 1,
            lifetimes: &[],
        };
        for (raw, want) in [(0, 0), (1, 1), (4, 3), (5, 4), (8, 6)] {
            assert_eq!(spec.effective_requirement(raw, &ctx), want);
        }
    }

    #[test]
    fn port_limited_charges_excess_reads() {
        let l = ncdrf_corpus::kernels::blas::daxpy();
        let reads: u64 = l.consumers().iter().map(|c| c.len() as u64).sum();
        assert!(reads > 0, "example loop must have register reads");
        let ctx = RequirementCtx {
            l: &l,
            ii: 1,
            lifetimes: &[],
        };
        // With more ports than reads-per-cycle the requirement is untouched.
        let roomy = PortLimitedSpec {
            read_ports: reads as u32 + 1,
        };
        assert_eq!(roomy.effective_requirement(7, &ctx), 7);
        // With zero ports every steady-state read is charged.
        let starved = PortLimitedSpec { read_ports: 0 };
        assert_eq!(starved.effective_requirement(7, &ctx), 7 + reads as u32);
    }

    #[test]
    fn resolve_models_reports_offender() {
        let ok = resolve_models(["unified", "compressed"]).unwrap();
        assert_eq!(ok, vec![ModelId::UNIFIED, ModelId::COMPRESSED]);
        let err = resolve_models(["unified", "racetrack", "ideal"]).unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownModel {
                name: "racetrack".to_string()
            }
        );
    }
}
