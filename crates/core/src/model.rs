//! The four evaluation models of the paper's §5.2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A register-file organisation / management model.
///
/// The paper's experiments compare four models on the same clustered
/// datapath (2 adders, 2 multipliers, 2 load/store units — one of each per
/// cluster):
///
/// * [`Model::Ideal`] — infinitely many registers; the performance upper
///   bound.
/// * [`Model::Unified`] — one rotating register file readable by every
///   unit (equivalently, a *consistent* dual file à la POWER2: both
///   subfiles always hold the same contents, so the requirement equals
///   the unified one).
/// * [`Model::Partitioned`] — the **non-consistent dual register file**:
///   values consumed by both clusters are replicated (global), values
///   consumed by one cluster live only in that subfile; the requirement
///   is the larger subfile.
/// * [`Model::Swapped`] — partitioned plus the greedy post-scheduling
///   cluster-swapping pass that localises values and balances subfiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// Infinite registers (upper bound).
    Ideal,
    /// Unified / consistent dual register file.
    Unified,
    /// Non-consistent dual register file, no swapping.
    Partitioned,
    /// Non-consistent dual register file with operation swapping.
    Swapped,
}

impl Model {
    /// All models, in the paper's presentation order.
    pub fn all() -> [Model; 4] {
        [
            Model::Ideal,
            Model::Unified,
            Model::Partitioned,
            Model::Swapped,
        ]
    }

    /// The three finite-register models (those that can require spill
    /// code).
    pub fn finite() -> [Model; 3] {
        [Model::Unified, Model::Partitioned, Model::Swapped]
    }

    /// Whether this model allocates on the non-consistent dual file.
    pub fn is_dual(self) -> bool {
        matches!(self, Model::Partitioned | Model::Swapped)
    }

    /// Whether this model runs the swapping pass.
    pub fn swaps(self) -> bool {
        self == Model::Swapped
    }

    /// The model with the given [`Display`](fmt::Display) name, used when
    /// parsing serialized reports back (`"ideal"`, `"unified"`,
    /// `"partitioned"`, `"swapped"`).
    pub fn from_name(name: &str) -> Option<Model> {
        Model::all().into_iter().find(|m| m.to_string() == name)
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Model::from_name(s).ok_or_else(|| format!("unknown model `{s}`"))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Model::Ideal => "ideal",
            Model::Unified => "unified",
            Model::Partitioned => "partitioned",
            Model::Swapped => "swapped",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        let names: Vec<String> = Model::all().iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["ideal", "unified", "partitioned", "swapped"]);
    }

    #[test]
    fn names_round_trip() {
        for m in Model::all() {
            assert_eq!(Model::from_name(&m.to_string()), Some(m));
            assert_eq!(m.to_string().parse::<Model>(), Ok(m));
        }
        assert_eq!(Model::from_name("POWER2"), None);
        assert!("".parse::<Model>().is_err());
    }

    #[test]
    fn classification_helpers() {
        assert!(!Model::Unified.is_dual());
        assert!(Model::Partitioned.is_dual());
        assert!(Model::Swapped.is_dual());
        assert!(Model::Swapped.swaps());
        assert!(!Model::Partitioned.swaps());
        assert_eq!(Model::finite().len(), 3);
    }
}
