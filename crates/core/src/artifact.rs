//! Shared artifact I/O: reading, parsing and validating sweep-shard
//! artifacts from disk, and rebuilding the experiment grid a
//! [`GridSignature`] names.
//!
//! The `shard_runner` CLI's `run`/`merge`/`reissue` subcommands and the
//! `ncdrf-farm` daemon's artifact-directory watcher all consume the same
//! JSON artifacts; this module is the single implementation of the
//! read/parse/validate path (and of the signature → grid reconstruction
//! both need before they can re-evaluate cells), so the two front ends
//! cannot drift apart on what counts as a valid artifact.

use crate::pipeline::PipelineOptions;
use crate::report::parse_sweep_shard;
use crate::shard::GridSignature;
use crate::shard::SweepShard;
use crate::sweep::Sweep;
use ncdrf_corpus::Corpus;
use ncdrf_machine::Machine;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why an artifact could not be read, parsed, or mapped back onto a
/// grid this build can reproduce.
///
/// The variants deliberately mirror the `shard_runner` exit-code
/// contract: every one of these is an "artifact problem" (exit 3), as
/// opposed to an operator usage error (exit 2) — a scheduler retrying
/// shards can tell "re-fetch / re-run this artifact" from "fix the
/// command line".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file could not be read (or written).
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        error: String,
    },
    /// The file's contents are not a valid shard artifact.
    Parse {
        /// The offending path.
        path: PathBuf,
        /// The underlying parse error, rendered.
        error: String,
    },
    /// The artifact parsed, but names a grid this build cannot rebuild
    /// (unknown corpus/machine, mismatched loop list, or non-default
    /// pipeline options).
    Grid(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, error } => {
                write!(f, "read `{}`: {error}", path.display())
            }
            ArtifactError::Parse { path, error } => {
                write!(f, "parse `{}`: {error}", path.display())
            }
            ArtifactError::Grid(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Reads and parses one shard artifact.
///
/// # Errors
///
/// [`ArtifactError::Io`] when the file is unreadable,
/// [`ArtifactError::Parse`] when its contents are not a valid shard.
pub fn read_shard(path: impl AsRef<Path>) -> Result<SweepShard, ArtifactError> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path).map_err(|e| ArtifactError::Io {
        path: path.to_owned(),
        error: e.to_string(),
    })?;
    parse_sweep_shard(&json).map_err(|e| ArtifactError::Parse {
        path: path.to_owned(),
        error: e.to_string(),
    })
}

/// Reads and parses a set of shard artifacts, in argument order.
///
/// # Errors
///
/// The first file's [`ArtifactError`].
pub fn read_shards<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<SweepShard>, ArtifactError> {
    paths.iter().map(read_shard).collect()
}

/// Writes an artifact, creating parent directories as needed.
///
/// # Errors
///
/// [`ArtifactError::Io`] naming the path.
pub fn write_artifact(path: impl AsRef<Path>, contents: &str) -> Result<(), ArtifactError> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| ArtifactError::Io {
        path: path.to_owned(),
        error: e.to_string(),
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
    }
    std::fs::write(path, contents).map_err(io_err)
}

/// Scans a directory for shard artifacts: every `.json` file that parses
/// as a [`SweepShard`], sorted by file name (so repeated scans are
/// deterministic). Files that are not shard artifacts — reports, foreign
/// JSON, half-written files — are skipped, not errors: the farm daemon's
/// watcher polls a live directory where a runner may be mid-write.
///
/// # Errors
///
/// [`ArtifactError::Io`] only when the directory itself is unreadable.
pub fn scan_artifacts(dir: impl AsRef<Path>) -> Result<Vec<(PathBuf, SweepShard)>, ArtifactError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| ArtifactError::Io {
        path: dir.to_owned(),
        error: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .filter_map(|p| read_shard(&p).ok().map(|s| (p, s)))
        .collect())
}

/// Rebuilds a preset machine from its name (`C2L<lat>` clustered,
/// `P<x>L<lat>` unified) — the only machines the preset grids emit.
pub fn machine_from_name(name: &str) -> Option<Machine> {
    if let Some(lat) = name.strip_prefix("C2L").and_then(|s| s.parse().ok()) {
        return Some(Machine::clustered(lat, 1));
    }
    let rest = name.strip_prefix('P')?;
    let (x, lat) = rest.split_once('L')?;
    Some(Machine::pxly(x.parse().ok()?, lat.parse().ok()?))
}

/// Rebuilds the corpus a signature names, refusing silently-different
/// grids (the loop list must match this build exactly). `take` subsets
/// serialize as `<base>-take<N>` and rebuild the same way.
///
/// # Errors
///
/// [`ArtifactError::Grid`] when the corpus name is not reproducible
/// here, or its loop list differs from this build's.
pub fn rebuild_corpus(sig: &GridSignature) -> Result<Corpus, ArtifactError> {
    let base = |name: &str| match name {
        "small" => Some(Corpus::small()),
        "standard" => Some(Corpus::standard()),
        _ => None,
    };
    let corpus = base(&sig.corpus).or_else(|| {
        let (stem, n) = sig.corpus.rsplit_once("-take")?;
        Some(base(stem)?.take(n.parse().ok()?))
    });
    let Some(corpus) = corpus else {
        return Err(ArtifactError::Grid(format!(
            "cannot rebuild corpus `{}` (only `small`/`standard` and their -takeN subsets are \
             reproducible here); merge without --verify-against-sequential",
            sig.corpus
        )));
    };
    let matches = corpus.len() == sig.loops.len()
        && corpus
            .iter()
            .zip(&sig.loops)
            .all(|(l, name)| l.name() == name);
    if !matches {
        return Err(ArtifactError::Grid(format!(
            "the shards' `{}` corpus has a different loop list than this build",
            sig.corpus
        )));
    }
    Ok(corpus)
}

/// Rebuilds the corpus and machine grid a signature names, refusing
/// silently-different grids.
///
/// The machine name alone does not pin the datapath (it omits e.g.
/// load/store units per cluster), so each rebuilt machine is
/// cross-checked against the signature's recorded latency and port
/// count instead of letting a name-colliding variant masquerade as a
/// verification failure downstream.
///
/// # Errors
///
/// [`ArtifactError::Grid`] when the corpus, a machine, or the pipeline
/// options cannot be reproduced by this build.
pub fn rebuild_grid(sig: &GridSignature) -> Result<(Corpus, Vec<Machine>), ArtifactError> {
    let corpus = rebuild_corpus(sig)?;
    let machines: Vec<Machine> = sig
        .machines
        .iter()
        .map(|m| {
            let machine = machine_from_name(&m.name).ok_or_else(|| {
                ArtifactError::Grid(format!("cannot rebuild machine `{}`", m.name))
            })?;
            let latency = machine
                .groups()
                .iter()
                .map(|g| g.latency)
                .max()
                .unwrap_or(0);
            let ports = machine.memory_ports() as u32;
            if latency != m.latency || ports != m.ports {
                return Err(ArtifactError::Grid(format!(
                    "cannot rebuild machine `{}`: this build reconstructs latency {latency} / \
                     {ports} ports, the shards declare latency {} / {} ports",
                    m.name, m.latency, m.ports
                )));
            }
            Ok(machine)
        })
        .collect::<Result<_, _>>()?;
    if sig.options != format!("{:?}", PipelineOptions::default()) {
        return Err(ArtifactError::Grid(
            "the shards were produced with non-default pipeline options; cannot rebuild the grid"
                .to_owned(),
        ));
    }
    Ok((corpus, machines))
}

/// A [`Sweep`] builder pre-populated from a signature: the given
/// machines plus the signature's model set, sample points and budgets —
/// the sweep whose own signature equals `sig` (given `corpus` and
/// `machines` from [`rebuild_grid`]). The shared starting point of every
/// re-evaluation path: `shard_runner reissue`, sequential verification,
/// and the farm's lease workers.
pub fn sweep_for_signature<'c>(
    sig: &GridSignature,
    corpus: &'c Corpus,
    machines: Vec<Machine>,
) -> Sweep<'c> {
    Sweep::new(corpus)
        .machines(machines)
        .models(sig.models.iter().copied())
        .points(sig.points.iter().copied())
        .budgets(sig.budgets.iter().copied())
}

/// Builds one of the named preset experiment grids over `corpus`:
/// `full` (Figure 6–9 machines, models, points and budgets in one
/// sweep), `fig67`, `fig89`, `table1`, or `extended` (the registry's
/// non-paper built-ins — the read-port-constrained and compressed
/// register files — against the unified baseline). Returns `None` for
/// an unknown preset name.
///
/// The presets are pinned here — not on any command line — so two
/// runners (or a runner and the farm daemon) can only disagree by
/// naming different presets, which the merge's signature check catches.
pub fn preset_sweep<'c>(corpus: &'c Corpus, grid: &str) -> Option<Sweep<'c>> {
    use crate::distribution::{default_points, TABLE1_POINTS};
    use crate::model::{Model, ModelId};
    Some(match grid {
        "full" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::all())
            .points(default_points())
            .budgets([32, 64]),
        "fig67" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::finite())
            .points(default_points()),
        "fig89" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::all())
            .budgets([32, 64]),
        "table1" => Sweep::new(corpus)
            .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
            .models([Model::Unified])
            .points(TABLE1_POINTS),
        "extended" => Sweep::new(corpus)
            .clustered_latencies([3])
            .models([
                ModelId::IDEAL,
                ModelId::UNIFIED,
                ModelId::PORT_LIMITED,
                ModelId::COMPRESSED,
            ])
            .points(default_points())
            .budgets([16, 8]),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::{Render, ReportFormat};

    fn tiny_sweep(corpus: &Corpus) -> Sweep<'_> {
        Sweep::new(corpus)
            .clustered_latencies([3])
            .models([Model::Unified])
            .budget(32)
    }

    #[test]
    fn shards_round_trip_through_the_filesystem() {
        let corpus = Corpus::small().take(3);
        let shard = tiny_sweep(&corpus).shard(0, 2).unwrap();
        let dir = std::env::temp_dir().join("ncdrf-artifact-io-test");
        let path = dir.join("nested").join("shard.json");
        write_artifact(&path, &shard.render(ReportFormat::Json)).unwrap();
        let back = read_shard(&path).unwrap();
        assert_eq!(back, shard);
        let all = read_shards(&[&path]).unwrap();
        assert_eq!(all, vec![shard]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_skips_foreign_files_and_sorts_by_name() {
        let corpus = Corpus::small().take(3);
        let sweep = tiny_sweep(&corpus);
        let dir = std::env::temp_dir().join("ncdrf-artifact-scan-test");
        let _ = std::fs::remove_dir_all(&dir);
        let b = sweep.shard(1, 2).unwrap();
        let a = sweep.shard(0, 2).unwrap();
        write_artifact(dir.join("b.json"), &b.render(ReportFormat::Json)).unwrap();
        write_artifact(dir.join("a.json"), &a.render(ReportFormat::Json)).unwrap();
        write_artifact(dir.join("notes.json"), "{\"kind\":\"other\"}").unwrap();
        write_artifact(dir.join("junk.txt"), "not json").unwrap();
        let found = scan_artifacts(&dir).unwrap();
        assert_eq!(found.len(), 2, "only real shard artifacts are returned");
        assert_eq!(found[0].1, a, "sorted by file name");
        assert_eq!(found[1].1, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuild_grid_reproduces_preset_signatures() {
        let corpus = Corpus::small().take(4);
        for grid in ["full", "fig67", "fig89", "table1", "extended"] {
            let sweep = preset_sweep(&corpus, grid).unwrap();
            let shard = sweep.shard(0, 1).unwrap();
            let (rebuilt, machines) = rebuild_grid(shard.signature()).unwrap();
            assert_eq!(rebuilt.name(), corpus.name(), "{grid}");
            let resumed = sweep_for_signature(shard.signature(), &rebuilt, machines)
                .shard(0, 1)
                .unwrap();
            assert_eq!(resumed.signature(), shard.signature(), "{grid}");
        }
        assert!(preset_sweep(&corpus, "nope").is_none());
    }

    #[test]
    fn rebuild_refuses_foreign_grids() {
        let corpus = Corpus::small().take(3);
        let shard = tiny_sweep(&corpus).shard(0, 1).unwrap();
        let mut foreign_corpus = shard.signature().clone();
        foreign_corpus.corpus = "exotic".into();
        assert!(matches!(
            rebuild_corpus(&foreign_corpus),
            Err(ArtifactError::Grid(_))
        ));
        let mut foreign_machine = shard.signature().clone();
        foreign_machine.machines[0].ports = 99;
        let err = rebuild_grid(&foreign_machine).unwrap_err();
        assert!(err.to_string().contains("99 ports"), "{err}");
        let mut foreign_opts = shard.signature().clone();
        foreign_opts.options = "custom".into();
        let err = rebuild_grid(&foreign_opts).unwrap_err();
        assert!(err.to_string().contains("pipeline options"), "{err}");
    }

    #[test]
    fn machine_names_round_trip() {
        // Memory ports are fixed per family: the unified `P<x>L<lat>`
        // presets carry 2 load + 1 store port regardless of `x` (which
        // counts adders/multipliers), the clustered evaluation machine
        // one load/store unit per cluster.
        for (name, latency, ports) in [
            ("C2L3", 3, 2),
            ("C2L6", 6, 2),
            ("P1L3", 3, 3),
            ("P2L6", 6, 3),
        ] {
            let m = machine_from_name(name).unwrap();
            assert_eq!(m.name(), name);
            let max_lat = m.groups().iter().map(|g| g.latency).max().unwrap();
            assert_eq!(max_lat, latency, "{name}");
            assert_eq!(m.memory_ports(), ports, "{name}");
        }
        assert!(machine_from_name("Q9").is_none());
    }
}
