//! Experiment result types shared by [`crate::Sweep`] reports, plus the
//! deprecated free-function drivers they replace.
//!
//! The typed results ([`Table1Row`], [`DistributionCurve`],
//! [`BudgetOutcome`]) are produced by [`crate::Sweep::run`] and rendered
//! through [`crate::Render`]. The free functions at the bottom are shims
//! kept for source compatibility; they re-run scheduling per call where a
//! [`crate::Session`] or [`crate::Sweep`] would cache it.

use crate::model::{Model, ModelId};
use crate::pipeline::{analyze, evaluate, LoopAnalysis, LoopEval, PipelineError, PipelineOptions};
use crate::sweep::Sweep;
use ncdrf_corpus::Corpus;
use ncdrf_ddg::Loop;
use ncdrf_exec::Pool;
use ncdrf_machine::Machine;
use serde::{Deserialize, Serialize};

/// Maps `f` over `items` on a work-stealing [`Pool`], preserving order.
///
/// Kept as a source-compatible shim over the execution subsystem. Unlike
/// the original implementation, a panicking worker no longer takes the
/// whole process down: every other item still completes, and the first
/// panic is then re-raised on the **calling** thread (so callers can
/// contain it with `std::panic::catch_unwind`). Callers that want panics
/// as values should use [`ncdrf_exec::Pool::run`] directly.
#[deprecated(
    note = "use `ncdrf_exec::Pool::run` (panics become values) or the `Session` corpus methods"
)]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results = Pool::new().run(items.len(), |i| f(&items[i]));
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(Box::new(p.message)),
        })
        .collect()
}

/// Runs the fallible per-loop closure over a corpus on a fresh pool,
/// preserving corpus order and returning the first failure (a contained
/// worker panic surfaces as [`crate::PipelineStage::Panic`], naming the
/// loop).
pub(crate) fn try_map_loops<R, F>(corpus: &Corpus, f: F) -> Result<Vec<R>, PipelineError>
where
    R: Send,
    F: Fn(&Loop) -> Result<R, PipelineError> + Sync,
{
    let loops = corpus.loops();
    Pool::new()
        .run(loops.len(), |i| f(&loops[i]))
        .into_iter()
        .zip(loops)
        .map(|(r, l)| match r {
            Ok(per_loop) => per_loop,
            Err(p) => Err(PipelineError::panic(l.name(), p.message)),
        })
        .collect()
}

/// Performance of a finite-register model relative to the ideal model:
/// `ideal_cycles / cycles`, so `1.0` means "as fast as infinite
/// registers" and smaller is worse.
///
/// Degenerate cases are explicit rather than masked:
///
/// * both totals zero (an empty corpus, or all-zero iteration weights):
///   every model is vacuously ideal — `1.0`;
/// * `cycles == 0` with `ideal_cycles > 0`: the finite model claims zero
///   cost where the unconstrained ideal pays some — impossible for a
///   correct spiller (spilling never removes work), so this surfaces as
///   `f64::INFINITY` instead of silently reporting parity.
pub fn relative_performance(ideal_cycles: u128, cycles: u128) -> f64 {
    match (ideal_cycles, cycles) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        _ => ideal_cycles as f64 / cycles as f64,
    }
}

// ---------------------------------------------------------------------
// Typed experiment results
// ---------------------------------------------------------------------

/// One row of Table 1: for a `PxLy` unified machine, the share of loops
/// (and of estimated execution cycles) allocatable without spilling within
/// 16/32/64 registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Machine preset name (`P1L3`, ...).
    pub config: String,
    /// Percent of loops allocatable with ≤16/32/64 registers.
    pub loops_within: [f64; 3],
    /// Percent of estimated cycles those loops represent.
    pub cycles_within: [f64; 3],
}

/// One curve of Figure 6 (static) and Figure 7 (dynamic): a model's
/// cumulative distribution of loops / cycles over register requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionCurve {
    /// Machine preset name (`C2L3`, `P1L6`, ...).
    pub config: String,
    /// Evaluation model (registry ID; rendered by its stable wire name).
    pub model: ModelId,
    /// Functional-unit latency of the machine.
    pub latency: u32,
    /// Static (loop-count-weighted) cumulative distribution.
    pub static_dist: crate::distribution::Cumulative,
    /// Dynamic (cycle-weighted) cumulative distribution.
    pub dynamic_dist: crate::distribution::Cumulative,
}

/// One bar of Figures 8–9: a model's corpus-wide performance and memory
/// traffic density for one (machine, registers) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetOutcome {
    /// Machine preset name (`C2L3`, ...).
    pub config: String,
    /// Evaluation model (registry ID; rendered by its stable wire name).
    pub model: ModelId,
    /// Functional-unit latency.
    pub latency: u32,
    /// Register budget (per file).
    pub registers: u32,
    /// Total estimated cycles over the corpus (Σ iterations × II).
    pub cycles: u128,
    /// Total memory accesses over the corpus (Σ iterations × memory ops).
    pub accesses: u128,
    /// Performance relative to the ideal model (see
    /// [`relative_performance`]).
    pub relative_performance: f64,
    /// Corpus-wide density of memory traffic: accesses per bus slot.
    pub traffic_density: f64,
    /// Loops that needed spill code.
    pub loops_spilled: usize,
}

/// The four (latency, registers) configurations of Figures 8–9.
pub const FIG89_CONFIGS: [(u32, u32); 4] = [(3, 32), (6, 32), (3, 64), (6, 64)];

// ---------------------------------------------------------------------
// Deprecated free-function drivers (pre-Session API)
// ---------------------------------------------------------------------

/// Analyses every corpus loop under `model` with unlimited registers.
///
/// # Errors
///
/// Returns the first per-loop failure (the standard corpus never fails).
#[deprecated(note = "use `Session::analyze_corpus`, which caches schedules across models")]
pub fn sweep_analyze(
    corpus: &Corpus,
    machine: &Machine,
    model: Model,
    opts: &PipelineOptions,
) -> Result<Vec<LoopAnalysis>, PipelineError> {
    try_map_loops(corpus, |l| analyze(l, machine, model, opts))
}

/// Evaluates every corpus loop under `model` with a `budget`-register
/// file, spilling until fits.
///
/// # Errors
///
/// Returns the first per-loop failure.
#[deprecated(note = "use `Session::evaluate_corpus`, which caches schedules across models")]
pub fn sweep_evaluate(
    corpus: &Corpus,
    machine: &Machine,
    model: Model,
    budget: u32,
    opts: &PipelineOptions,
) -> Result<Vec<LoopEval>, PipelineError> {
    try_map_loops(corpus, |l| evaluate(l, machine, model, budget, opts))
}

/// Reproduces Table 1 over `(x, latency)` unified configurations.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
#[deprecated(
    note = "use `Sweep::new(corpus).pxly_configs(..).models([Model::Unified]).points(TABLE1_POINTS)` and `SweepReport::table1`"
)]
pub fn table1(
    corpus: &Corpus,
    configs: &[(u32, u32)],
    opts: &PipelineOptions,
) -> Result<Vec<Table1Row>, PipelineError> {
    Ok(Sweep::new(corpus)
        .pxly_configs(configs.iter().copied())
        .models([Model::Unified])
        .points(crate::distribution::TABLE1_POINTS)
        .options(*opts)
        .run()?
        .table1())
}

/// Reproduces one panel of Figures 6–7: the three finite models'
/// distributions on the clustered machine with the given latency.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
#[deprecated(
    note = "use `Sweep::new(corpus).clustered_latencies([lat]).models(Model::finite()).points(points)`"
)]
pub fn figures_6_7(
    corpus: &Corpus,
    latency: u32,
    points: &[u32],
    opts: &PipelineOptions,
) -> Result<Vec<DistributionCurve>, PipelineError> {
    Ok(Sweep::new(corpus)
        .clustered_latencies([latency])
        .models(Model::finite())
        .points(points.iter().copied())
        .options(*opts)
        .run()?
        .distributions)
}

/// Reproduces one configuration column of Figures 8–9: evaluates all four
/// models on the clustered machine with `latency` and a `registers`-entry
/// file, with the §5.4 spiller active.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
#[deprecated(
    note = "use `Sweep::new(corpus).clustered_latencies([lat]).models(Model::all()).budget(registers)`"
)]
pub fn figures_8_9(
    corpus: &Corpus,
    latency: u32,
    registers: u32,
    opts: &PipelineOptions,
) -> Result<Vec<BudgetOutcome>, PipelineError> {
    Ok(Sweep::new(corpus)
        .clustered_latencies([latency])
        .models(Model::all())
        .budget(registers)
        .options(*opts)
        .run()?
        .outcomes)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::small().take(12)
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_panic_is_catchable_and_other_items_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        // The panic must reach the caller as an unwind (containable with
        // catch_unwind), not abort the process as the old
        // `expect("worker threads do not panic")` did — and the
        // non-panicking items must all have run.
        let outcome = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 7 {
                    panic!("item seven failed");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                x
            })
        });
        assert!(outcome.is_err(), "the panic propagates to the caller");
        assert_eq!(completed.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn sweep_analyze_covers_corpus() {
        let c = tiny_corpus();
        let machine = Machine::clustered(3, 1);
        let rows =
            sweep_analyze(&c, &machine, Model::Unified, &PipelineOptions::default()).unwrap();
        assert_eq!(rows.len(), c.len());
    }

    #[test]
    fn table1_shape() {
        let c = tiny_corpus();
        let rows = table1(&c, &[(1, 3), (2, 6)], &PipelineOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Monotone in the register budget.
            assert!(row.loops_within[0] <= row.loops_within[1]);
            assert!(row.loops_within[1] <= row.loops_within[2]);
        }
    }

    #[test]
    fn figures_6_7_partitioned_dominates_unified() {
        let c = Corpus::small().take(25);
        let curves = figures_6_7(&c, 3, &[8, 16, 32, 64], &PipelineOptions::default()).unwrap();
        let uni = curves.iter().find(|c| c.model == Model::Unified).unwrap();
        let part = curves
            .iter()
            .find(|c| c.model == Model::Partitioned)
            .unwrap();
        // At every sampled point, at least as many loops fit under the
        // partitioned model (its requirement is never larger).
        for (u, p) in uni
            .static_dist
            .percent
            .iter()
            .zip(&part.static_dist.percent)
        {
            assert!(p >= u, "partitioned curve must lie left of unified");
        }
    }

    #[test]
    fn figures_8_9_ideal_is_upper_bound() {
        let c = tiny_corpus();
        let outcomes = figures_8_9(&c, 3, 16, &PipelineOptions::default()).unwrap();
        let ideal = outcomes.iter().find(|o| o.model == Model::Ideal).unwrap();
        assert_eq!(ideal.relative_performance, 1.0);
        for o in &outcomes {
            assert!(o.relative_performance <= 1.0 + 1e-12);
            assert!(o.cycles >= ideal.cycles);
        }
    }

    #[test]
    fn relative_performance_quadrants() {
        // Normal case: ideal is faster or equal.
        assert_eq!(relative_performance(500, 1000), 0.5);
        assert_eq!(relative_performance(1000, 1000), 1.0);
        // Empty corpus: all models vacuously ideal.
        assert_eq!(relative_performance(0, 0), 1.0);
        // Ideal work vanished but the model's didn't: honest ratio 0.
        assert_eq!(relative_performance(0, 700), 0.0);
        // The impossible quadrant is explicit, not masked as parity.
        assert!(relative_performance(700, 0).is_infinite());
    }
}
