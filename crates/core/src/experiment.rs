//! Corpus-level experiment drivers: one function per paper table/figure.

use crate::distribution::{Cumulative, Observation, TABLE1_POINTS};
use crate::model::Model;
use crate::pipeline::{analyze, evaluate, LoopAnalysis, LoopEval, PipelineError, PipelineOptions};
use ncdrf_corpus::Corpus;
use ncdrf_machine::Machine;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Maps `f` over `items` with scoped threads, preserving order.
///
/// Falls back to sequential execution when parallelism is unavailable.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Mutex<Vec<Option<R>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(items.len()).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker threads do not panic");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Analyses every corpus loop under `model` with unlimited registers.
///
/// # Errors
///
/// Returns the first per-loop failure (the standard corpus never fails).
pub fn sweep_analyze(
    corpus: &Corpus,
    machine: &Machine,
    model: Model,
    opts: &PipelineOptions,
) -> Result<Vec<LoopAnalysis>, PipelineError> {
    par_map(corpus.loops(), |l| analyze(l, machine, model, opts))
        .into_iter()
        .collect()
}

/// Evaluates every corpus loop under `model` with a `budget`-register
/// file, spilling until fits.
///
/// # Errors
///
/// Returns the first per-loop failure.
pub fn sweep_evaluate(
    corpus: &Corpus,
    machine: &Machine,
    model: Model,
    budget: u32,
    opts: &PipelineOptions,
) -> Result<Vec<LoopEval>, PipelineError> {
    par_map(corpus.loops(), |l| evaluate(l, machine, model, budget, opts))
        .into_iter()
        .collect()
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of Table 1: for a `PxLy` unified machine, the share of loops
/// (and of estimated execution cycles) allocatable without spilling within
/// 16/32/64 registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Machine preset name (`P1L3`, ...).
    pub config: String,
    /// Percent of loops allocatable with ≤16/32/64 registers.
    pub loops_within: [f64; 3],
    /// Percent of estimated cycles those loops represent.
    pub cycles_within: [f64; 3],
}

/// Reproduces Table 1 over `(x, latency)` unified configurations.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
pub fn table1(
    corpus: &Corpus,
    configs: &[(u32, u32)],
    opts: &PipelineOptions,
) -> Result<Vec<Table1Row>, PipelineError> {
    configs
        .iter()
        .map(|&(x, lat)| {
            let machine = Machine::pxly(x, lat);
            let rows = sweep_analyze(corpus, &machine, Model::Unified, opts)?;
            let static_obs: Vec<Observation> = rows
                .iter()
                .map(|r| Observation {
                    regs: r.regs,
                    weight: 1.0,
                })
                .collect();
            let dyn_obs: Vec<Observation> = rows
                .iter()
                .map(|r| Observation {
                    regs: r.regs,
                    weight: r.cycles() as f64,
                })
                .collect();
            let s = Cumulative::new(&TABLE1_POINTS, &static_obs);
            let d = Cumulative::new(&TABLE1_POINTS, &dyn_obs);
            Ok(Table1Row {
                config: machine.name().to_owned(),
                loops_within: [s.at(16), s.at(32), s.at(64)],
                cycles_within: [d.at(16), d.at(32), d.at(64)],
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 6 and 7
// ---------------------------------------------------------------------

/// One curve of Figure 6 (static) and Figure 7 (dynamic): a model's
/// cumulative distribution of loops / cycles over register requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionCurve {
    /// Evaluation model.
    pub model: Model,
    /// Functional-unit latency of the clustered machine.
    pub latency: u32,
    /// Static (loop-count-weighted) cumulative distribution.
    pub static_dist: Cumulative,
    /// Dynamic (cycle-weighted) cumulative distribution.
    pub dynamic_dist: Cumulative,
}

/// Reproduces one panel of Figures 6–7: the three finite models'
/// distributions on the clustered machine with the given latency.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
pub fn figures_6_7(
    corpus: &Corpus,
    latency: u32,
    points: &[u32],
    opts: &PipelineOptions,
) -> Result<Vec<DistributionCurve>, PipelineError> {
    let machine = Machine::clustered(latency, 1);
    Model::finite()
        .iter()
        .map(|&model| {
            let rows = sweep_analyze(corpus, &machine, model, opts)?;
            let static_obs: Vec<Observation> = rows
                .iter()
                .map(|r| Observation {
                    regs: r.regs,
                    weight: 1.0,
                })
                .collect();
            let dyn_obs: Vec<Observation> = rows
                .iter()
                .map(|r| Observation {
                    regs: r.regs,
                    weight: r.cycles() as f64,
                })
                .collect();
            Ok(DistributionCurve {
                model,
                latency,
                static_dist: Cumulative::new(points, &static_obs),
                dynamic_dist: Cumulative::new(points, &dyn_obs),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 8 and 9
// ---------------------------------------------------------------------

/// One bar of Figures 8–9: a model's corpus-wide performance and memory
/// traffic density for one (latency, registers) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetOutcome {
    /// Evaluation model.
    pub model: Model,
    /// Functional-unit latency.
    pub latency: u32,
    /// Register budget (per file).
    pub registers: u32,
    /// Total estimated cycles over the corpus (Σ iterations × II).
    pub cycles: u128,
    /// Total memory accesses over the corpus (Σ iterations × memory ops).
    pub accesses: u128,
    /// Performance relative to the ideal model (1.0 = ideal).
    pub relative_performance: f64,
    /// Corpus-wide density of memory traffic: accesses per bus slot.
    pub traffic_density: f64,
    /// Loops that needed spill code.
    pub loops_spilled: usize,
}

/// Reproduces one configuration column of Figures 8–9: evaluates all four
/// models on the clustered machine with `latency` and a `registers`-entry
/// file, with the §5.4 spiller active.
///
/// # Errors
///
/// Propagates per-loop pipeline failures.
pub fn figures_8_9(
    corpus: &Corpus,
    latency: u32,
    registers: u32,
    opts: &PipelineOptions,
) -> Result<Vec<BudgetOutcome>, PipelineError> {
    let machine = Machine::clustered(latency, 1);
    let ports = machine.memory_ports() as u128;

    let ideal_rows = sweep_evaluate(corpus, &machine, Model::Ideal, registers, opts)?;
    let ideal_cycles: u128 = ideal_rows.iter().map(LoopEval::cycles).sum();

    Model::all()
        .iter()
        .map(|&model| {
            let rows = if model == Model::Ideal {
                ideal_rows.clone()
            } else {
                sweep_evaluate(corpus, &machine, model, registers, opts)?
            };
            let cycles: u128 = rows.iter().map(LoopEval::cycles).sum();
            let accesses: u128 = rows.iter().map(LoopEval::accesses).sum();
            let loops_spilled = rows.iter().filter(|r| r.spilled > 0).count();
            Ok(BudgetOutcome {
                model,
                latency,
                registers,
                cycles,
                accesses,
                relative_performance: if cycles == 0 {
                    1.0
                } else {
                    ideal_cycles as f64 / cycles as f64
                },
                traffic_density: if cycles == 0 {
                    0.0
                } else {
                    accesses as f64 / (cycles * ports) as f64
                },
                loops_spilled,
            })
        })
        .collect()
}

/// The four (latency, registers) configurations of Figures 8–9.
pub const FIG89_CONFIGS: [(u32, u32); 4] = [(3, 32), (6, 32), (3, 64), (6, 64)];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::small().take(12)
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_analyze_covers_corpus() {
        let c = tiny_corpus();
        let machine = Machine::clustered(3, 1);
        let rows =
            sweep_analyze(&c, &machine, Model::Unified, &PipelineOptions::default()).unwrap();
        assert_eq!(rows.len(), c.len());
    }

    #[test]
    fn table1_shape() {
        let c = tiny_corpus();
        let rows = table1(&c, &[(1, 3), (2, 6)], &PipelineOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Monotone in the register budget.
            assert!(row.loops_within[0] <= row.loops_within[1]);
            assert!(row.loops_within[1] <= row.loops_within[2]);
        }
    }

    #[test]
    fn figures_6_7_partitioned_dominates_unified() {
        let c = Corpus::small().take(25);
        let curves =
            figures_6_7(&c, 3, &[8, 16, 32, 64], &PipelineOptions::default()).unwrap();
        let uni = curves.iter().find(|c| c.model == Model::Unified).unwrap();
        let part = curves
            .iter()
            .find(|c| c.model == Model::Partitioned)
            .unwrap();
        // At every sampled point, at least as many loops fit under the
        // partitioned model (its requirement is never larger).
        for (u, p) in uni.static_dist.percent.iter().zip(&part.static_dist.percent) {
            assert!(p >= u, "partitioned curve must lie left of unified");
        }
    }

    #[test]
    fn figures_8_9_ideal_is_upper_bound() {
        let c = tiny_corpus();
        let outcomes = figures_8_9(&c, 3, 16, &PipelineOptions::default()).unwrap();
        let ideal = outcomes.iter().find(|o| o.model == Model::Ideal).unwrap();
        assert_eq!(ideal.relative_performance, 1.0);
        for o in &outcomes {
            assert!(o.relative_performance <= 1.0 + 1e-12);
            assert!(o.cycles >= ideal.cycles);
        }
    }
}
