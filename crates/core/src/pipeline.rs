//! The per-loop evaluation pipeline:
//! schedule → (swap) → classify → allocate → (spill until fits).
//!
//! The free functions [`analyze`] and [`evaluate`] run the pipeline from
//! scratch for one `(loop, model)` pair. Experiment drivers that compare
//! several models or budgets on the same loops should use
//! [`crate::Session`], which schedules each loop once and derives every
//! model's result from the cached base schedule.

use crate::model::{ModelId, RequirementCtx};
use ncdrf_ddg::Loop;
use ncdrf_machine::{Machine, MachineError};
use ncdrf_regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, max_live, DualPressure,
};
use ncdrf_sched::{modulo_schedule_with, Schedule, ScheduleError};
use ncdrf_spill::{spill_until_fits, SpillError, SpillOptions, SpillResult};
use ncdrf_swap::{swap_pass_with, SwapOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Options threaded through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Swapping-pass knobs (used by models whose spec
    /// [`swaps`](crate::ModelSpec::swaps), e.g. [`ModelId::SWAPPED`]).
    pub swap: SwapOptions,
    /// Spiller knobs (used by budgeted evaluation). `spill.scheduler`
    /// also drives base scheduling, so analysis and evaluation see the
    /// same schedules.
    pub spill: SpillOptions,
}

/// A pipeline failure, carrying **which loop** failed alongside the
/// failing stage — so a corpus sweep that dies names its culprit instead
/// of reporting a bare scheduler error.
///
/// Configuration failures (an empty sweep grid, say) happen before any
/// loop is touched; they leave `loop_name` empty and render without the
/// `loop` prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError {
    /// Name of the loop the pipeline was processing (empty for
    /// [`PipelineStage::Config`] errors, which precede any loop).
    pub loop_name: String,
    /// The stage that failed, with its cause.
    pub stage: PipelineStage,
}

/// The pipeline stage that produced a [`PipelineError`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineStage {
    /// Modulo scheduling failed.
    Schedule(ScheduleError),
    /// The machine cannot serve the loop.
    Machine(MachineError),
    /// The spiller failed.
    Spill(SpillError),
    /// The experiment configuration is invalid (no loop involved).
    Config(ConfigError),
    /// A worker panicked while processing the loop; the payload is the
    /// stringified panic message. The panic was contained by the
    /// execution pool — other loops in the same run still completed.
    Panic(String),
    /// An error parsed back from a serialized report (its structured
    /// stage was rendered to text when the producing process emitted
    /// JSON). The payload is the original stage message verbatim, so a
    /// round-tripped report renders identically.
    Remote(String),
    /// Certification rejected the cell: an independent
    /// [`CellCertifier`](crate::CellCertifier) re-derived the paper's
    /// constraints and found the produced artifact violates one. The
    /// payload renders the violation (rule id plus locator).
    Certify(String),
}

/// An invalid experiment configuration, detected before any loop runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The sweep's machine grid is empty — nothing would be evaluated.
    EmptyMachineGrid,
    /// The sweep's model set is empty — every result series would be
    /// silently empty.
    EmptyModelSet,
    /// The sweep requests neither distribution points nor spill budgets,
    /// so there is nothing to compute.
    EmptyWorkload,
    /// A shard specification is out of range: `count` is zero or `index`
    /// is not below `count`.
    InvalidShard {
        /// The requested shard index.
        index: u32,
        /// The requested shard count.
        count: u32,
    },
    /// Shards being merged were produced from different grids (machines,
    /// models, points, budgets, corpus or pipeline options differ) or
    /// disagree about the shard count.
    IncompatibleShards,
    /// Two shards being merged claim the same shard index or the same
    /// grid cell.
    OverlappingShards,
    /// The merge input does not cover the full grid: no shards at all, a
    /// shard index absent, or a grid cell reported by no shard.
    MissingShards,
    /// An artifact declares a grid larger than any real corpus sweep
    /// (`machines × loops` beyond the supported ceiling) — grids that
    /// size only come from corrupt artifacts, and honouring them would
    /// mean grid-proportional allocations an attacker controls.
    OversizedGrid {
        /// The declared number of grid cells.
        cells: usize,
    },
    /// A cell index passed to `Sweep::reissue` lies outside the sweep's
    /// grid — the caller's missing-cell list belongs to another grid.
    UnknownCell {
        /// The offending flattened task index.
        task: u64,
    },
    /// A model name does not resolve through the
    /// [`ModelRegistry`](crate::ModelRegistry) — a job spec, preset or
    /// artifact names a model this process never registered.
    UnknownModel {
        /// The unresolvable model name.
        name: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyMachineGrid => write!(
                f,
                "the sweep has no machines; add one via `machine`, `machines`, \
                 `clustered_latencies` or `pxly_configs`"
            ),
            ConfigError::EmptyModelSet => write!(
                f,
                "the sweep has no models; pass a non-empty set to `models` \
                 (the default is `Model::all()`)"
            ),
            ConfigError::EmptyWorkload => write!(
                f,
                "the sweep has no workload; request distribution points \
                 via `points` and/or spill budgets via `budget`/`budgets`"
            ),
            ConfigError::InvalidShard { index, count } => write!(
                f,
                "invalid shard {index}/{count}: the count must be positive \
                 and the index below it"
            ),
            ConfigError::IncompatibleShards => write!(
                f,
                "shards disagree about the grid (machines, models, points, \
                 budgets, corpus, options or shard count differ); only \
                 shards of one sweep merge"
            ),
            ConfigError::OverlappingShards => write!(
                f,
                "two shards claim the same shard index or grid cell; each \
                 cell must be reported by exactly one shard"
            ),
            ConfigError::MissingShards => write!(
                f,
                "the shard set does not cover the full grid; every shard \
                 index and every grid cell must be present exactly once"
            ),
            ConfigError::OversizedGrid { cells } => write!(
                f,
                "the artifact declares a {cells}-cell grid, beyond any real \
                 corpus sweep; refusing a likely-corrupt artifact"
            ),
            ConfigError::UnknownCell { task } => write!(
                f,
                "cell {task} lies outside the sweep's grid; the reissue \
                 list belongs to a different grid"
            ),
            ConfigError::UnknownModel { name } => write!(
                f,
                "`{name}` names no registered model; register it through \
                 `ModelRegistry::register` or fix the spelling"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl PipelineError {
    /// Builds an error for the named loop from any stage cause.
    pub fn new(loop_name: impl Into<String>, stage: impl Into<PipelineStage>) -> Self {
        PipelineError {
            loop_name: loop_name.into(),
            stage: stage.into(),
        }
    }

    /// Builds a configuration error (no loop involved).
    pub fn config(err: ConfigError) -> Self {
        PipelineError {
            loop_name: String::new(),
            stage: PipelineStage::Config(err),
        }
    }

    /// Builds a contained-panic error for the named loop.
    pub fn panic(loop_name: impl Into<String>, message: impl Into<String>) -> Self {
        PipelineError {
            loop_name: loop_name.into(),
            stage: PipelineStage::Panic(message.into()),
        }
    }

    /// Whether this is a configuration error (and thus names no loop).
    pub fn is_config(&self) -> bool {
        matches!(self.stage, PipelineStage::Config(_))
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loop_name.is_empty() {
            write!(f, "{}", self.stage)
        } else {
            write!(f, "loop `{}`: {}", self.loop_name, self.stage)
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.stage {
            PipelineStage::Schedule(e) => Some(e),
            PipelineStage::Machine(e) => Some(e),
            PipelineStage::Spill(e) => Some(e),
            PipelineStage::Config(e) => Some(e),
            PipelineStage::Panic(_) | PipelineStage::Remote(_) | PipelineStage::Certify(_) => None,
        }
    }
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineStage::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PipelineStage::Machine(e) => write!(f, "machine mismatch: {e}"),
            PipelineStage::Spill(e) => write!(f, "spilling failed: {e}"),
            PipelineStage::Config(e) => write!(f, "invalid configuration: {e}"),
            PipelineStage::Panic(msg) => write!(f, "worker panicked: {msg}"),
            PipelineStage::Remote(msg) => f.write_str(msg),
            PipelineStage::Certify(msg) => write!(f, "certification failed: {msg}"),
        }
    }
}

impl From<ConfigError> for PipelineStage {
    fn from(e: ConfigError) -> Self {
        PipelineStage::Config(e)
    }
}

impl From<ScheduleError> for PipelineStage {
    fn from(e: ScheduleError) -> Self {
        PipelineStage::Schedule(e)
    }
}

impl From<MachineError> for PipelineStage {
    fn from(e: MachineError) -> Self {
        PipelineStage::Machine(e)
    }
}

impl From<SpillError> for PipelineStage {
    fn from(e: SpillError) -> Self {
        PipelineStage::Spill(e)
    }
}

/// Result of analysing one loop under one model with **unlimited
/// registers** (the Figure 6/7 pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopAnalysis {
    /// Loop name.
    pub name: String,
    /// Evaluation model.
    pub model: ModelId,
    /// Achieved initiation interval.
    pub ii: u32,
    /// Register requirement of the model (per subfile for dual models;
    /// `0` for [`ModelId::IDEAL`], which needs none by definition).
    pub regs: u32,
    /// MaxLive lower bound (unified view), for reference.
    pub max_live: u32,
    /// Per-class pressures for dual models (the Table 3/4 quantities).
    pub pressure: Option<DualPressure>,
    /// Total iterations this loop executes (its corpus weight).
    pub iterations: u64,
}

impl LoopAnalysis {
    /// Estimated execution cycles: `iterations * II` (the paper's §5.3
    /// execution-time estimate for the dynamic figures).
    pub fn cycles(&self) -> u128 {
        self.iterations as u128 * self.ii as u128
    }
}

/// Computes the register requirement of `model` for an already-scheduled
/// loop, possibly mutating the schedule (swapping).
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn requirement(
    l: &Loop,
    machine: &Machine,
    sched: &mut Schedule,
    model: impl Into<ModelId>,
    opts: &PipelineOptions,
) -> Result<u32, MachineError> {
    let spec = model.into().spec();
    if spec.is_ideal() {
        return Ok(0);
    }
    if spec.swaps() {
        swap_pass_with(l, machine, sched, opts.swap)?;
    }
    let lts = lifetimes(l, machine, sched)?;
    let raw = if spec.is_dual() {
        let classes = classify(l, machine, sched, &lts);
        allocate_dual(&lts, &classes, sched.ii()).regs
    } else {
        allocate_unified(&lts, sched.ii()).regs
    };
    let ctx = RequirementCtx {
        l,
        ii: sched.ii(),
        lifetimes: &lts,
    };
    Ok(spec.effective_requirement(raw, &ctx))
}

/// Schedules `l` and computes the `model` register requirement with
/// unlimited registers (no spilling), without any caching.
///
/// Prefer [`crate::Session::analyze`] when analysing the same loop under
/// several models: it schedules once and derives each model's result.
///
/// # Errors
///
/// Returns a schedule-stage [`PipelineError`] if no schedule exists
/// within the default II search.
pub fn analyze(
    l: &Loop,
    machine: &Machine,
    model: impl Into<ModelId>,
    opts: &PipelineOptions,
) -> Result<LoopAnalysis, PipelineError> {
    let model = model.into();
    let fail = |stage: PipelineStage| PipelineError {
        loop_name: l.name().to_owned(),
        stage,
    };
    let mut sched =
        modulo_schedule_with(l, machine, opts.spill.scheduler).map_err(|e| fail(e.into()))?;
    let regs = requirement(l, machine, &mut sched, model, opts).map_err(|e| fail(e.into()))?;
    let lts = lifetimes(l, machine, &sched).map_err(|e| fail(e.into()))?;
    let pressure = if model.spec().is_dual() {
        let classes = classify(l, machine, &sched, &lts);
        Some(DualPressure::new(&lts, &classes, sched.ii()))
    } else {
        None
    };
    Ok(LoopAnalysis {
        name: l.name().to_owned(),
        model,
        ii: sched.ii(),
        regs,
        max_live: max_live(&lts, sched.ii()),
        pressure,
        iterations: l.weight().iterations(),
    })
}

/// Result of evaluating one loop under one model with a **finite register
/// file** (the Figure 8/9 pipeline): spill code is inserted until the
/// requirement fits the budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopEval {
    /// Loop name.
    pub name: String,
    /// Evaluation model.
    pub model: ModelId,
    /// Register budget (per subfile for dual models).
    pub budget: u32,
    /// Final initiation interval (after any spill-induced rescheduling).
    pub ii: u32,
    /// Final register requirement.
    pub regs: u32,
    /// Whether the loop fit the budget.
    pub fits: bool,
    /// Values spilled.
    pub spilled: usize,
    /// Memory operations per iteration in the final loop body.
    pub mem_ops: usize,
    /// Memory ports of the machine.
    pub ports: u32,
    /// Total iterations (corpus weight).
    pub iterations: u64,
}

impl LoopEval {
    /// Estimated execution cycles `iterations * II`.
    pub fn cycles(&self) -> u128 {
        self.iterations as u128 * self.ii as u128
    }

    /// Total memory accesses over the whole execution.
    pub fn accesses(&self) -> u128 {
        self.iterations as u128 * self.mem_ops as u128
    }

    /// Steady-state density of memory traffic: bus slots used per cycle,
    /// as a fraction of `II * ports`.
    pub fn density(&self) -> f64 {
        if self.ii == 0 || self.ports == 0 {
            0.0
        } else {
            self.mem_ops as f64 / (self.ii as f64 * self.ports as f64)
        }
    }
}

/// Builds a [`LoopEval`] from a finished spill run (or, for
/// [`ModelId::IDEAL`], from the base schedule).
pub(crate) fn eval_from_spill(l: &Loop, model: ModelId, budget: u32, r: &SpillResult) -> LoopEval {
    LoopEval {
        name: l.name().to_owned(),
        model,
        budget,
        ii: r.sched.ii(),
        regs: r.regs,
        fits: r.fits,
        spilled: r.spilled.len(),
        mem_ops: r.l.memory_ops(),
        ports: 0, // caller fills in
        iterations: l.weight().iterations(),
    }
}

/// Evaluates `l` under `model` with `budget` registers, inserting spill
/// code per the paper's §5.4 until the requirement fits, without any
/// caching.
///
/// Prefer [`crate::Session::evaluate`] when evaluating the same loop
/// under several models or budgets.
///
/// [`ModelId::IDEAL`] ignores the budget (it reports the unconstrained
/// II).
///
/// # Errors
///
/// Propagates scheduling and spilling failures, naming the loop.
pub fn evaluate(
    l: &Loop,
    machine: &Machine,
    model: impl Into<ModelId>,
    budget: u32,
    opts: &PipelineOptions,
) -> Result<LoopEval, PipelineError> {
    let model = model.into();
    let fail = |stage: PipelineStage| PipelineError {
        loop_name: l.name().to_owned(),
        stage,
    };
    if model.spec().is_ideal() {
        let sched =
            modulo_schedule_with(l, machine, opts.spill.scheduler).map_err(|e| fail(e.into()))?;
        return Ok(LoopEval {
            name: l.name().to_owned(),
            model,
            budget,
            ii: sched.ii(),
            regs: 0,
            fits: true,
            spilled: 0,
            mem_ops: l.memory_ops(),
            ports: machine.memory_ports() as u32,
            iterations: l.weight().iterations(),
        });
    }

    let opts_copy = *opts;
    let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
        requirement(l, m, s, model, &opts_copy)
    };
    let r =
        spill_until_fits(l, machine, budget, &mut req, opts.spill).map_err(|e| fail(e.into()))?;
    let mut eval = eval_from_spill(l, model, budget, &r);
    eval.ports = machine.memory_ports() as u32;
    Ok(eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use ncdrf_corpus::kernels;
    use ncdrf_machine::Machine;

    #[test]
    fn dual_requirement_never_exceeds_unified() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all() {
            let uni = analyze(&l, &machine, Model::Unified, &opts).unwrap();
            let part = analyze(&l, &machine, Model::Partitioned, &opts).unwrap();
            assert!(
                part.regs <= uni.regs,
                "{}: partitioned {} > unified {}",
                l.name(),
                part.regs,
                uni.regs
            );
        }
    }

    #[test]
    fn swapped_requirement_never_exceeds_partitioned_bound() {
        // The swap pass greedily reduces the MaxLive bound; the exact
        // allocation tracks it closely. Allow equality.
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all().into_iter().take(20) {
            let part = analyze(&l, &machine, Model::Partitioned, &opts).unwrap();
            let swap = analyze(&l, &machine, Model::Swapped, &opts).unwrap();
            assert!(
                swap.regs <= part.regs + 1,
                "{}: swapped {} much worse than partitioned {}",
                l.name(),
                swap.regs,
                part.regs
            );
        }
    }

    #[test]
    fn ideal_has_zero_requirement() {
        let machine = Machine::clustered(3, 1);
        let l = kernels::blas::daxpy();
        let a = analyze(&l, &machine, Model::Ideal, &PipelineOptions::default()).unwrap();
        assert_eq!(a.regs, 0);
        assert!(a.cycles() > 0);
    }

    #[test]
    fn requirement_at_least_max_live_unified() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all().into_iter().take(15) {
            let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
            assert!(a.regs >= a.max_live);
        }
    }

    #[test]
    fn evaluate_with_ample_budget_matches_analyze() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        let l = kernels::livermore::hydro();
        let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
        let e = evaluate(&l, &machine, Model::Unified, 512, &opts).unwrap();
        assert!(e.fits);
        assert_eq!(e.spilled, 0);
        assert_eq!(e.ii, a.ii);
        assert_eq!(e.regs, a.regs);
    }

    #[test]
    fn evaluate_with_tight_budget_spills() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        let l = kernels::recurrences::chain8();
        let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
        assert!(a.regs > 4, "chain8 should be pressured");
        let e = evaluate(&l, &machine, Model::Unified, 4, &opts).unwrap();
        assert!(e.fits);
        assert!(e.spilled > 0 || e.ii > a.ii);
        if e.spilled > 0 {
            assert!(e.mem_ops > l.memory_ops());
        }
    }

    #[test]
    fn density_accounts_for_spill_traffic() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        let l = kernels::recurrences::wide8();
        let free = evaluate(&l, &machine, Model::Unified, 512, &opts).unwrap();
        let tight = evaluate(&l, &machine, Model::Unified, 6, &opts).unwrap();
        if tight.spilled > 0 && tight.ii == free.ii {
            assert!(tight.density() > free.density());
        }
        // Densities are valid fractions.
        assert!(free.density() > 0.0 && free.density() <= 1.0);
    }

    #[test]
    fn pressure_reported_only_for_dual_models() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        let l = kernels::blas::daxpy();
        assert!(analyze(&l, &machine, Model::Unified, &opts)
            .unwrap()
            .pressure
            .is_none());
        assert!(analyze(&l, &machine, Model::Partitioned, &opts)
            .unwrap()
            .pressure
            .is_some());
    }

    #[test]
    fn new_families_transform_the_unified_requirement() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all().into_iter().take(10) {
            let uni = analyze(&l, &machine, ModelId::UNIFIED, &opts).unwrap();
            let port = analyze(&l, &machine, ModelId::PORT_LIMITED, &opts).unwrap();
            let comp = analyze(&l, &machine, ModelId::COMPRESSED, &opts).unwrap();
            // Port pressure can only raise the requirement; compression
            // scales it down by exactly ceil(3/4).
            assert!(port.regs >= uni.regs, "{}", l.name());
            assert_eq!(comp.regs, (uni.regs * 3).div_ceil(4), "{}", l.name());
            assert_eq!(port.ii, uni.ii);
        }
    }

    #[test]
    fn pipeline_errors_name_the_failing_loop() {
        use ncdrf_machine::{FuClass, FuGroup};
        // A machine with no adder cannot serve daxpy; the error must
        // carry the loop's name and the failing stage.
        let no_adder = Machine::new(
            "NOADD",
            vec![
                FuGroup::unified(FuClass::Multiplier, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let l = kernels::blas::daxpy();
        let a_err =
            analyze(&l, &no_adder, Model::Unified, &PipelineOptions::default()).unwrap_err();
        assert_eq!(a_err.loop_name, "daxpy");
        assert!(matches!(a_err.stage, PipelineStage::Schedule(_)));
        let e_err = evaluate(
            &l,
            &no_adder,
            Model::Unified,
            32,
            &PipelineOptions::default(),
        )
        .unwrap_err();
        assert_eq!(e_err.loop_name, "daxpy");
        assert!(matches!(e_err.stage, PipelineStage::Spill(_)));
        assert!(e_err.to_string().contains("daxpy"), "{e_err}");
    }
}
