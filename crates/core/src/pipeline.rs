//! The per-loop evaluation pipeline:
//! schedule → (swap) → classify → allocate → (spill until fits).

use crate::model::Model;
use ncdrf_ddg::Loop;
use ncdrf_machine::{Machine, MachineError};
use ncdrf_regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, max_live, DualPressure,
};
use ncdrf_sched::{modulo_schedule, Schedule, ScheduleError};
use ncdrf_spill::{spill_until_fits, SpillError, SpillOptions, SpillResult};
use ncdrf_swap::{swap_pass_with, SwapOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Options threaded through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Swapping-pass knobs (used by [`Model::Swapped`]).
    pub swap: SwapOptions,
    /// Spiller knobs (used by budgeted evaluation).
    pub spill: SpillOptions,
}

/// A pipeline failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The machine cannot serve the loop.
    Machine(MachineError),
    /// The spiller failed.
    Spill(SpillError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PipelineError::Machine(e) => write!(f, "machine mismatch: {e}"),
            PipelineError::Spill(e) => write!(f, "spilling failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ScheduleError> for PipelineError {
    fn from(e: ScheduleError) -> Self {
        PipelineError::Schedule(e)
    }
}

impl From<MachineError> for PipelineError {
    fn from(e: MachineError) -> Self {
        PipelineError::Machine(e)
    }
}

impl From<SpillError> for PipelineError {
    fn from(e: SpillError) -> Self {
        PipelineError::Spill(e)
    }
}

/// Result of analysing one loop under one model with **unlimited
/// registers** (the Figure 6/7 pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopAnalysis {
    /// Loop name.
    pub name: String,
    /// Evaluation model.
    pub model: Model,
    /// Achieved initiation interval.
    pub ii: u32,
    /// Register requirement of the model (per subfile for dual models;
    /// `0` for [`Model::Ideal`], which needs none by definition).
    pub regs: u32,
    /// MaxLive lower bound (unified view), for reference.
    pub max_live: u32,
    /// Per-class pressures for dual models (the Table 3/4 quantities).
    pub pressure: Option<DualPressure>,
    /// Total iterations this loop executes (its corpus weight).
    pub iterations: u64,
}

impl LoopAnalysis {
    /// Estimated execution cycles: `iterations * II` (the paper's §5.3
    /// execution-time estimate for the dynamic figures).
    pub fn cycles(&self) -> u128 {
        self.iterations as u128 * self.ii as u128
    }
}

/// Computes the register requirement of `model` for an already-scheduled
/// loop, possibly mutating the schedule (swapping).
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn requirement(
    l: &Loop,
    machine: &Machine,
    sched: &mut Schedule,
    model: Model,
    opts: &PipelineOptions,
) -> Result<u32, MachineError> {
    match model {
        Model::Ideal => Ok(0),
        Model::Unified => {
            let lts = lifetimes(l, machine, sched)?;
            Ok(allocate_unified(&lts, sched.ii()).regs)
        }
        Model::Partitioned => {
            let lts = lifetimes(l, machine, sched)?;
            let classes = classify(l, machine, sched, &lts);
            Ok(allocate_dual(&lts, &classes, sched.ii()).regs)
        }
        Model::Swapped => {
            swap_pass_with(l, machine, sched, opts.swap)?;
            let lts = lifetimes(l, machine, sched)?;
            let classes = classify(l, machine, sched, &lts);
            Ok(allocate_dual(&lts, &classes, sched.ii()).regs)
        }
    }
}

/// Schedules `l` and computes the `model` register requirement with
/// unlimited registers (no spilling).
///
/// # Errors
///
/// Returns [`PipelineError::Schedule`] if no schedule exists within the
/// default II search.
pub fn analyze(
    l: &Loop,
    machine: &Machine,
    model: Model,
    opts: &PipelineOptions,
) -> Result<LoopAnalysis, PipelineError> {
    let mut sched = modulo_schedule(l, machine)?;
    let regs = requirement(l, machine, &mut sched, model, opts)?;
    let lts = lifetimes(l, machine, &sched)?;
    let pressure = if model.is_dual() {
        let classes = classify(l, machine, &sched, &lts);
        Some(DualPressure::new(&lts, &classes, sched.ii()))
    } else {
        None
    };
    Ok(LoopAnalysis {
        name: l.name().to_owned(),
        model,
        ii: sched.ii(),
        regs,
        max_live: max_live(&lts, sched.ii()),
        pressure,
        iterations: l.weight().iterations(),
    })
}

/// Result of evaluating one loop under one model with a **finite register
/// file** (the Figure 8/9 pipeline): spill code is inserted until the
/// requirement fits the budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopEval {
    /// Loop name.
    pub name: String,
    /// Evaluation model.
    pub model: Model,
    /// Register budget (per subfile for dual models).
    pub budget: u32,
    /// Final initiation interval (after any spill-induced rescheduling).
    pub ii: u32,
    /// Final register requirement.
    pub regs: u32,
    /// Whether the loop fit the budget.
    pub fits: bool,
    /// Values spilled.
    pub spilled: usize,
    /// Memory operations per iteration in the final loop body.
    pub mem_ops: usize,
    /// Memory ports of the machine.
    pub ports: u32,
    /// Total iterations (corpus weight).
    pub iterations: u64,
}

impl LoopEval {
    /// Estimated execution cycles `iterations * II`.
    pub fn cycles(&self) -> u128 {
        self.iterations as u128 * self.ii as u128
    }

    /// Total memory accesses over the whole execution.
    pub fn accesses(&self) -> u128 {
        self.iterations as u128 * self.mem_ops as u128
    }

    /// Steady-state density of memory traffic: bus slots used per cycle,
    /// as a fraction of `II * ports`.
    pub fn density(&self) -> f64 {
        if self.ii == 0 || self.ports == 0 {
            0.0
        } else {
            self.mem_ops as f64 / (self.ii as f64 * self.ports as f64)
        }
    }
}

/// Evaluates `l` under `model` with `budget` registers, inserting spill
/// code per the paper's §5.4 until the requirement fits.
///
/// [`Model::Ideal`] ignores the budget (it reports the unconstrained II).
///
/// # Errors
///
/// Propagates scheduling and spilling failures.
pub fn evaluate(
    l: &Loop,
    machine: &Machine,
    model: Model,
    budget: u32,
    opts: &PipelineOptions,
) -> Result<LoopEval, PipelineError> {
    if model == Model::Ideal {
        let sched = modulo_schedule(l, machine)?;
        return Ok(LoopEval {
            name: l.name().to_owned(),
            model,
            budget,
            ii: sched.ii(),
            regs: 0,
            fits: true,
            spilled: 0,
            mem_ops: l.memory_ops(),
            ports: machine.memory_ports() as u32,
            iterations: l.weight().iterations(),
        });
    }

    let opts_copy = *opts;
    let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
        requirement(l, m, s, model, &opts_copy)
    };
    let SpillResult {
        l: final_loop,
        sched,
        regs,
        fits,
        spilled,
        ..
    } = spill_until_fits(l, machine, budget, &mut req, opts.spill)?;

    Ok(LoopEval {
        name: l.name().to_owned(),
        model,
        budget,
        ii: sched.ii(),
        regs,
        fits,
        spilled: spilled.len(),
        mem_ops: final_loop.memory_ops(),
        ports: machine.memory_ports() as u32,
        iterations: l.weight().iterations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_corpus::kernels;
    use ncdrf_machine::Machine;

    #[test]
    fn dual_requirement_never_exceeds_unified() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all() {
            let uni = analyze(&l, &machine, Model::Unified, &opts).unwrap();
            let part = analyze(&l, &machine, Model::Partitioned, &opts).unwrap();
            assert!(
                part.regs <= uni.regs,
                "{}: partitioned {} > unified {}",
                l.name(),
                part.regs,
                uni.regs
            );
        }
    }

    #[test]
    fn swapped_requirement_never_exceeds_partitioned_bound() {
        // The swap pass greedily reduces the MaxLive bound; the exact
        // allocation tracks it closely. Allow equality.
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all().into_iter().take(20) {
            let part = analyze(&l, &machine, Model::Partitioned, &opts).unwrap();
            let swap = analyze(&l, &machine, Model::Swapped, &opts).unwrap();
            assert!(
                swap.regs <= part.regs + 1,
                "{}: swapped {} much worse than partitioned {}",
                l.name(),
                swap.regs,
                part.regs
            );
        }
    }

    #[test]
    fn ideal_has_zero_requirement() {
        let machine = Machine::clustered(3, 1);
        let l = kernels::blas::daxpy();
        let a = analyze(&l, &machine, Model::Ideal, &PipelineOptions::default()).unwrap();
        assert_eq!(a.regs, 0);
        assert!(a.cycles() > 0);
    }

    #[test]
    fn requirement_at_least_max_live_unified() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        for l in kernels::all().into_iter().take(15) {
            let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
            assert!(a.regs >= a.max_live);
        }
    }

    #[test]
    fn evaluate_with_ample_budget_matches_analyze() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        let l = kernels::livermore::hydro();
        let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
        let e = evaluate(&l, &machine, Model::Unified, 512, &opts).unwrap();
        assert!(e.fits);
        assert_eq!(e.spilled, 0);
        assert_eq!(e.ii, a.ii);
        assert_eq!(e.regs, a.regs);
    }

    #[test]
    fn evaluate_with_tight_budget_spills() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        let l = kernels::recurrences::chain8();
        let a = analyze(&l, &machine, Model::Unified, &opts).unwrap();
        assert!(a.regs > 4, "chain8 should be pressured");
        let e = evaluate(&l, &machine, Model::Unified, 4, &opts).unwrap();
        assert!(e.fits);
        assert!(e.spilled > 0 || e.ii > a.ii);
        if e.spilled > 0 {
            assert!(e.mem_ops > l.memory_ops());
        }
    }

    #[test]
    fn density_accounts_for_spill_traffic() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        let l = kernels::recurrences::wide8();
        let free = evaluate(&l, &machine, Model::Unified, 512, &opts).unwrap();
        let tight = evaluate(&l, &machine, Model::Unified, 6, &opts).unwrap();
        if tight.spilled > 0 && tight.ii == free.ii {
            assert!(tight.density() > free.density());
        }
        // Densities are valid fractions.
        assert!(free.density() > 0.0 && free.density() <= 1.0);
    }

    #[test]
    fn pressure_reported_only_for_dual_models() {
        let machine = Machine::clustered(3, 1);
        let opts = PipelineOptions::default();
        let l = kernels::blas::daxpy();
        assert!(analyze(&l, &machine, Model::Unified, &opts)
            .unwrap()
            .pressure
            .is_none());
        assert!(analyze(&l, &machine, Model::Partitioned, &opts)
            .unwrap()
            .pressure
            .is_some());
    }
}
